#![forbid(unsafe_code)]
//! # monomi-engine
//!
//! An in-memory columnar analytical database engine: the stand-in for the
//! "unmodified DBMS (Postgres)" that MONOMI (Tu et al., VLDB 2013) uses as its
//! untrusted server.
//!
//! The engine provides exactly the contract MONOMI needs from the server:
//!
//! * SQL execution over stored tables ([`Database::execute_sql`]) — the tables
//!   may hold plaintext (for the baseline) or ciphertexts (for MONOMI), the
//!   engine does not care;
//! * cryptographic UDFs for encrypted processing: `paillier_sum` (homomorphic
//!   aggregation), `group_concat` (fetching whole groups for client-side
//!   aggregation), `search_match` (encrypted keyword LIKE);
//! * EXPLAIN-style cost estimates ([`Database::estimate`]), which the MONOMI
//!   planner uses to compare candidate server queries;
//! * byte-accurate storage accounting ([`Database::total_size_bytes`]) for the
//!   space-overhead experiments.
//!
//! ```
//! use monomi_engine::{Database, TableSchema, ColumnDef, ColumnType, Value};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::new("t", vec![
//!     ColumnDef::new("id", ColumnType::Int),
//!     ColumnDef::new("v", ColumnType::Int),
//! ]));
//! db.insert("t", vec![Value::Int(1), Value::Int(10)]).unwrap();
//! db.insert("t", vec![Value::Int(2), Value::Int(32)]).unwrap();
//! let (rs, _) = db.execute_sql("SELECT SUM(v) FROM t", &[]).unwrap();
//! assert_eq!(rs.rows[0][0], Value::Int(42));
//! ```

pub mod database;
pub mod exec;
pub mod expr;
pub mod ops;
pub mod schema;
pub mod stats;
pub mod storage;
pub mod value;

pub use database::{Database, PaillierServerCtx, STORAGE_ENV};
pub use exec::{execute_query_traced, ExecStats, ResultSet};
pub use expr::{
    apply_predicate, compile_predicate, decode_hex, encode_hex, zone_may_match, ColumnarPredicate,
    EvalContext, RowSchema,
};
pub use ops::{ExecOptions, Morsel, DEFAULT_MORSEL_ROWS};
pub use schema::{Catalog, ColumnDef, ColumnType, TableSchema};
pub use stats::{QueryEstimate, TableStats};
pub use storage::{ColumnBatch, SelectionVector, Table};
pub use value::{date, Value};

/// Error type for all engine operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineError {
    /// Human-readable description.
    pub message: String,
}

impl EngineError {
    /// Creates an error from anything stringifiable.
    pub fn new(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine error: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<String> for EngineError {
    fn from(message: String) -> Self {
        EngineError { message }
    }
}
