//! Table schemas and the catalog of the analytical engine.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Logical column types (defined in `monomi-store`, where the persistent
/// catalog serializes them; re-exported here unchanged).
pub use monomi_store::ColumnType;

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// A table schema.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Creates a schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Validates a row against the schema (arity and rough type check).
    pub fn check_row(&self, row: &[Value]) -> Result<(), String> {
        if row.len() != self.columns.len() {
            return Err(format!(
                "row has {} values but table {} has {} columns",
                row.len(),
                self.name,
                self.columns.len()
            ));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            let ok = matches!(
                (v, c.ty),
                (Value::Null, _)
                    | (Value::Int(_), ColumnType::Int)
                    | (Value::Float(_), ColumnType::Float)
                    | (Value::Int(_), ColumnType::Float)
                    | (Value::Str(_), ColumnType::Str)
                    | (Value::Date(_), ColumnType::Date)
                    | (Value::Int(_), ColumnType::Date)
                    | (Value::Bytes(_), ColumnType::Bytes)
                    | (Value::List(_), ColumnType::Bytes)
            );
            if !ok {
                return Err(format!(
                    "value {v:?} does not match column {}.{} of type {:?}",
                    self.name, c.name, c.ty
                ));
            }
        }
        Ok(())
    }
}

/// The set of table schemas known to a database.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, TableSchema>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table schema, replacing any previous definition.
    pub fn register(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.to_lowercase(), schema);
    }

    /// Looks up a schema by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_lowercase())
    }

    /// All schemas.
    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orders_schema() -> TableSchema {
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", ColumnType::Int),
                ColumnDef::new("o_custkey", ColumnType::Int),
                ColumnDef::new("o_totalprice", ColumnType::Int),
                ColumnDef::new("o_orderdate", ColumnType::Date),
                ColumnDef::new("o_comment", ColumnType::Str),
            ],
        )
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = orders_schema();
        assert_eq!(s.column_index("O_ORDERKEY"), Some(0));
        assert_eq!(s.column("o_comment").unwrap().ty, ColumnType::Str);
        assert!(s.column_index("missing").is_none());
    }

    #[test]
    fn row_validation() {
        let s = orders_schema();
        let good = vec![
            Value::Int(1),
            Value::Int(7),
            Value::Int(1000),
            Value::Date(9000),
            Value::Str("fast".into()),
        ];
        assert!(s.check_row(&good).is_ok());
        let bad_arity = vec![Value::Int(1)];
        assert!(s.check_row(&bad_arity).is_err());
        let bad_type = vec![
            Value::Str("x".into()),
            Value::Int(7),
            Value::Int(1000),
            Value::Date(9000),
            Value::Str("fast".into()),
        ];
        assert!(s.check_row(&bad_type).is_err());
    }

    #[test]
    fn catalog_register_and_lookup() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.register(orders_schema());
        assert_eq!(cat.len(), 1);
        assert!(cat.get("ORDERS").is_some());
        assert!(cat.get("lineitem").is_none());
    }
}
