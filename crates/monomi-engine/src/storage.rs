//! Columnar table storage with byte-size accounting.
//!
//! Tables are stored column-major (`Vec<Value>` per column). The engine is an
//! in-memory stand-in for the paper's Postgres server, so "disk size" is the
//! sum of the stored values' serialized sizes; that number drives both the
//! space-overhead experiments (Table 2) and the sequential-scan component of
//! the cost model.

use crate::schema::TableSchema;
use crate::value::Value;

/// A columnar table.
#[derive(Clone, Debug)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Vec<Value>>,
    row_count: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = vec![Vec::new(); schema.columns.len()];
        Table {
            schema,
            columns,
            row_count: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Appends a row after validating it against the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), String> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.row_count += 1;
        Ok(())
    }

    /// Bulk-loads rows; stops at the first invalid row.
    pub fn bulk_load(&mut self, rows: Vec<Vec<Value>>) -> Result<(), String> {
        for (col, _) in self.columns.iter_mut().zip(self.schema.columns.iter()) {
            col.reserve(rows.len());
        }
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// The value at `(row, column)`.
    pub fn value(&self, row: usize, column: usize) -> &Value {
        &self.columns[column][row]
    }

    /// A whole column.
    pub fn column(&self, column: usize) -> &[Value] {
        &self.columns[column]
    }

    /// Materializes one row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Total stored bytes across all columns.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Stored bytes of a single column.
    pub fn column_size_bytes(&self, column: usize) -> usize {
        self.columns[column].iter().map(Value::size_bytes).sum()
    }

    /// Average row width in bytes (0 for an empty table).
    pub fn avg_row_bytes(&self) -> usize {
        self.size_bytes().checked_div(self.row_count).unwrap_or(0)
    }

    /// Number of distinct values in a column (exact; used by the statistics
    /// collector on the sample the designer is given).
    pub fn distinct_count(&self, column: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for v in &self.columns[column] {
            set.insert(v.clone());
        }
        set.len()
    }

    /// Minimum and maximum of a column, ignoring NULLs.
    pub fn min_max(&self, column: usize) -> Option<(Value, Value)> {
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for v in &self.columns[column] {
            if v.is_null() {
                continue;
            }
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
        }
        Some((min?.clone(), max?.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn small_table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        );
        let mut t = Table::new(schema);
        t.bulk_load(vec![
            vec![Value::Int(1), Value::Str("alpha".into())],
            vec![Value::Int(2), Value::Str("beta".into())],
            vec![Value::Int(3), Value::Str("alpha".into())],
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = small_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(1, 1), &Value::Str("beta".into()));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Str("alpha".into())]);
    }

    #[test]
    fn rejects_bad_rows() {
        let mut t = small_table();
        assert!(t.insert(vec![Value::Int(4)]).is_err());
        assert!(t
            .insert(vec![Value::Str("oops".into()), Value::Str("x".into())])
            .is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn size_accounting_and_stats() {
        let t = small_table();
        // 3 ints (8 bytes each) + "alpha","beta","alpha" (+1 each).
        assert_eq!(t.size_bytes(), 24 + 6 + 5 + 6);
        assert_eq!(t.column_size_bytes(0), 24);
        assert_eq!(t.distinct_count(1), 2);
        let (min, max) = t.min_max(0).unwrap();
        assert_eq!(min, Value::Int(1));
        assert_eq!(max, Value::Int(3));
        assert!(t.avg_row_bytes() > 0);
    }
}
