//! Columnar table storage with byte-size accounting — over two backends.
//!
//! A [`Table`] is either **memory-backed** (column-major `Vec<Value>`s, the
//! original engine) or **disk-backed**: committed rows live in write-once
//! columnar segments managed by [`monomi_store::Store`] (encodings, zone
//! maps, crash-safe catalog, byte-budgeted cache), plus an in-memory *tail*
//! of rows not yet flushed to a segment. `Database` picks the backend
//! (`MONOMI_STORAGE=memory|disk`, `Database::open`); everything above the
//! scan treats both identically, and results are byte-identical across
//! backends because segment encodings round-trip values exactly.
//!
//! Scans are vectorized on both backends: a [`ColumnBatch`] exposes columns
//! as borrowed slices, predicates narrow a [`SelectionVector`] of surviving
//! row indices, and only the survivors' referenced columns are materialized
//! ("late materialization"). Disk scans are *segment-granular*: the scan
//! plan ([`Table::scan_plan`]) aligns partitions to segment boundaries so
//! each worker decodes (or cache-hits) whole segments, and the executor
//! consults each segment's zone map to skip it before any predicate runs.
//!
//! Byte accounting is two-level: [`Table::size_bytes`] stays *logical*
//! (`Value::size_bytes`, identical across backends — the space experiments
//! depend on it), while the scan's `bytes_scanned` reports *stored* bytes
//! for segments actually read — the honest disk I/O the cost model's
//! `disk_seconds` now prices.

use crate::schema::TableSchema;
use crate::value::Value;
use monomi_store::{SegmentData, SegmentMeta, Store};
use parking_lot::RwLock;
use std::sync::Arc;

/// Indices of the rows surviving a scan's predicates, in ascending order.
///
/// A selection vector is the unit of work the vectorized scan pipeline passes
/// between predicate applications: each conjunct narrows the previous
/// selection instead of copying rows. Indices are `u32` — tables are capped at
/// `u32::MAX` rows, far beyond anything a single segment or table holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionVector {
    indices: Vec<u32>,
}

impl SelectionVector {
    /// A selection covering every row of an `n`-row relation.
    pub fn all(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "table exceeds u32::MAX rows");
        SelectionVector {
            indices: (0..n as u32).collect(),
        }
    }

    /// An empty selection.
    pub fn empty() -> Self {
        SelectionVector::default()
    }

    /// A selection covering the half-open row range `start..end` — the seed
    /// selection a morsel-granular scan starts from.
    pub fn range(start: usize, end: usize) -> Self {
        assert!(end <= u32::MAX as usize, "table exceeds u32::MAX rows");
        SelectionVector {
            indices: (start as u32..end as u32).collect(),
        }
    }

    /// Builds a selection from raw indices (must be ascending).
    pub fn from_indices(indices: Vec<u32>) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        SelectionVector { indices }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Appends a row index (callers must keep indices ascending).
    pub fn push(&mut self, idx: usize) {
        assert!(idx <= u32::MAX as usize, "row index exceeds u32::MAX");
        debug_assert!(self.indices.last().is_none_or(|&l| (l as usize) < idx));
        self.indices.push(idx as u32);
    }

    /// The selected row indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates the selected row indices as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().map(|&i| i as usize)
    }

    /// Fraction of `total` rows selected (1.0 for an empty relation).
    pub fn selectivity(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            self.len() as f64 / total as f64
        }
    }
}

/// A borrowed, column-major view of a row run: the unit vectorized predicate
/// evaluation operates on. Columns are slices into the table's storage (or a
/// decoded segment), so building a batch never copies data.
#[derive(Clone, Copy, Debug)]
pub struct ColumnBatch<'a> {
    columns: &'a [Vec<Value>],
    row_count: usize,
}

impl<'a> ColumnBatch<'a> {
    /// A batch over column-major storage (all columns of equal length
    /// `row_count`). Used by the scan for both in-memory columns and decoded
    /// disk segments.
    pub fn new(columns: &'a [Vec<Value>], row_count: usize) -> Self {
        debug_assert!(columns.iter().all(|c| c.len() == row_count));
        ColumnBatch { columns, row_count }
    }

    /// Number of rows in the batch.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns in the batch.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// One column as a slice.
    pub fn column(&self, idx: usize) -> &'a [Value] {
        &self.columns[idx]
    }

    /// Late materialization: clones the selected rows, keeping only the
    /// columns in `projection` (in the given order). Only survivors of the
    /// scan's predicates are ever cloned.
    pub fn gather(&self, selection: &SelectionVector, projection: &[usize]) -> Vec<Vec<Value>> {
        let mut rows = Vec::with_capacity(selection.len());
        for ridx in selection.iter() {
            rows.push(
                projection
                    .iter()
                    .map(|&c| self.columns[c][ridx].clone())
                    .collect(),
            );
        }
        rows
    }
}

/// Memoized per-column statistics (the collector used to rebuild a `HashSet`
/// / rescan the column on every call). Invalidated by `insert`/`bulk_load`.
#[derive(Clone, Debug)]
struct ColumnMemo {
    distinct: usize,
    min_max: Option<(Value, Value)>,
}

/// Where a table's rows live.
enum Backing {
    /// The original in-memory engine: one `Vec<Value>` per column.
    Memory {
        columns: Vec<Vec<Value>>,
        row_count: usize,
    },
    /// Committed segments in a [`Store`] plus an in-memory tail of rows not
    /// yet flushed (flushed automatically once it reaches the segment size,
    /// or explicitly via [`Table::flush`]).
    Disk {
        store: Arc<Store>,
        /// Lower-cased manifest key.
        key: String,
        /// Column-major unflushed rows.
        tail: Vec<Vec<Value>>,
        tail_rows: usize,
    },
}

/// One unit of scan work, aligned to the backing's natural boundaries.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ScanPartition {
    /// A row range of the in-memory columns (the whole table for the memory
    /// backing, the unflushed tail for the disk backing).
    Range { start: usize, end: usize },
    /// One committed segment (index into [`ScanPlan::segments`]).
    Segment(usize),
}

/// The partitioning of one table scan: segment-aligned partitions plus a
/// consistent snapshot of the segment catalog entries (zone maps included).
pub(crate) struct ScanPlan {
    pub partitions: Vec<ScanPartition>,
    pub segments: Vec<SegmentMeta>,
}

impl ScanPlan {
    /// Total rows covered by the plan (diagnostics and tests).
    #[cfg(test)]
    pub fn total_rows(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| match p {
                ScanPartition::Range { start, end } => end - start,
                ScanPartition::Segment(i) => self.segments[*i].rows as usize,
            })
            .sum()
    }
}

/// A columnar table over one of the two backings.
pub struct Table {
    schema: TableSchema,
    backing: Backing,
    /// Lazily computed per-column statistics; `None` = not yet computed.
    stats_memo: RwLock<Vec<Option<ColumnMemo>>>,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            schema: self.schema.clone(),
            backing: match &self.backing {
                Backing::Memory { columns, row_count } => Backing::Memory {
                    columns: columns.clone(),
                    row_count: *row_count,
                },
                Backing::Disk {
                    store,
                    key,
                    tail,
                    tail_rows,
                } => Backing::Disk {
                    store: Arc::clone(store),
                    key: key.clone(),
                    tail: tail.clone(),
                    tail_rows: *tail_rows,
                },
            },
            stats_memo: RwLock::new(self.stats_memo.read().clone()),
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.schema.name)
            .field("rows", &self.row_count())
            .field("backing", &self.backing_name())
            .finish()
    }
}

impl Table {
    /// Creates an empty in-memory table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = vec![Vec::new(); schema.columns.len()];
        Table {
            stats_memo: RwLock::new(vec![None; schema.columns.len()]),
            backing: Backing::Memory {
                columns,
                row_count: 0,
            },
            schema,
        }
    }

    /// Creates an empty disk-backed table registered in `store` (the caller —
    /// `Database` — has already committed the schema to the store's catalog).
    pub(crate) fn new_disk(schema: TableSchema, store: Arc<Store>) -> Self {
        let key = schema.name.to_lowercase();
        Table {
            stats_memo: RwLock::new(vec![None; schema.columns.len()]),
            backing: Backing::Disk {
                store,
                key,
                tail: vec![Vec::new(); schema.columns.len()],
                tail_rows: 0,
            },
            schema,
        }
    }

    /// `"memory"` or `"disk"` — which backing holds this table.
    pub fn backing_name(&self) -> &'static str {
        match &self.backing {
            Backing::Memory { .. } => "memory",
            Backing::Disk { .. } => "disk",
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        match &self.backing {
            Backing::Memory { row_count, .. } => *row_count,
            Backing::Disk {
                store,
                key,
                tail_rows,
                ..
            } => store.table_rows(key) as usize + tail_rows,
        }
    }

    /// Appends a row after validating it against the schema. On the disk
    /// backing the row joins the in-memory tail, which is flushed into a
    /// committed segment once it reaches the store's segment size.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), String> {
        self.schema.check_row(&row)?;
        self.invalidate_stats();
        match &mut self.backing {
            Backing::Memory { columns, row_count } => {
                for (col, v) in columns.iter_mut().zip(row) {
                    col.push(v);
                }
                *row_count += 1;
            }
            Backing::Disk {
                tail, tail_rows, ..
            } => {
                for (col, v) in tail.iter_mut().zip(row) {
                    col.push(v);
                }
                *tail_rows += 1;
                if *tail_rows >= self.segment_rows() {
                    self.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Bulk-loads rows; stops at the first invalid row (the valid prefix is
    /// kept, matching single-row `insert` semantics). On the disk backing the
    /// whole load — tail included — is flushed into segments and published
    /// with one atomic catalog commit, so zone maps exist as soon as the load
    /// returns.
    pub fn bulk_load(&mut self, rows: Vec<Vec<Value>>) -> Result<(), String> {
        self.invalidate_stats();
        let mut first_error = None;
        match &mut self.backing {
            Backing::Memory { columns, row_count } => {
                for (col, _) in columns.iter_mut().zip(self.schema.columns.iter()) {
                    col.reserve(rows.len());
                }
                for row in rows {
                    if let Err(e) = self.schema.check_row(&row) {
                        first_error = Some(e);
                        break;
                    }
                    for (col, v) in columns.iter_mut().zip(row) {
                        col.push(v);
                    }
                    *row_count += 1;
                }
            }
            Backing::Disk {
                tail, tail_rows, ..
            } => {
                for row in rows {
                    if let Err(e) = self.schema.check_row(&row) {
                        first_error = Some(e);
                        break;
                    }
                    for (col, v) in tail.iter_mut().zip(row) {
                        col.push(v);
                    }
                    *tail_rows += 1;
                }
                self.flush()?;
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Rows per segment of the disk backing (unused for memory tables).
    fn segment_rows(&self) -> usize {
        match &self.backing {
            Backing::Memory { .. } => usize::MAX,
            Backing::Disk { store, .. } => store.segment_rows(),
        }
    }

    /// Flushes the disk backing's tail into committed segments (one atomic
    /// catalog commit); a no-op for memory tables and empty tails.
    pub fn flush(&mut self) -> Result<(), String> {
        {
            let Backing::Disk {
                store,
                key,
                tail,
                tail_rows,
            } = &mut self.backing
            else {
                return Ok(());
            };
            if *tail_rows == 0 {
                return Ok(());
            }
            let segment_rows = store.segment_rows();
            let mut load = store.begin_load(key);
            let mut start = 0usize;
            while start < *tail_rows {
                let end = (start + segment_rows).min(*tail_rows);
                let chunk: Vec<Vec<Value>> = tail.iter().map(|c| c[start..end].to_vec()).collect();
                load.add_segment(&chunk).map_err(|e| e.to_string())?;
                start = end;
            }
            load.commit().map_err(|e| e.to_string())?;
            for col in tail.iter_mut() {
                col.clear();
            }
            *tail_rows = 0;
        }
        // Publication moved rows from the tail into segments: the logical
        // values are unchanged, but the memoized stats must not outlive the
        // state they were computed from — index-vs-scan costing reads them,
        // and a conservative invalidation is cheap next to a segment write.
        self.invalidate_stats();
        Ok(())
    }

    /// The value at `(row, column)`. Disk-backed reads go through the segment
    /// cache (use scans, not point reads, for anything hot).
    pub fn value(&self, row: usize, column: usize) -> Value {
        match &self.backing {
            Backing::Memory { columns, .. } => columns[column][row].clone(),
            Backing::Disk { .. } => self.row(row)[column].clone(),
        }
    }

    /// Materializes one row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        match &self.backing {
            Backing::Memory { columns, .. } => columns.iter().map(|c| c[row].clone()).collect(),
            Backing::Disk {
                store, key, tail, ..
            } => {
                // Locate the owning segment under a borrow (cloning one
                // `SegmentMeta`, not the whole catalog entry — this runs per
                // row in `clone_database`-style table copies), then decode
                // outside the closure.
                let mut offset = row;
                let seg = store.with_table_meta(key, |meta| {
                    for seg in meta.map(|m| m.segments.as_slice()).unwrap_or_default() {
                        let rows = seg.rows as usize;
                        if offset < rows {
                            return Some(seg.clone());
                        }
                        offset -= rows;
                    }
                    None
                });
                match seg {
                    Some(seg) => {
                        let data = store
                            .read_segment(&seg)
                            .unwrap_or_else(|e| panic!("segment read failed: {e}"));
                        data.columns.iter().map(|c| c[offset].clone()).collect()
                    }
                    None => tail.iter().map(|c| c[offset].clone()).collect(),
                }
            }
        }
    }

    /// Materializes every row of the table. Memory backing copies the
    /// columns directly; the disk backing makes **one pass** over the
    /// committed segments (each decoded once, through the cache) and then
    /// the tail — prefer this over per-index [`row`](Self::row) for
    /// whole-table extraction, which would re-walk the segment catalog on
    /// every call (O(rows × segments)).
    pub fn rows(&self) -> Vec<Vec<Value>> {
        let mut out = Vec::with_capacity(self.row_count());
        match &self.backing {
            Backing::Memory { columns, row_count } => {
                for r in 0..*row_count {
                    out.push(columns.iter().map(|c| c[r].clone()).collect());
                }
            }
            Backing::Disk {
                store,
                key,
                tail,
                tail_rows,
            } => {
                let segments = store.with_table_meta(key, |meta| {
                    meta.map(|m| m.segments.clone()).unwrap_or_default()
                });
                for seg in &segments {
                    let data = store
                        .read_segment(seg)
                        .unwrap_or_else(|e| panic!("segment read failed: {e}"));
                    for r in 0..data.rows {
                        out.push(data.columns.iter().map(|c| c[r].clone()).collect());
                    }
                }
                for r in 0..*tail_rows {
                    out.push(tail.iter().map(|c| c[r].clone()).collect());
                }
            }
        }
        out
    }

    /// A borrowed columnar view over the whole table for vectorized scans.
    /// Memory backing only — disk-backed scans are segment-granular (see
    /// [`scan_plan`](Self::scan_plan)).
    pub fn batch(&self) -> ColumnBatch<'_> {
        match &self.backing {
            Backing::Memory { columns, row_count } => ColumnBatch::new(columns, *row_count),
            Backing::Disk { .. } => {
                panic!("batch() requires the memory backing; disk scans use scan_plan()")
            }
        }
    }

    /// The in-memory columns a [`ScanPartition::Range`] indexes into: the
    /// whole table for the memory backing, the unflushed tail for disk.
    pub(crate) fn range_batch(&self) -> ColumnBatch<'_> {
        match &self.backing {
            Backing::Memory { columns, row_count } => ColumnBatch::new(columns, *row_count),
            Backing::Disk {
                tail, tail_rows, ..
            } => ColumnBatch::new(tail, *tail_rows),
        }
    }

    /// Partitions a scan of this table. Memory backing: fixed `morsel_rows`
    /// ranges (the original morsel partitioning). Disk backing: one
    /// partition per committed segment — morsels align to segment boundaries
    /// so zone maps can skip whole partitions — followed by `morsel_rows`
    /// ranges over the unflushed tail.
    pub(crate) fn scan_plan(&self, morsel_rows: usize) -> ScanPlan {
        let morsel_rows = morsel_rows.max(1);
        let ranges = |total: usize| -> Vec<ScanPartition> {
            (0..total.div_ceil(morsel_rows))
                .map(|i| ScanPartition::Range {
                    start: i * morsel_rows,
                    end: ((i + 1) * morsel_rows).min(total),
                })
                .collect()
        };
        match &self.backing {
            Backing::Memory { row_count, .. } => ScanPlan {
                partitions: ranges(*row_count),
                segments: Vec::new(),
            },
            Backing::Disk {
                store,
                key,
                tail_rows,
                ..
            } => {
                let segments = store
                    .table_meta(key)
                    .map(|m| m.segments)
                    .unwrap_or_default();
                let mut partitions: Vec<ScanPartition> =
                    (0..segments.len()).map(ScanPartition::Segment).collect();
                partitions.extend(ranges(*tail_rows));
                ScanPlan {
                    partitions,
                    segments,
                }
            }
        }
    }

    /// Reads one committed segment through the store's cache.
    pub(crate) fn read_segment(&self, meta: &SegmentMeta) -> Result<Arc<SegmentData>, String> {
        match &self.backing {
            Backing::Disk { store, .. } => store.read_segment(meta).map_err(|e| e.to_string()),
            Backing::Memory { .. } => Err("memory tables have no segments".into()),
        }
    }

    /// Decoded secondary indexes of one committed segment, or `None` when the
    /// segment has none — or its index file fails to read or verify. The
    /// store surfaces that failure as a typed error; here it degrades to "no
    /// index", so a corrupted index can only cost speed, never correctness.
    pub(crate) fn segment_indexes(
        &self,
        meta: &SegmentMeta,
    ) -> Option<Arc<monomi_store::SegmentIndexes>> {
        match &self.backing {
            Backing::Disk { store, .. } => meta
                .index
                .as_ref()
                .and_then(|index| store.read_indexes(index).ok()),
            Backing::Memory { .. } => None,
        }
    }

    /// Whether any committed segment of this table carries an index file.
    /// Gates probe planning: when nothing is indexed (memory backing, indexes
    /// disabled at load time, or the whole table opted out) the planner skips
    /// the per-column statistics lookups entirely.
    pub(crate) fn has_segment_indexes(&self) -> bool {
        match &self.backing {
            Backing::Disk { store, key, .. } => store.with_table_meta(key, |meta| {
                meta.is_some_and(|m| m.segments.iter().any(|s| s.index.is_some()))
            }),
            Backing::Memory { .. } => false,
        }
    }

    /// Total logical bytes across all columns (`Value::size_bytes`) —
    /// identical across backends; the space-overhead experiments (Table 2)
    /// depend on this being backend-independent. The physical footprint of
    /// the disk backing is [`stored_bytes`](Self::stored_bytes).
    pub fn size_bytes(&self) -> usize {
        match &self.backing {
            Backing::Memory { columns, .. } => columns
                .iter()
                .map(|c| c.iter().map(Value::size_bytes).sum::<usize>())
                .sum(),
            Backing::Disk {
                store, key, tail, ..
            } => {
                let committed: u64 = store.with_table_meta(key, |meta| {
                    meta.map(|m| m.segments.iter().map(|s| s.logical_bytes()).sum())
                        .unwrap_or(0)
                });
                committed as usize
                    + tail
                        .iter()
                        .map(|c| c.iter().map(Value::size_bytes).sum::<usize>())
                        .sum::<usize>()
            }
        }
    }

    /// Stored (encoded) bytes of the disk backing's committed segments — the
    /// physical footprint a scan actually reads. 0 for memory tables and
    /// unflushed tails.
    pub fn stored_bytes(&self) -> usize {
        match &self.backing {
            Backing::Memory { .. } => 0,
            Backing::Disk { store, key, .. } => store.with_table_meta(key, |meta| {
                meta.map(|m| m.segments.iter().map(|s| s.stored_bytes).sum::<u64>() as usize)
                    .unwrap_or(0)
            }),
        }
    }

    /// Logical bytes of a single column.
    pub fn column_size_bytes(&self, column: usize) -> usize {
        match &self.backing {
            Backing::Memory { columns, .. } => columns[column].iter().map(Value::size_bytes).sum(),
            Backing::Disk {
                store, key, tail, ..
            } => {
                let committed: u64 = store.with_table_meta(key, |meta| {
                    meta.map(|m| {
                        m.segments
                            .iter()
                            .map(|s| s.zones[column].logical_bytes)
                            .sum()
                    })
                    .unwrap_or(0)
                });
                committed as usize + tail[column].iter().map(Value::size_bytes).sum::<usize>()
            }
        }
    }

    /// Average row width in bytes (0 for an empty table).
    pub fn avg_row_bytes(&self) -> usize {
        self.size_bytes().checked_div(self.row_count()).unwrap_or(0)
    }

    /// Number of distinct values in a column (exact; used by the statistics
    /// collector on the sample the designer is given). Memoized — the
    /// collector calls this for every column, and rebuilding the `HashSet`
    /// each time was pure waste; `insert`/`bulk_load` invalidate the memo.
    pub fn distinct_count(&self, column: usize) -> usize {
        self.column_memo(column).distinct
    }

    /// Minimum and maximum of a column, ignoring NULLs. Memoized alongside
    /// [`distinct_count`](Self::distinct_count); on the disk backing the
    /// bounds fold the segments' zone maps instead of rescanning values.
    pub fn min_max(&self, column: usize) -> Option<(Value, Value)> {
        self.column_memo(column).min_max
    }

    /// The memoized statistics of one column, computing them on first use.
    fn column_memo(&self, column: usize) -> ColumnMemo {
        if let Some(memo) = &self.stats_memo.read()[column] {
            return memo.clone();
        }
        let memo = self.compute_column_memo(column);
        self.stats_memo.write()[column] = Some(memo.clone());
        memo
    }

    fn compute_column_memo(&self, column: usize) -> ColumnMemo {
        let mut set: std::collections::HashSet<Value> = std::collections::HashSet::new();
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let fold_bound = |v: &Value, min: &mut Option<Value>, max: &mut Option<Value>| {
            if v.is_null() {
                return;
            }
            if min.as_ref().is_none_or(|m| v < m) {
                *min = Some(v.clone());
            }
            if max.as_ref().is_none_or(|m| v > m) {
                *max = Some(v.clone());
            }
        };
        match &self.backing {
            Backing::Memory { columns, .. } => {
                for v in &columns[column] {
                    set.insert(v.clone());
                    fold_bound(v, &mut min, &mut max);
                }
            }
            Backing::Disk {
                store, key, tail, ..
            } => {
                if let Some(meta) = store.table_meta(key) {
                    for seg in &meta.segments {
                        // Bounds come straight from the zone map (computed
                        // under the same total order at load time)...
                        let zone = &seg.zones[column];
                        if let Some(v) = &zone.min {
                            fold_bound(v, &mut min, &mut max);
                        }
                        if let Some(v) = &zone.max {
                            fold_bound(v, &mut min, &mut max);
                        }
                        // ...while the exact distinct count needs the values.
                        let data = store
                            .read_segment(seg)
                            .unwrap_or_else(|e| panic!("segment read failed: {e}"));
                        for v in &data.columns[column] {
                            set.insert(v.clone());
                        }
                    }
                }
                for v in &tail[column] {
                    set.insert(v.clone());
                    fold_bound(v, &mut min, &mut max);
                }
            }
        }
        ColumnMemo {
            distinct: set.len(),
            min_max: min.zip(max),
        }
    }

    fn invalidate_stats(&mut self) {
        for slot in self.stats_memo.get_mut().iter_mut() {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn small_table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        );
        let mut t = Table::new(schema);
        t.bulk_load(vec![
            vec![Value::Int(1), Value::Str("alpha".into())],
            vec![Value::Int(2), Value::Str("beta".into())],
            vec![Value::Int(3), Value::Str("alpha".into())],
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = small_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(1, 1), Value::Str("beta".into()));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Str("alpha".into())]);
    }

    #[test]
    fn rejects_bad_rows() {
        let mut t = small_table();
        assert!(t.insert(vec![Value::Int(4)]).is_err());
        assert!(t
            .insert(vec![Value::Str("oops".into()), Value::Str("x".into())])
            .is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn selection_vectors_narrow_and_report_selectivity() {
        let sel = SelectionVector::all(4);
        assert_eq!(sel.len(), 4);
        assert_eq!(sel.indices(), &[0, 1, 2, 3]);
        let mut narrowed = SelectionVector::empty();
        narrowed.push(1);
        narrowed.push(3);
        assert_eq!(narrowed.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!((narrowed.selectivity(4) - 0.5).abs() < f64::EPSILON);
        assert!((SelectionVector::empty().selectivity(0) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn batch_gather_late_materializes_projected_columns() {
        let t = small_table();
        let batch = t.batch();
        assert_eq!(batch.row_count(), 3);
        assert_eq!(batch.column_count(), 2);
        assert_eq!(batch.column(0)[2], Value::Int(3));
        // Select rows 0 and 2, keep only the name column (index 1).
        let sel = SelectionVector::from_indices(vec![0, 2]);
        let rows = batch.gather(&sel, &[1]);
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("alpha".into())],
                vec![Value::Str("alpha".into())]
            ]
        );
        // Empty projection still yields the right number of (zero-width) rows.
        assert_eq!(batch.gather(&sel, &[]), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn size_accounting_and_stats() {
        let t = small_table();
        // 3 ints (8 bytes each) + "alpha","beta","alpha" (+1 each).
        assert_eq!(t.size_bytes(), 24 + 6 + 5 + 6);
        assert_eq!(t.column_size_bytes(0), 24);
        assert_eq!(t.distinct_count(1), 2);
        let (min, max) = t.min_max(0).unwrap();
        assert_eq!(min, Value::Int(1));
        assert_eq!(max, Value::Int(3));
        assert!(t.avg_row_bytes() > 0);
        assert_eq!(t.backing_name(), "memory");
        assert_eq!(t.stored_bytes(), 0);
    }

    #[test]
    fn stats_memo_invalidates_on_mutation() {
        let mut t = small_table();
        assert_eq!(t.distinct_count(0), 3);
        assert_eq!(t.min_max(0).unwrap().1, Value::Int(3));
        // A mutation must drop the memo: the new row shows up in both stats.
        t.insert(vec![Value::Int(9), Value::Str("alpha".into())])
            .unwrap();
        assert_eq!(t.distinct_count(0), 4);
        assert_eq!(t.min_max(0).unwrap().1, Value::Int(9));
        // Repeated reads hit the memo (same values back).
        assert_eq!(t.distinct_count(0), 4);
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn stats_memo_invalidates_on_tail_flush() {
        let dir =
            std::env::temp_dir().join(format!("monomi-storage-flush-memo-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = monomi_store::Store::open_with(
            &dir,
            monomi_store::StoreOptions {
                segment_rows: 8,
                ..monomi_store::StoreOptions::default()
            },
        )
        .unwrap();
        store
            .create_table(
                "t",
                vec![
                    ("id".into(), ColumnType::Int),
                    ("name".into(), ColumnType::Str),
                ],
            )
            .unwrap();
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        );
        let mut t = Table::new_disk(schema, store);
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::Str("x".into())])
                .unwrap();
        }
        // Populate the memo from the tail-resident rows.
        assert_eq!(t.distinct_count(0), 5);
        assert!(t.stats_memo.read()[0].is_some());
        // Publishing the tail as a committed segment must drop the memo: the
        // logical values survive unchanged, but the memo was computed from a
        // state (tail layout) that no longer exists, and index-vs-scan
        // costing reads it.
        t.flush().unwrap();
        assert!(t.stats_memo.read()[0].is_none());
        // Recomputation over the published segment agrees with the old answer.
        assert_eq!(t.distinct_count(0), 5);
        assert_eq!(t.min_max(0).unwrap(), (Value::Int(0), Value::Int(4)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_scan_plan_partitions_by_morsel_size() {
        let t = small_table();
        let plan = t.scan_plan(2);
        assert_eq!(plan.total_rows(), 3);
        assert_eq!(plan.partitions.len(), 2);
        assert!(plan.segments.is_empty());
        match plan.partitions[1] {
            ScanPartition::Range { start, end } => {
                assert_eq!((start, end), (2, 3));
            }
            _ => panic!("memory plans contain only ranges"),
        }
    }
}
