//! Columnar table storage with byte-size accounting.
//!
//! Tables are stored column-major (`Vec<Value>` per column). The engine is an
//! in-memory stand-in for the paper's Postgres server, so "disk size" is the
//! sum of the stored values' serialized sizes; that number drives both the
//! space-overhead experiments (Table 2) and the sequential-scan component of
//! the cost model.
//!
//! Scans are vectorized: a [`ColumnBatch`] exposes the stored columns as
//! borrowed slices, predicates narrow a [`SelectionVector`] of surviving row
//! indices, and only the survivors' referenced columns are materialized into
//! row form ("late materialization"). Nothing is cloned until a row is known
//! to pass every scan-level predicate.

use crate::schema::TableSchema;
use crate::value::Value;

/// Indices of the rows surviving a scan's predicates, in ascending order.
///
/// A selection vector is the unit of work the vectorized scan pipeline passes
/// between predicate applications: each conjunct narrows the previous
/// selection instead of copying rows. Indices are `u32` — tables are capped at
/// `u32::MAX` rows, far beyond anything the in-memory engine holds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionVector {
    indices: Vec<u32>,
}

impl SelectionVector {
    /// A selection covering every row of an `n`-row relation.
    pub fn all(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "table exceeds u32::MAX rows");
        SelectionVector {
            indices: (0..n as u32).collect(),
        }
    }

    /// An empty selection.
    pub fn empty() -> Self {
        SelectionVector::default()
    }

    /// A selection covering the half-open row range `start..end` — the seed
    /// selection a morsel-granular scan starts from.
    pub fn range(start: usize, end: usize) -> Self {
        assert!(end <= u32::MAX as usize, "table exceeds u32::MAX rows");
        SelectionVector {
            indices: (start as u32..end as u32).collect(),
        }
    }

    /// Builds a selection from raw indices (must be ascending).
    pub fn from_indices(indices: Vec<u32>) -> Self {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        SelectionVector { indices }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Appends a row index (callers must keep indices ascending).
    pub fn push(&mut self, idx: usize) {
        assert!(idx <= u32::MAX as usize, "row index exceeds u32::MAX");
        debug_assert!(self.indices.last().is_none_or(|&l| (l as usize) < idx));
        self.indices.push(idx as u32);
    }

    /// The selected row indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates the selected row indices as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().map(|&i| i as usize)
    }

    /// Fraction of `total` rows selected (1.0 for an empty relation).
    pub fn selectivity(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            self.len() as f64 / total as f64
        }
    }
}

/// A borrowed, column-major view of a relation: the unit vectorized predicate
/// evaluation operates on. Columns are slices into the table's storage, so
/// building a batch never copies data.
#[derive(Clone, Copy, Debug)]
pub struct ColumnBatch<'a> {
    columns: &'a [Vec<Value>],
    row_count: usize,
}

impl<'a> ColumnBatch<'a> {
    /// Number of rows in the batch.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns in the batch.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// One column as a slice.
    pub fn column(&self, idx: usize) -> &'a [Value] {
        &self.columns[idx]
    }

    /// Late materialization: clones the selected rows, keeping only the
    /// columns in `projection` (in the given order). Only survivors of the
    /// scan's predicates are ever cloned.
    pub fn gather(&self, selection: &SelectionVector, projection: &[usize]) -> Vec<Vec<Value>> {
        let mut rows = Vec::with_capacity(selection.len());
        for ridx in selection.iter() {
            rows.push(
                projection
                    .iter()
                    .map(|&c| self.columns[c][ridx].clone())
                    .collect(),
            );
        }
        rows
    }
}

/// A columnar table.
#[derive(Clone, Debug)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<Vec<Value>>,
    row_count: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let columns = vec![Vec::new(); schema.columns.len()];
        Table {
            schema,
            columns,
            row_count: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Appends a row after validating it against the schema.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), String> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.row_count += 1;
        Ok(())
    }

    /// Bulk-loads rows; stops at the first invalid row.
    pub fn bulk_load(&mut self, rows: Vec<Vec<Value>>) -> Result<(), String> {
        for (col, _) in self.columns.iter_mut().zip(self.schema.columns.iter()) {
            col.reserve(rows.len());
        }
        for row in rows {
            self.insert(row)?;
        }
        Ok(())
    }

    /// The value at `(row, column)`.
    pub fn value(&self, row: usize, column: usize) -> &Value {
        &self.columns[column][row]
    }

    /// A whole column.
    pub fn column(&self, column: usize) -> &[Value] {
        &self.columns[column]
    }

    /// Materializes one row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// A borrowed columnar view over the whole table for vectorized scans.
    pub fn batch(&self) -> ColumnBatch<'_> {
        ColumnBatch {
            columns: &self.columns,
            row_count: self.row_count,
        }
    }

    /// Total stored bytes across all columns.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Stored bytes of a single column.
    pub fn column_size_bytes(&self, column: usize) -> usize {
        self.columns[column].iter().map(Value::size_bytes).sum()
    }

    /// Average row width in bytes (0 for an empty table).
    pub fn avg_row_bytes(&self) -> usize {
        self.size_bytes().checked_div(self.row_count).unwrap_or(0)
    }

    /// Number of distinct values in a column (exact; used by the statistics
    /// collector on the sample the designer is given).
    pub fn distinct_count(&self, column: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for v in &self.columns[column] {
            set.insert(v.clone());
        }
        set.len()
    }

    /// Minimum and maximum of a column, ignoring NULLs.
    pub fn min_max(&self, column: usize) -> Option<(Value, Value)> {
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for v in &self.columns[column] {
            if v.is_null() {
                continue;
            }
            if min.is_none_or(|m| v < m) {
                min = Some(v);
            }
            if max.is_none_or(|m| v > m) {
                max = Some(v);
            }
        }
        Some((min?.clone(), max?.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn small_table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        );
        let mut t = Table::new(schema);
        t.bulk_load(vec![
            vec![Value::Int(1), Value::Str("alpha".into())],
            vec![Value::Int(2), Value::Str("beta".into())],
            vec![Value::Int(3), Value::Str("alpha".into())],
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_and_read_back() {
        let t = small_table();
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value(1, 1), &Value::Str("beta".into()));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::Str("alpha".into())]);
    }

    #[test]
    fn rejects_bad_rows() {
        let mut t = small_table();
        assert!(t.insert(vec![Value::Int(4)]).is_err());
        assert!(t
            .insert(vec![Value::Str("oops".into()), Value::Str("x".into())])
            .is_err());
        assert_eq!(t.row_count(), 3);
    }

    #[test]
    fn selection_vectors_narrow_and_report_selectivity() {
        let sel = SelectionVector::all(4);
        assert_eq!(sel.len(), 4);
        assert_eq!(sel.indices(), &[0, 1, 2, 3]);
        let mut narrowed = SelectionVector::empty();
        narrowed.push(1);
        narrowed.push(3);
        assert_eq!(narrowed.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!((narrowed.selectivity(4) - 0.5).abs() < f64::EPSILON);
        assert!((SelectionVector::empty().selectivity(0) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn batch_gather_late_materializes_projected_columns() {
        let t = small_table();
        let batch = t.batch();
        assert_eq!(batch.row_count(), 3);
        assert_eq!(batch.column_count(), 2);
        assert_eq!(batch.column(0)[2], Value::Int(3));
        // Select rows 0 and 2, keep only the name column (index 1).
        let sel = SelectionVector::from_indices(vec![0, 2]);
        let rows = batch.gather(&sel, &[1]);
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("alpha".into())],
                vec![Value::Str("alpha".into())]
            ]
        );
        // Empty projection still yields the right number of (zero-width) rows.
        assert_eq!(batch.gather(&sel, &[]), vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn size_accounting_and_stats() {
        let t = small_table();
        // 3 ints (8 bytes each) + "alpha","beta","alpha" (+1 each).
        assert_eq!(t.size_bytes(), 24 + 6 + 5 + 6);
        assert_eq!(t.column_size_bytes(0), 24);
        assert_eq!(t.distinct_count(1), 2);
        let (min, max) = t.min_max(0).unwrap();
        assert_eq!(min, Value::Int(1));
        assert_eq!(max, Value::Int(3));
        assert!(t.avg_row_bytes() > 0);
    }
}
