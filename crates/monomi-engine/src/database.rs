//! The database facade: catalog + tables + encrypted-aggregation configuration.
//!
//! A [`Database`] instance plays the role of the paper's untrusted Postgres
//! server: it stores (encrypted or plaintext) tables, executes SQL, reports
//! EXPLAIN-style cost estimates, and exposes the cryptographic UDFs
//! (`paillier_sum`, `group_concat`, `search_match`) that MONOMI installs on the
//! server. It holds no decryption keys — for encrypted databases the only
//! key-derived material it sees is the *public* Paillier modulus needed to
//! multiply ciphertexts.

use crate::exec::{execute_query, execute_query_traced, ExecStats, ResultSet};
use crate::ops::ExecOptions;
use crate::schema::{Catalog, ColumnDef, TableSchema};
use crate::stats::{collect_stats, Estimator, QueryEstimate, TableStats};
use crate::storage::Table;
use crate::value::Value;
use crate::EngineError;
use monomi_math::{BigUint, MontgomeryCtx};
use monomi_sql::ast::Query;
use monomi_sql::parse_query;
use monomi_store::Store;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;

/// Environment knob selecting the backend [`Database::new`] uses:
/// `memory` (default) or `disk` (a fresh temporary segment store, removed
/// when the database is dropped). Sampled once per process.
pub const STORAGE_ENV: &str = "MONOMI_STORAGE";

fn env_default_is_disk() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| {
        std::env::var(STORAGE_ENV)
            .map(|v| v.eq_ignore_ascii_case("disk"))
            .unwrap_or(false)
    })
}

/// A temporary directory nobody else owns, for `MONOMI_STORAGE=disk`
/// databases created without an explicit path.
fn fresh_temp_dir() -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    loop {
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("monomi-db-{}-{seq}", std::process::id()));
        match std::fs::create_dir_all(dir.parent().expect("temp dir has a parent"))
            .and_then(|()| std::fs::create_dir(&dir))
        {
            Ok(()) => return dir,
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => panic!("cannot create temporary store directory: {e}"),
        }
    }
}

/// Server-side Paillier evaluation state: the public ciphertext modulus n²
/// together with the Montgomery context the `paillier_sum` UDF multiplies
/// ciphertexts in. Built once when the modulus is registered and shared
/// (via `Arc`) with every aggregation state, so per-query and per-group code
/// never re-derives Montgomery constants or re-parses the modulus.
#[derive(Clone, Debug)]
pub struct PaillierServerCtx {
    n_squared: BigUint,
    ctx: MontgomeryCtx,
    ciphertext_bytes: usize,
}

impl PaillierServerCtx {
    /// The public ciphertext modulus n².
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// The shared Montgomery context modulo n².
    pub fn ctx(&self) -> &MontgomeryCtx {
        &self.ctx
    }

    /// Fixed serialized ciphertext width in bytes.
    pub fn ciphertext_bytes(&self) -> usize {
        self.ciphertext_bytes
    }
}

/// An analytical database over one of two storage backends: purely in-memory
/// tables (the original engine) or a persistent columnar segment store
/// ([`monomi_store::Store`]) with zone-map pruning, a crash-safe catalog, and
/// a byte-budgeted segment cache. Query results are byte-identical across
/// backends at every thread count.
pub struct Database {
    catalog: Catalog,
    /// Tables by lowercased name. A BTreeMap, not a HashMap: `persist` walks
    /// this map, so its order determines segment file names and manifest
    /// version numbers — iteration must be deterministic for two identically
    /// built databases to produce byte-identical on-disk artifacts.
    tables: BTreeMap<String, Table>,
    paillier: Option<Arc<PaillierServerCtx>>,
    stats_cache: RwLock<Option<HashMap<String, TableStats>>>,
    /// The segment store of a disk-backed database.
    store: Option<Arc<Store>>,
    /// A temporary store directory this database owns (removed on drop).
    temp_dir: Option<PathBuf>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        if let Some(dir) = self.temp_dir.take() {
            // Drop table handles (and their Arc<Store>) before deleting.
            self.tables.clear();
            self.store = None;
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

impl Database {
    /// Creates an empty database on the backend `MONOMI_STORAGE` selects:
    /// in-memory by default, or a fresh temporary segment store under
    /// `MONOMI_STORAGE=disk` (removed when the database is dropped). For an
    /// explicit choice use [`in_memory`](Self::in_memory) or
    /// [`open`](Self::open).
    pub fn new() -> Self {
        if env_default_is_disk() {
            let dir = fresh_temp_dir();
            let store = Store::open(&dir).expect("temporary segment store opens");
            let mut db = Self::in_memory();
            db.store = Some(store);
            db.temp_dir = Some(dir);
            db
        } else {
            Self::in_memory()
        }
    }

    /// Creates an empty database with purely in-memory tables, regardless of
    /// the environment.
    pub fn in_memory() -> Self {
        Database {
            catalog: Catalog::new(),
            tables: BTreeMap::new(),
            paillier: None,
            stats_cache: RwLock::new(None),
            store: None,
            temp_dir: None,
        }
    }

    /// Opens (creating if necessary) a disk-backed database at `path`. An
    /// existing store directory is loaded through its crash-safe manifest:
    /// every committed table — schema, segments, zone maps — is visible
    /// exactly as of the last successful commit.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, EngineError> {
        let store = Store::open(path.into()).map_err(|e| EngineError::new(e.to_string()))?;
        Ok(Self::with_store(store))
    }

    /// Builds a disk-backed database over an already opened store (used by
    /// tests and benchmarks that tune [`monomi_store::StoreOptions`] — e.g. a
    /// tiny segment size to force multi-segment tables, or a small cache).
    pub fn with_store(store: Arc<Store>) -> Self {
        let mut db = Self::in_memory();
        for (name, columns) in store.catalog() {
            let schema = TableSchema::new(
                name.clone(),
                columns
                    .into_iter()
                    .map(|(cname, ty)| ColumnDef::new(cname, ty))
                    .collect(),
            );
            db.catalog.register(schema.clone());
            db.tables
                .insert(name, Table::new_disk(schema, Arc::clone(&store)));
        }
        db.store = Some(store);
        db
    }

    /// True when tables live in the persistent segment store.
    pub fn is_disk_backed(&self) -> bool {
        self.store.is_some()
    }

    /// The underlying segment store of a disk-backed database (exposed for
    /// benchmarks and tests: cache statistics, stored-byte accounting).
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Flushes every table's unflushed tail into committed segments (no-op
    /// for memory databases). After this returns, [`Database::open`] on the
    /// same path sees every row.
    ///
    /// Tables flush in name order (the map is a `BTreeMap`), so two databases
    /// built by the same sequence of operations produce byte-identical
    /// manifests and segment file names.
    pub fn persist(&mut self) -> Result<(), EngineError> {
        for table in self.tables.values_mut() {
            table.flush().map_err(EngineError::new)?;
        }
        Ok(())
    }

    /// Creates a table from a schema (replacing any existing table of that
    /// name). On the disk backend the schema is committed to the store's
    /// catalog before the table becomes usable.
    ///
    /// # Panics
    ///
    /// On the disk backend, panics if the catalog commit fails (e.g. the
    /// store directory became unwritable or the disk filled up) — the
    /// infallible signature is part of the original engine API; storage
    /// errors after setup surface as `Result`s (`insert`, `bulk_load`,
    /// `persist`, query execution).
    pub fn create_table(&mut self, schema: TableSchema) {
        self.create_table_with(schema, Vec::new());
    }

    /// [`create_table`](Self::create_table) with a list of columns opted out
    /// of secondary-index builds. An index file materializes a column's
    /// ciphertext equality (DET) or ordering (OPE) structure at rest; the
    /// opt-out trades lookup speed for not storing that structure. Only
    /// meaningful on the disk backend (memory tables build no indexes);
    /// unknown names are harmless.
    pub fn create_table_with(&mut self, schema: TableSchema, unindexed: Vec<String>) {
        let key = schema.name.to_lowercase();
        self.catalog.register(schema.clone());
        let table = match &self.store {
            Some(store) => {
                store
                    .create_table_with(
                        &key,
                        schema
                            .columns
                            .iter()
                            .map(|c| (c.name.clone(), c.ty))
                            .collect(),
                        unindexed,
                    )
                    .expect("catalog commit succeeds");
                Table::new_disk(schema, Arc::clone(store))
            }
            None => Table::new(schema),
        };
        self.tables.insert(key, table);
        self.invalidate_stats();
    }

    /// Registers the Paillier public modulus so the server can evaluate the
    /// `paillier_sum` UDF (ciphertext multiplication modulo n²). The
    /// Montgomery context for n² is derived once, here, and shared with every
    /// aggregation state.
    ///
    /// Panics if `n_squared` is even or zero (a Paillier modulus is a product
    /// of odd primes, so a valid n² is always odd).
    pub fn register_paillier_modulus(&mut self, n_squared: BigUint) {
        let ctx = MontgomeryCtx::new(n_squared.clone());
        let ciphertext_bytes = n_squared.bits().div_ceil(8);
        self.paillier = Some(Arc::new(PaillierServerCtx {
            n_squared,
            ctx,
            ciphertext_bytes,
        }));
    }

    /// Borrowed handle to the registered Paillier modulus (n²), if any.
    pub fn paillier_modulus(&self) -> Option<&BigUint> {
        self.paillier.as_deref().map(PaillierServerCtx::n_squared)
    }

    /// The shared Paillier evaluation context, if a modulus was registered.
    pub fn paillier_ctx(&self) -> Option<&Arc<PaillierServerCtx>> {
        self.paillier.as_ref()
    }

    /// Inserts one row into a table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<(), EngineError> {
        let t = self
            .tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| EngineError::new(format!("unknown table {table}")))?;
        t.insert(row).map_err(EngineError::new)?;
        self.invalidate_stats();
        Ok(())
    }

    /// Bulk-loads rows into a table.
    pub fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), EngineError> {
        let t = self
            .tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| EngineError::new(format!("unknown table {table}")))?;
        t.bulk_load(rows).map_err(EngineError::new)?;
        self.invalidate_stats();
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_lowercase())
    }

    /// All table names, in sorted order (the map is ordered by name).
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// The catalog of schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Total logical size of all tables in bytes — identical across backends
    /// (the space-overhead experiments depend on that). The disk backend's
    /// physical footprint is [`total_stored_bytes`](Self::total_stored_bytes).
    pub fn total_size_bytes(&self) -> usize {
        self.tables.values().map(Table::size_bytes).sum()
    }

    /// Total stored (encoded) bytes of committed segments — the real on-disk
    /// footprint of a disk-backed database (0 for memory databases).
    pub fn total_stored_bytes(&self) -> usize {
        self.tables.values().map(Table::stored_bytes).sum()
    }

    /// Executes a SQL string with positional parameters, using the
    /// environment-derived execution options (`MONOMI_THREADS`,
    /// `MONOMI_MORSEL_ROWS`; see [`ExecOptions::from_env`]).
    pub fn execute_sql(
        &self,
        sql: &str,
        params: &[Value],
    ) -> Result<(ResultSet, ExecStats), EngineError> {
        self.execute_sql_with(sql, params, &ExecOptions::env_cached())
    }

    /// Executes a SQL string with positional parameters and explicit
    /// execution options.
    pub fn execute_sql_with(
        &self,
        sql: &str,
        params: &[Value],
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecStats), EngineError> {
        let query = parse_query(sql).map_err(|e| EngineError::new(e.to_string()))?;
        self.execute_with(&query, params, opts)
    }

    /// Executes a parsed query with positional parameters, using the
    /// environment-derived execution options. Thread count defaults to
    /// `MONOMI_THREADS` (or all available cores); results are bit-identical
    /// at every thread count.
    pub fn execute(
        &self,
        query: &Query,
        params: &[Value],
    ) -> Result<(ResultSet, ExecStats), EngineError> {
        self.execute_with(query, params, &ExecOptions::env_cached())
    }

    /// Executes a parsed query with explicit execution options (worker thread
    /// count and morsel size).
    pub fn execute_with(
        &self,
        query: &Query,
        params: &[Value],
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecStats), EngineError> {
        execute_query(self, query, params, opts)
    }

    /// Executes a SQL string like [`Database::execute_sql_with`], additionally
    /// collecting one span per named operator (see
    /// [`execute_query_traced`]). Results and work counters are identical to
    /// the untraced path; only wall-clock observability is added.
    pub fn execute_sql_traced(
        &self,
        sql: &str,
        params: &[Value],
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecStats, Vec<monomi_obs::Span>), EngineError> {
        let query = parse_query(sql).map_err(|e| EngineError::new(e.to_string()))?;
        self.execute_with_traced(&query, params, opts)
    }

    /// Executes a parsed query like [`Database::execute_with`], additionally
    /// collecting per-operator spans.
    pub fn execute_with_traced(
        &self,
        query: &Query,
        params: &[Value],
        opts: &ExecOptions,
    ) -> Result<(ResultSet, ExecStats, Vec<monomi_obs::Span>), EngineError> {
        execute_query_traced(self, query, params, opts)
    }

    /// Returns EXPLAIN-style cost and cardinality estimates for a query, the
    /// interface MONOMI's planner uses instead of timing candidate plans.
    pub fn estimate(&self, query: &Query) -> QueryEstimate {
        let mut cache = self.stats_cache.write();
        if cache.is_none() {
            *cache = Some(collect_stats(self));
        }
        let stats = cache.as_ref().expect("stats just computed");
        Estimator::new(stats).estimate(query)
    }

    /// Per-table statistics snapshot (used by the designer for data-driven
    /// decisions such as pre-filter thresholds).
    pub fn table_stats(&self) -> HashMap<String, TableStats> {
        let mut cache = self.stats_cache.write();
        if cache.is_none() {
            *cache = Some(collect_stats(self));
        }
        cache.as_ref().expect("stats just computed").clone()
    }

    fn invalidate_stats(&self) {
        *self.stats_cache.write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", ColumnType::Int),
                ColumnDef::new("o_custkey", ColumnType::Int),
                ColumnDef::new("o_totalprice", ColumnType::Int),
                ColumnDef::new("o_status", ColumnType::Str),
            ],
        ));
        db.create_table(TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("c_custkey", ColumnType::Int),
                ColumnDef::new("c_name", ColumnType::Str),
                ColumnDef::new("c_nationkey", ColumnType::Int),
            ],
        ));
        for i in 0..100i64 {
            db.insert(
                "orders",
                vec![
                    Value::Int(i),
                    Value::Int(i % 10),
                    Value::Int(100 + i * 7),
                    Value::Str(if i % 3 == 0 { "F" } else { "O" }.into()),
                ],
            )
            .unwrap();
        }
        for c in 0..10i64 {
            db.insert(
                "customer",
                vec![
                    Value::Int(c),
                    Value::Str(format!("Customer#{c}")),
                    Value::Int(c % 5),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn filter_and_projection() {
        let db = sample_db();
        let (rs, stats) = db
            .execute_sql(
                "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 700",
                &[],
            )
            .unwrap();
        assert!(rs.rows.iter().all(|r| r[1].as_int().unwrap() > 700));
        assert!(!rs.is_empty());
        assert_eq!(stats.rows_scanned, 100);
        assert_eq!(rs.columns, vec!["o_orderkey", "o_totalprice"]);
    }

    #[test]
    fn group_by_and_having() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT o_custkey, SUM(o_totalprice) AS total, COUNT(*) FROM orders \
                 GROUP BY o_custkey HAVING COUNT(*) >= 10 ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 10);
        // Ordered descending by total.
        for w in rs.rows.windows(2) {
            assert!(w[0][1] >= w[1][1]);
        }
    }

    #[test]
    fn join_with_aggregation() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT c_name, SUM(o_totalprice) FROM customer, orders \
                 WHERE c_custkey = o_custkey GROUP BY c_name ORDER BY c_name",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 10);
        // Each customer has 10 orders; totals must be positive.
        assert!(rs.rows.iter().all(|r| r[1].as_int().unwrap() > 0));
    }

    #[test]
    fn subqueries_scalar_and_in() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT o_orderkey FROM orders WHERE o_totalprice > \
                 (SELECT AVG(o_totalprice) FROM orders)",
                &[],
            )
            .unwrap();
        assert!(rs.rows.len() > 10 && rs.rows.len() < 100);

        let (rs2, _) = db
            .execute_sql(
                "SELECT c_name FROM customer WHERE c_custkey IN \
                 (SELECT o_custkey FROM orders WHERE o_totalprice > 750) ORDER BY c_name",
                &[],
            )
            .unwrap();
        assert!(!rs2.is_empty());
    }

    #[test]
    fn correlated_exists() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT c_custkey FROM customer WHERE EXISTS \
                 (SELECT * FROM orders WHERE o_custkey = c_custkey AND o_totalprice > 780)",
                &[],
            )
            .unwrap();
        assert!(!rs.is_empty() && rs.len() < 10);
    }

    #[test]
    fn params_distinct_limit() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT DISTINCT o_status FROM orders WHERE o_custkey = :1 ORDER BY o_status LIMIT 5",
                &[Value::Int(3)],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn derived_table_in_from() {
        let db = sample_db();
        let (rs, _) = db
            .execute_sql(
                "SELECT status, total FROM \
                 (SELECT o_status AS status, SUM(o_totalprice) AS total FROM orders GROUP BY o_status) AS t \
                 ORDER BY total DESC",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert!(rs.rows[0][1] >= rs.rows[1][1]);
    }

    #[test]
    fn size_accounting_for_space_experiments() {
        let db = sample_db();
        assert!(db.total_size_bytes() > 0);
        let orders_bytes = db.table("orders").unwrap().size_bytes();
        let customer_bytes = db.table("customer").unwrap().size_bytes();
        assert_eq!(db.total_size_bytes(), orders_bytes + customer_bytes);
    }

    #[test]
    fn estimate_is_available() {
        let db = sample_db();
        let q = parse_query("SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey")
            .unwrap();
        let est = db.estimate(&q);
        assert!(est.server_cost > 0.0);
        assert!(est.result_rows >= 9.0 && est.result_rows <= 11.0);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let db = sample_db();
        assert!(db.execute_sql("SELECT x FROM missing", &[]).is_err());
    }

    /// Two tables with NULLs in the join columns.
    fn nullable_join_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "l",
            vec![
                ColumnDef::new("lk", ColumnType::Int),
                ColumnDef::new("lv", ColumnType::Str),
            ],
        ));
        db.create_table(TableSchema::new(
            "r",
            vec![
                ColumnDef::new("rk", ColumnType::Int),
                ColumnDef::new("rv", ColumnType::Str),
            ],
        ));
        db.bulk_load(
            "l",
            vec![
                vec![Value::Int(1), Value::Str("l1".into())],
                vec![Value::Null, Value::Str("lnull".into())],
                vec![Value::Int(2), Value::Str("l2".into())],
            ],
        )
        .unwrap();
        db.bulk_load(
            "r",
            vec![
                vec![Value::Int(1), Value::Str("r1".into())],
                vec![Value::Null, Value::Str("rnull".into())],
                vec![Value::Int(3), Value::Str("r3".into())],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn null_join_keys_never_match() {
        let db = nullable_join_db();
        // SQL equi-join: NULL = NULL is not true, so only lk=1/rk=1 pairs up.
        let (rs, _) = db
            .execute_sql("SELECT lv, rv FROM l, r WHERE lk = rk", &[])
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::Str("l1".into()), Value::Str("r1".into())]]
        );
    }

    #[test]
    fn group_by_keeps_one_null_group() {
        let db = nullable_join_db();
        // GROUP BY (unlike joins) collapses NULL keys into a single group.
        let (rs, _) = db
            .execute_sql("SELECT lk, COUNT(*) FROM l GROUP BY lk ORDER BY lk", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Null);
        assert_eq!(rs.rows[0][1], Value::Int(1));
    }

    #[test]
    fn distinct_over_mixed_int_float_expressions() {
        let db = sample_db();
        // The CASE yields Int(1) for even keys and Float(1.0) for odd ones;
        // the DISTINCT hash set must treat them as a single key now that
        // equal numerics hash identically.
        let (rs, _) = db
            .execute_sql(
                "SELECT DISTINCT CASE WHEN o_orderkey % 2 = 0 THEN 1 ELSE 1.0 END FROM orders",
                &[],
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1);

        // Same contract for GROUP BY keys over a computed expression.
        let (grouped, _) = db
            .execute_sql(
                "SELECT COUNT(*) FROM orders \
                 GROUP BY CASE WHEN o_orderkey % 2 = 0 THEN 1 ELSE 1.0 END",
                &[],
            )
            .unwrap();
        assert_eq!(grouped.rows, vec![vec![Value::Int(100)]]);
    }

    #[test]
    fn order_by_sorts_nulls_first_and_breaks_ties_stably() {
        let mut db = nullable_join_db();
        db.insert("l", vec![Value::Int(1), Value::Str("l1b".into())])
            .unwrap();
        let (rs, _) = db
            .execute_sql("SELECT lk, lv FROM l ORDER BY lk, lv DESC", &[])
            .unwrap();
        // NULL first, then ties on lk=1 broken by lv descending.
        assert_eq!(rs.rows[0][0], Value::Null);
        assert_eq!(rs.rows[1][1], Value::Str("l1b".into()));
        assert_eq!(rs.rows[2][1], Value::Str("l1".into()));
        assert_eq!(rs.rows[3][0], Value::Int(2));
    }

    #[test]
    fn scan_stats_report_selectivity_and_materialized_bytes() {
        let db = sample_db();
        let (_, stats) = db
            .execute_sql(
                "SELECT o_orderkey FROM orders WHERE o_totalprice > 700",
                &[],
            )
            .unwrap();
        assert_eq!(stats.rows_scanned, 100);
        // (100 + i*7) > 700 for i in 86..100 → 14 survivors. The filter on
        // o_totalprice was consumed by the scan, so only o_orderkey (8 bytes
        // per row) is materialized.
        assert_eq!(stats.rows_materialized, 14);
        assert_eq!(stats.bytes_materialized, 14 * 8);
        assert!(stats.bytes_materialized < stats.bytes_scanned);
        assert!((stats.scan_selectivity() - 0.14).abs() < 1e-9);

        // Unfiltered scans materialize everything they reference.
        let (_, full) = db
            .execute_sql("SELECT o_orderkey FROM orders", &[])
            .unwrap();
        assert_eq!(full.rows_materialized, 100);
        assert!((full.scan_selectivity() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn late_materialization_prunes_unreferenced_columns() {
        let db = sample_db();
        // Only o_orderkey is referenced: materialized bytes must stay below
        // 8 bytes per surviving row plus nothing else (o_status strings and
        // the other int columns are never cloned).
        let (_, stats) = db
            .execute_sql("SELECT o_orderkey FROM orders WHERE o_orderkey < 10", &[])
            .unwrap();
        assert_eq!(stats.rows_materialized, 10);
        assert_eq!(stats.bytes_materialized, 10 * 8);
    }

    #[test]
    fn count_star_scan_needs_no_columns() {
        let db = sample_db();
        let (rs, stats) = db.execute_sql("SELECT COUNT(*) FROM orders", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(100)]]);
        // Nothing is referenced, so nothing is materialized.
        assert_eq!(stats.bytes_materialized, 0);
        assert_eq!(stats.rows_materialized, 100);
    }
}
