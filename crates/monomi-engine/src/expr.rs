//! Expression evaluation over rows.
//!
//! The evaluator implements SQL semantics for the subset MONOMI needs:
//! arithmetic with integer/float coercion, date ± interval arithmetic,
//! three-valued comparisons, LIKE patterns, IN / BETWEEN / CASE / EXTRACT,
//! and the engine's encrypted-data scalar functions (e.g. `search_match`).
//!
//! Aggregates are *not* evaluated here: the executor computes them per group
//! and exposes the results through [`EvalContext::aggregates`], so expressions
//! such as `HAVING SUM(x) > 10` resolve the `SUM(x)` node by lookup.

use crate::value::{date, Value};
use crate::EngineError;
use monomi_sql::ast::*;
use std::collections::HashMap;

/// Describes the columns of the rows an expression is evaluated against.
#[derive(Clone, Debug, Default)]
pub struct RowSchema {
    /// `(binding, column_name)` pairs; `binding` is the table name or alias the
    /// column came from, if any.
    pub columns: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Creates a schema from `(binding, name)` pairs.
    pub fn new(columns: Vec<(Option<String>, String)>) -> Self {
        RowSchema { columns }
    }

    /// Resolves a column reference to an index.
    pub fn resolve(&self, col: &ColumnRef) -> Option<usize> {
        // Qualified reference: match binding and name.
        if let Some(table) = &col.table {
            return self.columns.iter().position(|(b, n)| {
                n.eq_ignore_ascii_case(&col.column)
                    && b.as_deref().is_some_and(|b| b.eq_ignore_ascii_case(table))
            });
        }
        // Unqualified: name must be unambiguous (first match wins, mirroring
        // the permissive behaviour of most engines for our workloads).
        self.columns
            .iter()
            .position(|(_, n)| n.eq_ignore_ascii_case(&col.column))
    }

    /// Appends another schema's columns (used when joining).
    pub fn concat(&self, other: &RowSchema) -> RowSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.clone());
        RowSchema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Callback used to evaluate subqueries; receives the subquery and the current
/// outer row (schema + values) for correlated references.
pub type SubqueryFn<'a> =
    &'a dyn Fn(&Query, Option<(&RowSchema, &[Value])>) -> Result<Vec<Vec<Value>>, EngineError>;

/// Everything an expression evaluation might need besides the row itself.
pub struct EvalContext<'a> {
    /// Positional parameter values (`:1` is `params[0]`).
    pub params: &'a [Value],
    /// Computed aggregate values for the current group, keyed by the aggregate
    /// expression node.
    pub aggregates: Option<&'a HashMap<Expr, Value>>,
    /// Callback for executing subqueries.
    pub subquery: Option<SubqueryFn<'a>>,
    /// Outer row for correlated subqueries (schema and values of the row in
    /// the enclosing query).
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl<'a> EvalContext<'a> {
    /// A context with only parameters.
    pub fn with_params(params: &'a [Value]) -> Self {
        EvalContext {
            params,
            aggregates: None,
            subquery: None,
            outer: None,
        }
    }
}

/// Evaluates `expr` against a row.
pub fn eval(
    expr: &Expr,
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    match expr {
        Expr::Column(c) => {
            if let Some(idx) = schema.resolve(c) {
                return Ok(row[idx].clone());
            }
            // Correlated reference to the outer query's row.
            if let Some((outer_schema, outer_row)) = ctx.outer {
                if let Some(idx) = outer_schema.resolve(c) {
                    return Ok(outer_row[idx].clone());
                }
            }
            Err(EngineError::new(format!("unknown column {c}")))
        }
        Expr::Literal(l) => literal_value(l),
        Expr::Param(n) => ctx
            .params
            .get(n - 1)
            .cloned()
            .ok_or_else(|| EngineError::new(format!("missing parameter :{n}"))),
        Expr::BinaryOp { left, op, right } => {
            let l = eval(left, schema, row, ctx)?;
            let r = eval(right, schema, row, ctx)?;
            eval_binop(&l, *op, &r)
        }
        Expr::UnaryOp { op, expr } => {
            let v = eval(expr, schema, row, ctx)?;
            match op {
                UnaryOp::Not => match v.as_bool() {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Int(!b as i64)),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EngineError::new(format!("cannot negate {other:?}"))),
                },
            }
        }
        Expr::Aggregate { .. } => {
            if let Some(aggs) = ctx.aggregates {
                if let Some(v) = aggs.get(expr) {
                    return Ok(v.clone());
                }
            }
            Err(EngineError::new(format!(
                "aggregate {expr} used outside of an aggregation context"
            )))
        }
        Expr::Function { name, args } => {
            // UDF aggregates (paillier_sum, group_concat) are computed by the
            // executor per group; resolve them from the aggregate context.
            if let Some(aggs) = ctx.aggregates {
                if let Some(v) = aggs.get(expr) {
                    return Ok(v.clone());
                }
            }
            eval_function(name, args, schema, row, ctx)
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            for (when, then) in when_then {
                let matched = match operand {
                    Some(op_expr) => {
                        let op_v = eval(op_expr, schema, row, ctx)?;
                        let w_v = eval(when, schema, row, ctx)?;
                        op_v.equals(&w_v)
                    }
                    None => eval(when, schema, row, ctx)?.as_bool().unwrap_or(false),
                };
                if matched {
                    return eval(then, schema, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, schema, row, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let p = eval(pattern, schema, row, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    let m = like_match(&s, &pat);
                    Ok(Value::Int((m ^ negated) as i64))
                }
                (v, p) => Err(EngineError::new(format!(
                    "LIKE requires strings, got {v:?} LIKE {p:?}"
                ))),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let item_v = eval(item, schema, row, ctx)?;
                if v.equals(&item_v) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Int((found ^ negated) as i64))
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let rows = run_subquery(subquery, schema, row, ctx)?;
            let found = rows.iter().any(|r| r.first().is_some_and(|x| v.equals(x)));
            Ok(Value::Int((found ^ negated) as i64))
        }
        Expr::Exists { subquery, negated } => {
            let rows = run_subquery(subquery, schema, row, ctx)?;
            Ok(Value::Int((!rows.is_empty() ^ negated) as i64))
        }
        Expr::ScalarSubquery(subquery) => {
            let rows = run_subquery(subquery, schema, row, ctx)?;
            match rows.first() {
                Some(r) => Ok(r.first().cloned().unwrap_or(Value::Null)),
                None => Ok(Value::Null),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let lo = eval(low, schema, row, ctx)?;
            let hi = eval(high, schema, row, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = v >= lo && v <= hi;
            Ok(Value::Int((within ^ negated) as i64))
        }
        Expr::Extract { field, expr } => {
            let v = eval(expr, schema, row, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => Ok(Value::Int(match field {
                    DateField::Year => date::year_of(d) as i64,
                    DateField::Month => date::month_of(d) as i64,
                    DateField::Day => date::day_of(d) as i64,
                })),
                other => Err(EngineError::new(format!("EXTRACT from non-date {other:?}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row, ctx)?;
            Ok(Value::Int((v.is_null() ^ negated) as i64))
        }
    }
}

fn run_subquery(
    subquery: &Query,
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Vec<Vec<Value>>, EngineError> {
    let f = ctx
        .subquery
        .ok_or_else(|| EngineError::new("subquery evaluation not available in this context"))?;
    f(subquery, Some((schema, row)))
}

/// Converts a literal AST node into a runtime value.
pub fn literal_value(l: &Literal) -> Result<Value, EngineError> {
    match l {
        Literal::Number(s) => {
            if let Ok(i) = s.parse::<i64>() {
                Ok(Value::Int(i))
            } else {
                s.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| EngineError::new(format!("bad numeric literal {s}")))
            }
        }
        Literal::String(s) => Ok(Value::Str(s.clone())),
        Literal::Date(s) => date::parse_date(s)
            .map(Value::Date)
            .ok_or_else(|| EngineError::new(format!("bad date literal {s}"))),
        Literal::Interval { value, unit } => {
            // Represent intervals as (days, months) packed into an Int pair:
            // days in the low 32 bits, months in the high 32 bits.
            let n: i64 = value
                .parse()
                .map_err(|_| EngineError::new(format!("bad interval value {value}")))?;
            let (days, months) = match unit {
                IntervalUnit::Day => (n, 0i64),
                IntervalUnit::Month => (0, n),
                IntervalUnit::Year => (0, n * 12),
            };
            Ok(Value::Int((months << 32) | (days & 0xffff_ffff)))
        }
        Literal::Null => Ok(Value::Null),
        Literal::Boolean(b) => Ok(Value::Int(*b as i64)),
    }
}

/// True if an expression is an interval literal (needed to give `date + X`
/// interval semantics).
fn interval_parts(v: i64) -> (i64, i64) {
    let days = (v & 0xffff_ffff) as i32 as i64;
    let months = v >> 32;
    (days, months)
}

fn eval_binop(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, EngineError> {
    use BinaryOp::*;
    if matches!(op, And | Or) {
        let lb = l.as_bool();
        let rb = r.as_bool();
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Int(0),
            (And, Some(true), Some(true)) => Value::Int(1),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Int(1),
            (Or, Some(false), Some(false)) => Value::Int(0),
            _ => Value::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.compare(r);
        return Ok(Value::Int(comparison_holds(op, ord) as i64));
    }
    // Arithmetic.
    match (l, r) {
        // Date arithmetic with intervals and day counts.
        (Value::Date(d), Value::Int(i)) => {
            let (days, months) = interval_parts(*i);
            let base = if months != 0 {
                date::add_months(*d, months as i32)
            } else {
                *d
            };
            match op {
                Add => Ok(Value::Date(base + days as i32)),
                Sub => {
                    let base = if months != 0 {
                        date::add_months(*d, -(months as i32))
                    } else {
                        *d
                    };
                    Ok(Value::Date(base - days as i32))
                }
                _ => Err(EngineError::new("unsupported date arithmetic")),
            }
        }
        (Value::Date(a), Value::Date(b)) if op == Sub => Ok(Value::Int((*a - *b) as i64)),
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Ok(Value::Int(a.wrapping_add(*b))),
            Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    // Integer division would silently change TPC-H ratio
                    // results; use float division like the plaintext baseline.
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            Mod => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = (
                l.as_float()
                    .ok_or_else(|| EngineError::new(format!("non-numeric operand {l:?}")))?,
                r.as_float()
                    .ok_or_else(|| EngineError::new(format!("non-numeric operand {r:?}")))?,
            );
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

fn eval_function(
    name: &str,
    args: &[Expr],
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval(a, schema, row, ctx))
        .collect::<Result<_, _>>()?;
    match name {
        "substring" | "substr" => {
            let s = vals
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("substring: first argument must be a string"))?;
            let start = vals.get(1).and_then(Value::as_int).unwrap_or(1).max(1) as usize;
            let len = vals.get(2).and_then(Value::as_int);
            let chars: Vec<char> = s.chars().collect();
            let begin = (start - 1).min(chars.len());
            let end = match len {
                Some(l) => (begin + l.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            Ok(Value::Str(chars[begin..end].iter().collect()))
        }
        "year" => match vals.first() {
            Some(Value::Date(d)) => Ok(Value::Int(date::year_of(*d) as i64)),
            _ => Err(EngineError::new("year() expects a date")),
        },
        // search_match(search_ciphertext, hex_token): server-side evaluation of
        // an encrypted LIKE '%kw%' predicate.
        "search_match" => {
            let ct = vals
                .first()
                .and_then(Value::as_bytes)
                .ok_or_else(|| EngineError::new("search_match: first arg must be bytes"))?;
            let token_hex = vals
                .get(1)
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("search_match: second arg must be a hex token"))?;
            let token = decode_hex(token_hex)
                .ok_or_else(|| EngineError::new("search_match: bad hex token"))?;
            if token.len() != 16 {
                return Err(EngineError::new("search_match: token must be 16 bytes"));
            }
            let mut t = [0u8; 16];
            t.copy_from_slice(&token);
            let ct = monomi_crypto::SearchCiphertext::from_bytes(ct);
            Ok(Value::Int(ct.matches(&monomi_crypto::SearchToken(t)) as i64))
        }
        // hex_bytes('deadbeef'): literal byte strings in rewritten queries.
        "hex_bytes" => {
            let s = vals
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("hex_bytes expects a hex string"))?;
            decode_hex(s)
                .map(Value::Bytes)
                .ok_or_else(|| EngineError::new("hex_bytes: invalid hex"))
        }
        other => Err(EngineError::new(format!("unknown function {other}"))),
    }
}

/// A single-table predicate compiled for vectorized evaluation over the
/// column slices of a [`ColumnBatch`](crate::storage::ColumnBatch).
///
/// Compilation recognizes the conjunct shapes that dominate analytical WHERE
/// clauses (column-vs-constant comparisons, BETWEEN, IN lists, LIKE, IS NULL,
/// and AND/OR combinations of those) and constant-folds the literal side once,
/// so the per-row work is a borrowed `Value` comparison — no cloning, no
/// re-evaluation of the constant expression. Anything else falls back to
/// [`ColumnarPredicate::General`], which still avoids materializing rows: it
/// clones only the columns the predicate references into a reused scratch row.
///
/// Selection semantics are SQL's WHERE semantics: a row is selected iff the
/// predicate evaluates to *true* (NULL and false both drop the row). AND/OR
/// over "is-true" bits agrees with three-valued logic for this purpose because
/// `x AND y` / `x OR y` is true iff the corresponding boolean combination of
/// "is true" holds; predicates whose NULL-ness matters deeper down (e.g. under
/// NOT) are compiled as `General` and evaluated with full 3VL.
#[derive(Clone, Debug)]
pub enum ColumnarPredicate {
    /// Every sub-predicate must select the row; applied as successive
    /// narrowing passes over the selection vector.
    And(Vec<ColumnarPredicate>),
    /// Any sub-predicate may select the row; branch selections are unioned.
    Or(Vec<ColumnarPredicate>),
    /// `column <op> constant` with a pre-folded constant.
    CmpConst {
        col: usize,
        op: BinaryOp,
        value: Value,
    },
    /// `column [NOT] BETWEEN low AND high` with pre-folded bounds.
    BetweenConst {
        col: usize,
        low: Value,
        high: Value,
        negated: bool,
    },
    /// `column [NOT] IN (constants…)`.
    InListConst {
        col: usize,
        values: Vec<Value>,
        negated: bool,
    },
    /// `column [NOT] LIKE 'pattern'`.
    LikeConst {
        col: usize,
        pattern: String,
        negated: bool,
    },
    /// `column IS [NOT] NULL`.
    IsNullTest { col: usize, negated: bool },
    /// A predicate folded to a constant truth value at compile time.
    Const(bool),
    /// Fallback: row-at-a-time evaluation that clones only the referenced
    /// columns into a scratch row.
    General { expr: Expr, referenced: Vec<usize> },
}

/// Compiles a single-relation predicate for vectorized evaluation.
///
/// The caller must guarantee the predicate contains no subqueries or
/// aggregates and that every column reference resolves in `schema` (the
/// executor's scan path checks this before compiling). `ctx` supplies
/// parameter values for constant folding.
pub fn compile_predicate(
    expr: &Expr,
    schema: &RowSchema,
    ctx: &EvalContext<'_>,
) -> ColumnarPredicate {
    // A constant sub-expression: no columns, no subqueries, no aggregates.
    let fold = |e: &Expr| -> Option<Value> {
        if !e.column_refs().is_empty() || e.contains_subquery() || e.contains_aggregate() {
            return None;
        }
        eval(e, &RowSchema::default(), &[], ctx).ok()
    };
    let as_column = |e: &Expr| -> Option<usize> {
        match e {
            Expr::Column(c) => schema.resolve(c),
            _ => None,
        }
    };
    let general = || {
        let mut referenced: Vec<usize> = expr
            .column_refs()
            .iter()
            .filter_map(|c| schema.resolve(c))
            .collect();
        referenced.sort_unstable();
        referenced.dedup();
        ColumnarPredicate::General {
            expr: expr.clone(),
            referenced,
        }
    };

    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOp::And,
            right,
        } => ColumnarPredicate::And(vec![
            compile_predicate(left, schema, ctx),
            compile_predicate(right, schema, ctx),
        ]),
        Expr::BinaryOp {
            left,
            op: BinaryOp::Or,
            right,
        } => ColumnarPredicate::Or(vec![
            compile_predicate(left, schema, ctx),
            compile_predicate(right, schema, ctx),
        ]),
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            // Orient as column <op> constant, flipping the operator if the
            // column is on the right.
            let oriented = match (as_column(left), as_column(right)) {
                (Some(col), None) => fold(right).map(|v| (col, *op, v)),
                (None, Some(col)) => fold(left).map(|v| (col, flip_comparison(*op), v)),
                _ => None,
            };
            match oriented {
                // Comparing against NULL is never true.
                Some((_, _, Value::Null)) => ColumnarPredicate::Const(false),
                Some((col, op, value)) => ColumnarPredicate::CmpConst { col, op, value },
                None => general(),
            }
        }
        Expr::Between {
            expr: target,
            low,
            high,
            negated,
        } => match (as_column(target), fold(low), fold(high)) {
            (Some(_), Some(Value::Null), _) | (Some(_), _, Some(Value::Null)) => {
                ColumnarPredicate::Const(false)
            }
            (Some(col), Some(low), Some(high)) => ColumnarPredicate::BetweenConst {
                col,
                low,
                high,
                negated: *negated,
            },
            _ => general(),
        },
        Expr::InList {
            expr: target,
            list,
            negated,
        } => {
            let folded: Option<Vec<Value>> = list.iter().map(fold).collect();
            match (as_column(target), folded) {
                (Some(col), Some(values)) => ColumnarPredicate::InListConst {
                    col,
                    values,
                    negated: *negated,
                },
                _ => general(),
            }
        }
        Expr::Like {
            expr: target,
            pattern,
            negated,
        } => match (as_column(target), fold(pattern)) {
            (Some(_), Some(Value::Null)) => ColumnarPredicate::Const(false),
            (Some(col), Some(Value::Str(pattern))) => ColumnarPredicate::LikeConst {
                col,
                pattern,
                negated: *negated,
            },
            _ => general(),
        },
        Expr::IsNull {
            expr: target,
            negated,
        } => match as_column(target) {
            Some(col) => ColumnarPredicate::IsNullTest {
                col,
                negated: *negated,
            },
            None => general(),
        },
        _ => match fold(expr) {
            Some(v) => ColumnarPredicate::Const(v.as_bool().unwrap_or(false)),
            None => general(),
        },
    }
}

/// Mirror of a comparison operator across `=` (for `const <op> column`).
fn flip_comparison(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// True iff `ord` satisfies the comparison operator.
fn comparison_holds(op: BinaryOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => false,
    }
}

/// Applies a compiled predicate over a column batch, narrowing `input` to the
/// rows on which the predicate is true. Rows are never materialized; the
/// `General` fallback clones only the referenced columns into a scratch row.
pub fn apply_predicate(
    pred: &ColumnarPredicate,
    batch: &crate::storage::ColumnBatch<'_>,
    input: &crate::storage::SelectionVector,
    schema: &RowSchema,
    ctx: &EvalContext<'_>,
) -> Result<crate::storage::SelectionVector, EngineError> {
    use crate::storage::SelectionVector;
    match pred {
        ColumnarPredicate::And(parts) => {
            let mut sel = input.clone();
            for p in parts {
                if sel.is_empty() {
                    break;
                }
                sel = apply_predicate(p, batch, &sel, schema, ctx)?;
            }
            Ok(sel)
        }
        ColumnarPredicate::Or(parts) => {
            let mut merged = SelectionVector::empty();
            for p in parts {
                let sel = apply_predicate(p, batch, input, schema, ctx)?;
                merged = union_selections(&merged, &sel);
            }
            Ok(merged)
        }
        ColumnarPredicate::CmpConst { col, op, value } => {
            let column = batch.column(*col);
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                let v = &column[ridx];
                if !v.is_null() && comparison_holds(*op, v.compare(value)) {
                    out.push(ridx);
                }
            }
            Ok(out)
        }
        ColumnarPredicate::BetweenConst {
            col,
            low,
            high,
            negated,
        } => {
            let column = batch.column(*col);
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                let v = &column[ridx];
                if v.is_null() {
                    continue;
                }
                let within = v >= low && v <= high;
                if within ^ negated {
                    out.push(ridx);
                }
            }
            Ok(out)
        }
        ColumnarPredicate::InListConst {
            col,
            values,
            negated,
        } => {
            let column = batch.column(*col);
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                let v = &column[ridx];
                if v.is_null() {
                    continue;
                }
                let found = values.iter().any(|item| v.equals(item));
                if found ^ negated {
                    out.push(ridx);
                }
            }
            Ok(out)
        }
        ColumnarPredicate::LikeConst {
            col,
            pattern,
            negated,
        } => {
            let column = batch.column(*col);
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                match &column[ridx] {
                    Value::Null => {}
                    Value::Str(s) => {
                        if like_match(s, pattern) ^ negated {
                            out.push(ridx);
                        }
                    }
                    other => {
                        return Err(EngineError::new(format!(
                            "LIKE requires strings, got {other:?} LIKE Str({pattern:?})"
                        )))
                    }
                }
            }
            Ok(out)
        }
        ColumnarPredicate::IsNullTest { col, negated } => {
            let column = batch.column(*col);
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                if column[ridx].is_null() ^ negated {
                    out.push(ridx);
                }
            }
            Ok(out)
        }
        ColumnarPredicate::Const(true) => Ok(input.clone()),
        ColumnarPredicate::Const(false) => Ok(SelectionVector::empty()),
        ColumnarPredicate::General { expr, referenced } => {
            let mut scratch = vec![Value::Null; schema.len()];
            let mut out = SelectionVector::empty();
            for ridx in input.iter() {
                for &c in referenced {
                    scratch[c] = batch.column(c)[ridx].clone();
                }
                if eval(expr, schema, &scratch, ctx)?
                    .as_bool()
                    .unwrap_or(false)
                {
                    out.push(ridx);
                }
            }
            Ok(out)
        }
    }
}

/// Zone-map pruning: decides whether a segment whose per-column statistics
/// are `zones` (over `rows` rows) could contain *any* row satisfying `pred`.
/// Returning `false` lets the scan skip the segment without decoding it;
/// returning `true` is always safe.
///
/// The decision mirrors [`apply_predicate`]'s semantics exactly: comparisons
/// use [`Value::compare`]'s total order — the same order the zone maps'
/// min/max were computed under at load time — NULL rows never satisfy a
/// comparison, and anything the fast paths cannot reason about
/// (`General`) conservatively answers `true`.
pub fn zone_may_match(
    pred: &ColumnarPredicate,
    zones: &[monomi_store::ColumnZone],
    rows: u64,
) -> bool {
    if rows == 0 {
        return false;
    }
    let non_null = |col: usize| rows.saturating_sub(zones[col].null_count);
    let bounds = |col: usize| zones[col].min.as_ref().zip(zones[col].max.as_ref());
    match pred {
        ColumnarPredicate::And(parts) => parts.iter().all(|p| zone_may_match(p, zones, rows)),
        ColumnarPredicate::Or(parts) => parts.iter().any(|p| zone_may_match(p, zones, rows)),
        ColumnarPredicate::Const(b) => *b,
        ColumnarPredicate::CmpConst { col, op, value } => {
            // All-NULL column: no row can satisfy any comparison.
            let Some((min, max)) = bounds(*col) else {
                return false;
            };
            match op {
                BinaryOp::Eq => min <= value && value <= max,
                // Only an all-equal segment rules NotEq out entirely.
                BinaryOp::NotEq => !(min == max && min == value),
                BinaryOp::Lt => min < value,
                BinaryOp::LtEq => min <= value,
                BinaryOp::Gt => max > value,
                BinaryOp::GtEq => max >= value,
                _ => true,
            }
        }
        ColumnarPredicate::BetweenConst {
            col,
            low,
            high,
            negated,
        } => {
            let Some((min, max)) = bounds(*col) else {
                return false;
            };
            if *negated {
                // Matches values outside [low, high]: impossible only when
                // the whole segment sits inside the range.
                !(low <= min && max <= high)
            } else {
                !(max < low || min > high)
            }
        }
        ColumnarPredicate::InListConst {
            col,
            values,
            negated,
        } => {
            let Some((min, max)) = bounds(*col) else {
                return false;
            };
            if *negated {
                // `NOT IN` is never *true* when the list has a NULL item
                // (three-valued logic: `x != NULL` is NULL, and a single
                // NULL conjunct poisons the whole AND); without one, only an
                // all-equal segment whose value appears in the list is ruled
                // out entirely.
                if values.iter().any(Value::is_null) {
                    false
                } else {
                    !(min == max && values.iter().any(|v| v == min))
                }
            } else {
                // NULL list items never equal a non-null value.
                values.iter().any(|v| !v.is_null() && min <= v && v <= max)
            }
        }
        ColumnarPredicate::LikeConst { col, .. } => non_null(*col) > 0,
        ColumnarPredicate::IsNullTest { col, negated } => {
            if *negated {
                non_null(*col) > 0
            } else {
                zones[*col].null_count > 0
            }
        }
        ColumnarPredicate::General { .. } => true,
    }
}

/// Merges two ascending selection vectors into their sorted union.
fn union_selections(
    a: &crate::storage::SelectionVector,
    b: &crate::storage::SelectionVector,
) -> crate::storage::SelectionVector {
    let (xs, ys) = (a.indices(), b.indices());
    let mut out = Vec::with_capacity(xs.len() + ys.len());
    let (mut i, mut j) = (0, 0);
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Less => {
                out.push(xs[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(ys[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&xs[i..]);
    out.extend_from_slice(&ys[j..]);
    crate::storage::SelectionVector::from_indices(out)
}

/// SQL LIKE matching with `%` and `_` wildcards.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        if p.is_empty() {
            return s.is_empty();
        }
        match p[0] {
            '%' => {
                // Match zero or more characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            '_' => !s.is_empty() && rec(&s[1..], &p[1..]),
            c => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Decodes a lowercase/uppercase hex string.
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Encodes bytes as lowercase hex.
pub fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use monomi_sql::parse_query;

    fn schema() -> RowSchema {
        RowSchema::new(vec![
            (Some("t".into()), "a".into()),
            (Some("t".into()), "b".into()),
            (Some("t".into()), "ship".into()),
            (Some("t".into()), "d".into()),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Int(4),
            Value::Str("AIR".into()),
            Value::Date(date::parse_date("1995-09-17").unwrap()),
        ]
    }

    fn eval_str(expr_sql: &str) -> Value {
        // Parse by wrapping into a SELECT.
        let q = parse_query(&format!("SELECT {expr_sql} FROM t")).unwrap();
        let ctx = EvalContext::with_params(&[Value::Int(7)]);
        eval(&q.projections[0].expr, &schema(), &row(), &ctx).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_str("a + b * 2"), Value::Int(18));
        assert_eq!(eval_str("(a + b) * 2"), Value::Int(28));
        assert_eq!(eval_str("a / b"), Value::Float(2.5));
        assert_eq!(eval_str("a % b"), Value::Int(2));
        assert_eq!(eval_str("-a + 3"), Value::Int(-7));
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        assert_eq!(eval_str("a > b"), Value::Int(1));
        assert_eq!(eval_str("a = 10 AND b = 4"), Value::Int(1));
        assert_eq!(eval_str("a < b OR b = 4"), Value::Int(1));
        assert_eq!(eval_str("NOT (a = 10)"), Value::Int(0));
        assert_eq!(eval_str("a BETWEEN 5 AND 15"), Value::Int(1));
        assert_eq!(eval_str("a BETWEEN 11 AND 15"), Value::Int(0));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_str("NULL + 1"), Value::Null);
        assert_eq!(eval_str("a > NULL"), Value::Null);
        assert_eq!(eval_str("NULL IS NULL"), Value::Int(1));
        assert_eq!(eval_str("a IS NOT NULL"), Value::Int(1));
        // AND short-circuits on false even with NULL.
        assert_eq!(eval_str("1 = 0 AND NULL"), Value::Int(0));
    }

    #[test]
    fn strings_like_in_case() {
        assert_eq!(eval_str("ship LIKE 'A%'"), Value::Int(1));
        assert_eq!(eval_str("ship LIKE '%I_'"), Value::Int(1));
        assert_eq!(eval_str("ship NOT LIKE 'R%'"), Value::Int(1));
        assert_eq!(eval_str("ship IN ('AIR', 'RAIL')"), Value::Int(1));
        assert_eq!(eval_str("ship IN ('TRUCK', 'RAIL')"), Value::Int(0));
        assert_eq!(
            eval_str("CASE WHEN ship = 'AIR' THEN 1 ELSE 2 END"),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("CASE ship WHEN 'RAIL' THEN 1 WHEN 'AIR' THEN 5 END"),
            Value::Int(5)
        );
        assert_eq!(eval_str("substring(ship, 1, 2)"), Value::Str("AI".into()));
    }

    fn zone(min: Option<Value>, max: Option<Value>, null_count: u64) -> monomi_store::ColumnZone {
        monomi_store::ColumnZone {
            null_count,
            logical_bytes: 0,
            min,
            max,
        }
    }

    #[test]
    fn zone_pruning_in_list() {
        let zones = [zone(Some(Value::Int(10)), Some(Value::Int(20)), 0)];
        let in_list = |values: Vec<Value>, negated: bool| ColumnarPredicate::InListConst {
            col: 0,
            values,
            negated,
        };
        // A list value inside [min, max] keeps the segment.
        assert!(zone_may_match(
            &in_list(vec![Value::Int(1), Value::Int(15)], false),
            &zones,
            100
        ));
        // Every list value outside the range prunes it.
        assert!(!zone_may_match(
            &in_list(vec![Value::Int(1), Value::Int(30)], false),
            &zones,
            100
        ));
        // NULL list items never equal anything; alone they prune too.
        assert!(!zone_may_match(
            &in_list(vec![Value::Null, Value::Int(30)], false),
            &zones,
            100
        ));
        assert!(!zone_may_match(
            &in_list(vec![Value::Null], false),
            &zones,
            100
        ));
        // An all-NULL column cannot satisfy IN at all.
        assert!(!zone_may_match(
            &in_list(vec![Value::Int(15)], false),
            &[zone(None, None, 100)],
            100
        ));
    }

    #[test]
    fn zone_pruning_not_in() {
        let spread = [zone(Some(Value::Int(10)), Some(Value::Int(20)), 0)];
        let single = [zone(Some(Value::Int(7)), Some(Value::Int(7)), 0)];
        let in_list = |values: Vec<Value>| ColumnarPredicate::InListConst {
            col: 0,
            values,
            negated: true,
        };
        // A NULL list item makes NOT IN unsatisfiable (3VL): prune.
        assert!(!zone_may_match(
            &in_list(vec![Value::Null, Value::Int(1)]),
            &spread,
            100
        ));
        // All-equal segment whose value is listed: prune.
        assert!(!zone_may_match(&in_list(vec![Value::Int(7)]), &single, 100));
        // All-equal segment whose value is NOT listed: keep.
        assert!(zone_may_match(&in_list(vec![Value::Int(8)]), &single, 100));
        // A spread segment may always contain unlisted values: keep.
        assert!(zone_may_match(&in_list(vec![Value::Int(10)]), &spread, 100));
        // All-NULL column never satisfies NOT IN either.
        assert!(!zone_may_match(
            &in_list(vec![Value::Int(1)]),
            &[zone(None, None, 100)],
            100
        ));
    }

    #[test]
    fn zone_pruning_null_tests() {
        let no_nulls = [zone(Some(Value::Int(1)), Some(Value::Int(9)), 0)];
        let some_nulls = [zone(Some(Value::Int(1)), Some(Value::Int(9)), 3)];
        let all_nulls = [zone(None, None, 100)];
        let is_null = ColumnarPredicate::IsNullTest {
            col: 0,
            negated: false,
        };
        let is_not_null = ColumnarPredicate::IsNullTest {
            col: 0,
            negated: true,
        };
        // IS NULL prunes exactly when the zone counted zero NULLs.
        assert!(!zone_may_match(&is_null, &no_nulls, 100));
        assert!(zone_may_match(&is_null, &some_nulls, 100));
        assert!(zone_may_match(&is_null, &all_nulls, 100));
        // IS NOT NULL prunes exactly when every row is NULL.
        assert!(zone_may_match(&is_not_null, &no_nulls, 100));
        assert!(zone_may_match(&is_not_null, &some_nulls, 100));
        assert!(!zone_may_match(&is_not_null, &all_nulls, 100));
        // Empty segments never match anything.
        assert!(!zone_may_match(&is_null, &all_nulls, 0));
    }

    #[test]
    fn date_arithmetic_and_extract() {
        assert_eq!(eval_str("EXTRACT(YEAR FROM d)"), Value::Int(1995));
        assert_eq!(eval_str("EXTRACT(MONTH FROM d)"), Value::Int(9));
        assert_eq!(eval_str("d < DATE '1996-01-01'"), Value::Int(1));
        assert_eq!(
            eval_str("d + INTERVAL '3' MONTH >= DATE '1995-12-17'"),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("DATE '1995-09-20' - 3"),
            Value::Date(date::parse_date("1995-09-17").unwrap())
        );
    }

    #[test]
    fn params_resolve() {
        assert_eq!(eval_str(":1 + 1"), Value::Int(8));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("promo burnished", "%promo%"));
        assert!(!like_match("standard", "%promo%"));
        assert!(like_match("MEDIUM POLISHED BRASS", "MEDIUM POLISHED%"));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(decode_hex("00ff10"), Some(vec![0, 255, 16]));
        assert_eq!(decode_hex("xyz"), None);
        assert_eq!(encode_hex(&[0, 255, 16]), "00ff10");
    }

    mod columnar {
        use super::super::*;
        use crate::schema::{ColumnDef, ColumnType, TableSchema};
        use crate::storage::{SelectionVector, Table};
        use monomi_sql::parse_query;

        fn table() -> Table {
            let schema = TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("a", ColumnType::Int),
                    ColumnDef::new("ship", ColumnType::Str),
                    ColumnDef::new("d", ColumnType::Date),
                ],
            );
            let mut t = Table::new(schema);
            for i in 0..100i64 {
                t.insert(vec![
                    if i == 7 { Value::Null } else { Value::Int(i) },
                    Value::Str(if i % 3 == 0 { "AIR" } else { "RAIL" }.into()),
                    Value::Date(i as i32 * 10),
                ])
                .unwrap();
            }
            t
        }

        fn row_schema() -> RowSchema {
            RowSchema::new(vec![
                (Some("t".into()), "a".into()),
                (Some("t".into()), "ship".into()),
                (Some("t".into()), "d".into()),
            ])
        }

        fn select(where_sql: &str, params: &[Value]) -> Vec<usize> {
            let q = parse_query(&format!("SELECT a FROM t WHERE {where_sql}")).unwrap();
            let pred = q.where_clause.unwrap();
            let schema = row_schema();
            let ctx = EvalContext::with_params(params);
            let compiled = compile_predicate(&pred, &schema, &ctx);
            let t = table();
            let batch = t.batch();
            let sel = apply_predicate(
                &compiled,
                &batch,
                &SelectionVector::all(t.row_count()),
                &schema,
                &ctx,
            )
            .unwrap();
            sel.iter().collect()
        }

        /// Reference: the old row-materializing filter.
        fn select_by_rows(where_sql: &str, params: &[Value]) -> Vec<usize> {
            let q = parse_query(&format!("SELECT a FROM t WHERE {where_sql}")).unwrap();
            let pred = q.where_clause.unwrap();
            let schema = row_schema();
            let ctx = EvalContext::with_params(params);
            let t = table();
            (0..t.row_count())
                .filter(|&i| {
                    eval(&pred, &schema, &t.row(i), &ctx)
                        .unwrap()
                        .as_bool()
                        .unwrap_or(false)
                })
                .collect()
        }

        #[test]
        fn fast_paths_compile_away_from_general() {
            let schema = row_schema();
            let ctx = EvalContext::with_params(&[Value::Int(50)]);
            let compiled_of = |sql: &str| {
                let q = parse_query(&format!("SELECT a FROM t WHERE {sql}")).unwrap();
                compile_predicate(&q.where_clause.unwrap(), &schema, &ctx)
            };
            assert!(matches!(
                compiled_of("a < 10 + 2"),
                ColumnarPredicate::CmpConst { .. }
            ));
            assert!(matches!(
                compiled_of(":1 <= a"),
                ColumnarPredicate::CmpConst {
                    op: BinaryOp::GtEq,
                    ..
                }
            ));
            assert!(matches!(
                compiled_of("a BETWEEN 2 AND 4"),
                ColumnarPredicate::BetweenConst { .. }
            ));
            assert!(matches!(
                compiled_of("ship IN ('AIR', 'TRUCK')"),
                ColumnarPredicate::InListConst { .. }
            ));
            assert!(matches!(
                compiled_of("ship LIKE 'A%'"),
                ColumnarPredicate::LikeConst { .. }
            ));
            assert!(matches!(
                compiled_of("a IS NOT NULL"),
                ColumnarPredicate::IsNullTest { negated: true, .. }
            ));
            assert!(matches!(
                compiled_of("a = NULL"),
                ColumnarPredicate::Const(false)
            ));
            assert!(matches!(
                compiled_of("a < 10 AND ship = 'AIR'"),
                ColumnarPredicate::And(_)
            ));
            // Computed column side falls back to the scratch-row evaluator.
            assert!(matches!(
                compiled_of("a + 1 < 10"),
                ColumnarPredicate::General { .. }
            ));
        }

        #[test]
        fn columnar_selection_matches_row_at_a_time_filtering() {
            let cases = [
                "a < 10",
                "a >= 90",
                "10 > a",
                "a = 7",     // row 7 is NULL: no match
                "a <> 7",    // NULL row dropped too
                "a IS NULL", // only row 7
                "a IS NOT NULL",
                "a BETWEEN 20 AND 25",
                "a NOT BETWEEN 10 AND 89",
                "ship IN ('AIR', 'TRUCK')",
                "ship NOT IN ('AIR', 'TRUCK')",
                "ship LIKE 'R%'",
                "ship NOT LIKE '%I%'",
                "a < 5 OR a > 95",
                "a < 20 AND ship = 'AIR'",
                "(a < 10 OR a > 90) AND ship = 'RAIL'",
                "d < DATE '1970-04-11'",
                "a + 1 < 10",
                "EXTRACT(YEAR FROM d) = 1971",
                "1 = 1",
                "1 = 0",
                "NOT (a < 50)",
                "a < :1",
            ];
            for case in cases {
                assert_eq!(
                    select(case, &[Value::Int(42)]),
                    select_by_rows(case, &[Value::Int(42)]),
                    "vectorized and row-at-a-time scans disagree on {case}"
                );
            }
        }

        #[test]
        fn like_on_non_string_column_errors_like_the_row_path() {
            let schema = row_schema();
            let ctx = EvalContext::with_params(&[]);
            let q = parse_query("SELECT a FROM t WHERE a LIKE 'A%'").unwrap();
            let compiled = compile_predicate(&q.where_clause.unwrap(), &schema, &ctx);
            let t = table();
            let batch = t.batch();
            let err = apply_predicate(
                &compiled,
                &batch,
                &SelectionVector::all(t.row_count()),
                &schema,
                &ctx,
            );
            assert!(err.is_err());
        }
    }
}
