//! Expression evaluation over rows.
//!
//! The evaluator implements SQL semantics for the subset MONOMI needs:
//! arithmetic with integer/float coercion, date ± interval arithmetic,
//! three-valued comparisons, LIKE patterns, IN / BETWEEN / CASE / EXTRACT,
//! and the engine's encrypted-data scalar functions (e.g. `search_match`).
//!
//! Aggregates are *not* evaluated here: the executor computes them per group
//! and exposes the results through [`EvalContext::aggregates`], so expressions
//! such as `HAVING SUM(x) > 10` resolve the `SUM(x)` node by lookup.

use crate::value::{date, Value};
use crate::EngineError;
use monomi_sql::ast::*;
use std::collections::HashMap;

/// Describes the columns of the rows an expression is evaluated against.
#[derive(Clone, Debug, Default)]
pub struct RowSchema {
    /// `(binding, column_name)` pairs; `binding` is the table name or alias the
    /// column came from, if any.
    pub columns: Vec<(Option<String>, String)>,
}

impl RowSchema {
    /// Creates a schema from `(binding, name)` pairs.
    pub fn new(columns: Vec<(Option<String>, String)>) -> Self {
        RowSchema { columns }
    }

    /// Resolves a column reference to an index.
    pub fn resolve(&self, col: &ColumnRef) -> Option<usize> {
        // Qualified reference: match binding and name.
        if let Some(table) = &col.table {
            return self.columns.iter().position(|(b, n)| {
                n.eq_ignore_ascii_case(&col.column)
                    && b.as_deref().is_some_and(|b| b.eq_ignore_ascii_case(table))
            });
        }
        // Unqualified: name must be unambiguous (first match wins, mirroring
        // the permissive behaviour of most engines for our workloads).
        self.columns
            .iter()
            .position(|(_, n)| n.eq_ignore_ascii_case(&col.column))
    }

    /// Appends another schema's columns (used when joining).
    pub fn concat(&self, other: &RowSchema) -> RowSchema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.clone());
        RowSchema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// Callback used to evaluate subqueries; receives the subquery and the current
/// outer row (schema + values) for correlated references.
pub type SubqueryFn<'a> =
    &'a dyn Fn(&Query, Option<(&RowSchema, &[Value])>) -> Result<Vec<Vec<Value>>, EngineError>;

/// Everything an expression evaluation might need besides the row itself.
pub struct EvalContext<'a> {
    /// Positional parameter values (`:1` is `params[0]`).
    pub params: &'a [Value],
    /// Computed aggregate values for the current group, keyed by the aggregate
    /// expression node.
    pub aggregates: Option<&'a HashMap<Expr, Value>>,
    /// Callback for executing subqueries.
    pub subquery: Option<SubqueryFn<'a>>,
    /// Outer row for correlated subqueries (schema and values of the row in
    /// the enclosing query).
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl<'a> EvalContext<'a> {
    /// A context with only parameters.
    pub fn with_params(params: &'a [Value]) -> Self {
        EvalContext {
            params,
            aggregates: None,
            subquery: None,
            outer: None,
        }
    }
}

/// Evaluates `expr` against a row.
pub fn eval(
    expr: &Expr,
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    match expr {
        Expr::Column(c) => {
            if let Some(idx) = schema.resolve(c) {
                return Ok(row[idx].clone());
            }
            // Correlated reference to the outer query's row.
            if let Some((outer_schema, outer_row)) = ctx.outer {
                if let Some(idx) = outer_schema.resolve(c) {
                    return Ok(outer_row[idx].clone());
                }
            }
            Err(EngineError::new(format!("unknown column {c}")))
        }
        Expr::Literal(l) => literal_value(l),
        Expr::Param(n) => ctx
            .params
            .get(n - 1)
            .cloned()
            .ok_or_else(|| EngineError::new(format!("missing parameter :{n}"))),
        Expr::BinaryOp { left, op, right } => {
            let l = eval(left, schema, row, ctx)?;
            let r = eval(right, schema, row, ctx)?;
            eval_binop(&l, *op, &r)
        }
        Expr::UnaryOp { op, expr } => {
            let v = eval(expr, schema, row, ctx)?;
            match op {
                UnaryOp::Not => match v.as_bool() {
                    None => Ok(Value::Null),
                    Some(b) => Ok(Value::Int(!b as i64)),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EngineError::new(format!("cannot negate {other:?}"))),
                },
            }
        }
        Expr::Aggregate { .. } => {
            if let Some(aggs) = ctx.aggregates {
                if let Some(v) = aggs.get(expr) {
                    return Ok(v.clone());
                }
            }
            Err(EngineError::new(format!(
                "aggregate {expr} used outside of an aggregation context"
            )))
        }
        Expr::Function { name, args } => {
            // UDF aggregates (paillier_sum, group_concat) are computed by the
            // executor per group; resolve them from the aggregate context.
            if let Some(aggs) = ctx.aggregates {
                if let Some(v) = aggs.get(expr) {
                    return Ok(v.clone());
                }
            }
            eval_function(name, args, schema, row, ctx)
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            for (when, then) in when_then {
                let matched = match operand {
                    Some(op_expr) => {
                        let op_v = eval(op_expr, schema, row, ctx)?;
                        let w_v = eval(when, schema, row, ctx)?;
                        op_v.equals(&w_v)
                    }
                    None => eval(when, schema, row, ctx)?.as_bool().unwrap_or(false),
                };
                if matched {
                    return eval(then, schema, row, ctx);
                }
            }
            match else_expr {
                Some(e) => eval(e, schema, row, ctx),
                None => Ok(Value::Null),
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let p = eval(pattern, schema, row, ctx)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => {
                    let m = like_match(&s, &pat);
                    Ok(Value::Int((m ^ negated) as i64))
                }
                (v, p) => Err(EngineError::new(format!(
                    "LIKE requires strings, got {v:?} LIKE {p:?}"
                ))),
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let item_v = eval(item, schema, row, ctx)?;
                if v.equals(&item_v) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Int((found ^ negated) as i64))
        }
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let rows = run_subquery(subquery, schema, row, ctx)?;
            let found = rows.iter().any(|r| r.first().is_some_and(|x| v.equals(x)));
            Ok(Value::Int((found ^ negated) as i64))
        }
        Expr::Exists { subquery, negated } => {
            let rows = run_subquery(subquery, schema, row, ctx)?;
            Ok(Value::Int((!rows.is_empty() ^ negated) as i64))
        }
        Expr::ScalarSubquery(subquery) => {
            let rows = run_subquery(subquery, schema, row, ctx)?;
            match rows.first() {
                Some(r) => Ok(r.first().cloned().unwrap_or(Value::Null)),
                None => Ok(Value::Null),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, schema, row, ctx)?;
            let lo = eval(low, schema, row, ctx)?;
            let hi = eval(high, schema, row, ctx)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Null);
            }
            let within = v >= lo && v <= hi;
            Ok(Value::Int((within ^ negated) as i64))
        }
        Expr::Extract { field, expr } => {
            let v = eval(expr, schema, row, ctx)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Date(d) => Ok(Value::Int(match field {
                    DateField::Year => date::year_of(d) as i64,
                    DateField::Month => date::month_of(d) as i64,
                    DateField::Day => date::day_of(d) as i64,
                })),
                other => Err(EngineError::new(format!("EXTRACT from non-date {other:?}"))),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, row, ctx)?;
            Ok(Value::Int((v.is_null() ^ negated) as i64))
        }
    }
}

fn run_subquery(
    subquery: &Query,
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Vec<Vec<Value>>, EngineError> {
    let f = ctx
        .subquery
        .ok_or_else(|| EngineError::new("subquery evaluation not available in this context"))?;
    f(subquery, Some((schema, row)))
}

/// Converts a literal AST node into a runtime value.
pub fn literal_value(l: &Literal) -> Result<Value, EngineError> {
    match l {
        Literal::Number(s) => {
            if let Ok(i) = s.parse::<i64>() {
                Ok(Value::Int(i))
            } else {
                s.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| EngineError::new(format!("bad numeric literal {s}")))
            }
        }
        Literal::String(s) => Ok(Value::Str(s.clone())),
        Literal::Date(s) => date::parse_date(s)
            .map(Value::Date)
            .ok_or_else(|| EngineError::new(format!("bad date literal {s}"))),
        Literal::Interval { value, unit } => {
            // Represent intervals as (days, months) packed into an Int pair:
            // days in the low 32 bits, months in the high 32 bits.
            let n: i64 = value
                .parse()
                .map_err(|_| EngineError::new(format!("bad interval value {value}")))?;
            let (days, months) = match unit {
                IntervalUnit::Day => (n, 0i64),
                IntervalUnit::Month => (0, n),
                IntervalUnit::Year => (0, n * 12),
            };
            Ok(Value::Int((months << 32) | (days & 0xffff_ffff)))
        }
        Literal::Null => Ok(Value::Null),
        Literal::Boolean(b) => Ok(Value::Int(*b as i64)),
    }
}

/// True if an expression is an interval literal (needed to give `date + X`
/// interval semantics).
fn interval_parts(v: i64) -> (i64, i64) {
    let days = (v & 0xffff_ffff) as i32 as i64;
    let months = v >> 32;
    (days, months)
}

fn eval_binop(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, EngineError> {
    use BinaryOp::*;
    if matches!(op, And | Or) {
        let lb = l.as_bool();
        let rb = r.as_bool();
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Int(0),
            (And, Some(true), Some(true)) => Value::Int(1),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Int(1),
            (Or, Some(false), Some(false)) => Value::Int(0),
            _ => Value::Null,
        });
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.compare(r);
        let result = match op {
            Eq => ord == std::cmp::Ordering::Equal,
            NotEq => ord != std::cmp::Ordering::Equal,
            Lt => ord == std::cmp::Ordering::Less,
            LtEq => ord != std::cmp::Ordering::Greater,
            Gt => ord == std::cmp::Ordering::Greater,
            GtEq => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Int(result as i64));
    }
    // Arithmetic.
    match (l, r) {
        // Date arithmetic with intervals and day counts.
        (Value::Date(d), Value::Int(i)) => {
            let (days, months) = interval_parts(*i);
            let base = if months != 0 {
                date::add_months(*d, months as i32)
            } else {
                *d
            };
            match op {
                Add => Ok(Value::Date(base + days as i32)),
                Sub => {
                    let base = if months != 0 {
                        date::add_months(*d, -(months as i32))
                    } else {
                        *d
                    };
                    Ok(Value::Date(base - days as i32))
                }
                _ => Err(EngineError::new("unsupported date arithmetic")),
            }
        }
        (Value::Date(a), Value::Date(b)) if op == Sub => Ok(Value::Int((*a - *b) as i64)),
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Ok(Value::Int(a.wrapping_add(*b))),
            Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    // Integer division would silently change TPC-H ratio
                    // results; use float division like the plaintext baseline.
                    Ok(Value::Float(*a as f64 / *b as f64))
                }
            }
            Mod => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let (a, b) = (
                l.as_float()
                    .ok_or_else(|| EngineError::new(format!("non-numeric operand {l:?}")))?,
                r.as_float()
                    .ok_or_else(|| EngineError::new(format!("non-numeric operand {r:?}")))?,
            );
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Ok(Value::Null);
                    }
                    a / b
                }
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

fn eval_function(
    name: &str,
    args: &[Expr],
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval(a, schema, row, ctx))
        .collect::<Result<_, _>>()?;
    match name {
        "substring" | "substr" => {
            let s = vals
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("substring: first argument must be a string"))?;
            let start = vals.get(1).and_then(Value::as_int).unwrap_or(1).max(1) as usize;
            let len = vals.get(2).and_then(Value::as_int);
            let chars: Vec<char> = s.chars().collect();
            let begin = (start - 1).min(chars.len());
            let end = match len {
                Some(l) => (begin + l.max(0) as usize).min(chars.len()),
                None => chars.len(),
            };
            Ok(Value::Str(chars[begin..end].iter().collect()))
        }
        "year" => match vals.first() {
            Some(Value::Date(d)) => Ok(Value::Int(date::year_of(*d) as i64)),
            _ => Err(EngineError::new("year() expects a date")),
        },
        // search_match(search_ciphertext, hex_token): server-side evaluation of
        // an encrypted LIKE '%kw%' predicate.
        "search_match" => {
            let ct = vals
                .first()
                .and_then(Value::as_bytes)
                .ok_or_else(|| EngineError::new("search_match: first arg must be bytes"))?;
            let token_hex = vals
                .get(1)
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("search_match: second arg must be a hex token"))?;
            let token = decode_hex(token_hex)
                .ok_or_else(|| EngineError::new("search_match: bad hex token"))?;
            if token.len() != 16 {
                return Err(EngineError::new("search_match: token must be 16 bytes"));
            }
            let mut t = [0u8; 16];
            t.copy_from_slice(&token);
            let ct = monomi_crypto::SearchCiphertext::from_bytes(ct);
            Ok(Value::Int(ct.matches(&monomi_crypto::SearchToken(t)) as i64))
        }
        // hex_bytes('deadbeef'): literal byte strings in rewritten queries.
        "hex_bytes" => {
            let s = vals
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| EngineError::new("hex_bytes expects a hex string"))?;
            decode_hex(s)
                .map(Value::Bytes)
                .ok_or_else(|| EngineError::new("hex_bytes: invalid hex"))
        }
        other => Err(EngineError::new(format!("unknown function {other}"))),
    }
}

/// SQL LIKE matching with `%` and `_` wildcards.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        if p.is_empty() {
            return s.is_empty();
        }
        match p[0] {
            '%' => {
                // Match zero or more characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            '_' => !s.is_empty() && rec(&s[1..], &p[1..]),
            c => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Decodes a lowercase/uppercase hex string.
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// Encodes bytes as lowercase hex.
pub fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use monomi_sql::parse_query;

    fn schema() -> RowSchema {
        RowSchema::new(vec![
            (Some("t".into()), "a".into()),
            (Some("t".into()), "b".into()),
            (Some("t".into()), "ship".into()),
            (Some("t".into()), "d".into()),
        ])
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Int(4),
            Value::Str("AIR".into()),
            Value::Date(date::parse_date("1995-09-17").unwrap()),
        ]
    }

    fn eval_str(expr_sql: &str) -> Value {
        // Parse by wrapping into a SELECT.
        let q = parse_query(&format!("SELECT {expr_sql} FROM t")).unwrap();
        let ctx = EvalContext::with_params(&[Value::Int(7)]);
        eval(&q.projections[0].expr, &schema(), &row(), &ctx).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(eval_str("a + b * 2"), Value::Int(18));
        assert_eq!(eval_str("(a + b) * 2"), Value::Int(28));
        assert_eq!(eval_str("a / b"), Value::Float(2.5));
        assert_eq!(eval_str("a % b"), Value::Int(2));
        assert_eq!(eval_str("-a + 3"), Value::Int(-7));
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        assert_eq!(eval_str("a > b"), Value::Int(1));
        assert_eq!(eval_str("a = 10 AND b = 4"), Value::Int(1));
        assert_eq!(eval_str("a < b OR b = 4"), Value::Int(1));
        assert_eq!(eval_str("NOT (a = 10)"), Value::Int(0));
        assert_eq!(eval_str("a BETWEEN 5 AND 15"), Value::Int(1));
        assert_eq!(eval_str("a BETWEEN 11 AND 15"), Value::Int(0));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_str("NULL + 1"), Value::Null);
        assert_eq!(eval_str("a > NULL"), Value::Null);
        assert_eq!(eval_str("NULL IS NULL"), Value::Int(1));
        assert_eq!(eval_str("a IS NOT NULL"), Value::Int(1));
        // AND short-circuits on false even with NULL.
        assert_eq!(eval_str("1 = 0 AND NULL"), Value::Int(0));
    }

    #[test]
    fn strings_like_in_case() {
        assert_eq!(eval_str("ship LIKE 'A%'"), Value::Int(1));
        assert_eq!(eval_str("ship LIKE '%I_'"), Value::Int(1));
        assert_eq!(eval_str("ship NOT LIKE 'R%'"), Value::Int(1));
        assert_eq!(eval_str("ship IN ('AIR', 'RAIL')"), Value::Int(1));
        assert_eq!(eval_str("ship IN ('TRUCK', 'RAIL')"), Value::Int(0));
        assert_eq!(
            eval_str("CASE WHEN ship = 'AIR' THEN 1 ELSE 2 END"),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("CASE ship WHEN 'RAIL' THEN 1 WHEN 'AIR' THEN 5 END"),
            Value::Int(5)
        );
        assert_eq!(eval_str("substring(ship, 1, 2)"), Value::Str("AI".into()));
    }

    #[test]
    fn date_arithmetic_and_extract() {
        assert_eq!(eval_str("EXTRACT(YEAR FROM d)"), Value::Int(1995));
        assert_eq!(eval_str("EXTRACT(MONTH FROM d)"), Value::Int(9));
        assert_eq!(eval_str("d < DATE '1996-01-01'"), Value::Int(1));
        assert_eq!(
            eval_str("d + INTERVAL '3' MONTH >= DATE '1995-12-17'"),
            Value::Int(1)
        );
        assert_eq!(
            eval_str("DATE '1995-09-20' - 3"),
            Value::Date(date::parse_date("1995-09-17").unwrap())
        );
    }

    #[test]
    fn params_resolve() {
        assert_eq!(eval_str(":1 + 1"), Value::Int(8));
    }

    #[test]
    fn like_matcher_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("promo burnished", "%promo%"));
        assert!(!like_match("standard", "%promo%"));
        assert!(like_match("MEDIUM POLISHED BRASS", "MEDIUM POLISHED%"));
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(decode_hex("00ff10"), Some(vec![0, 255, 16]));
        assert_eq!(decode_hex("xyz"), None);
        assert_eq!(encode_hex(&[0, 255, 16]), "00ff10");
    }
}
