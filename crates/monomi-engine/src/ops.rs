//! The physical operator pipeline and its morsel-driven parallel driver.
//!
//! The executor composes the operators defined here — [`ScanFilter`],
//! [`RowFilter`], [`HashJoin`], [`CrossJoin`], [`MorselAggregate`] (partial
//! aggregation + merge), [`Sort`] — instead of a chain of free functions.
//! Operators consume columnar morsels: fixed-size row ranges ([`Morsel`]) of a
//! [`ColumnBatch`](crate::storage::ColumnBatch) or of a materialized relation.
//!
//! # Morsel-driven parallelism
//!
//! [`run_morsels`] drives an operator over all morsels of its input with a
//! pool of `std::thread::scope` workers that claim morsels from a shared
//! atomic counter (the HyPer/DuckDB execution model). Workers keep their
//! results tagged with the morsel index; the driver reassembles them **in
//! partition order**, which is what makes parallel execution deterministic:
//!
//! * filtered/materialized rows are concatenated in morsel order — identical
//!   to the serial scan;
//! * aggregation partials are merged in morsel order, so float sums reassociate
//!   the same way at every thread count (partition boundaries depend only on
//!   [`ExecOptions::morsel_rows`], never on the thread count) and group output
//!   order is the first-encounter order over the concatenated partitions —
//!   exactly the serial order;
//! * encrypted `paillier_sum` partials combine through
//!   [`monomi_crypto::PaillierSum::merge`] (one CIOS multiply), which is exact
//!   modular arithmetic and therefore byte-identical under any partitioning.
//!
//! The same morsel partitioning runs at `threads = 1` (just without spawning),
//! so results are bit-identical at *any* thread count, not merely "close".

use crate::database::{Database, PaillierServerCtx};
use crate::expr::{apply_predicate, eval, ColumnarPredicate, EvalContext, RowSchema, SubqueryFn};
use crate::storage::{ColumnBatch, SelectionVector};
use crate::value::Value;
use crate::EngineError;
use monomi_crypto::PaillierSum;
use monomi_math::BigUint;
use monomi_sql::ast::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default number of rows per morsel. Small enough that a handful of morsels
/// exist even at test scales, large enough that per-morsel overhead (hash map
/// setup, selection vector) is amortized.
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Execution options for one query: worker thread count and morsel
/// granularity.
///
/// Results are bit-identical for every `threads` value; `morsel_rows` controls
/// the (deterministic) partition boundaries partial aggregates reassociate at,
/// so changing it may flip the last ulp of float sums.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of worker threads parallel operators may engage (≥ 1; 1 means
    /// fully serial execution).
    pub threads: usize,
    /// Rows per morsel (≥ 1).
    pub morsel_rows: usize,
    /// Which secondary-index kinds the planner may probe. Purely an access
    /// path choice: results are byte-identical in every mode.
    pub index_mode: monomi_store::IndexMode,
}

impl ExecOptions {
    /// Reads options from the environment: `MONOMI_THREADS` (default: all
    /// available cores), `MONOMI_MORSEL_ROWS` (default
    /// [`DEFAULT_MORSEL_ROWS`]), and `MONOMI_INDEXES` (default `all`).
    pub fn from_env() -> Self {
        // Env parsing goes through the shared `env_knob` helper (reject with a
        // logged warning on malformed values, never a silent fallback). The
        // knobs are resolved once at setup, before execution; they size the
        // thread pool, the partitioning, and the access-path choice — never
        // the result bytes.
        // monomi-lint: allow(determinism-clock-env): parallelism probe only picks a thread count; results are byte-identical at every thread count
        let default_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecOptions {
            threads: monomi_store::env_knob("MONOMI_THREADS", default_threads, |&n| n >= 1),
            morsel_rows: monomi_store::env_knob("MONOMI_MORSEL_ROWS", DEFAULT_MORSEL_ROWS, |&n| {
                n >= 1
            }),
            index_mode: monomi_store::IndexMode::from_env(),
        }
    }

    /// The environment-derived options, sampled once per process and cached —
    /// the default for [`Database::execute`](crate::Database::execute), which
    /// would otherwise re-read two env vars and `available_parallelism` on
    /// every query. Use [`from_env`](Self::from_env) to re-sample.
    pub fn env_cached() -> Self {
        static CACHED: std::sync::OnceLock<ExecOptions> = std::sync::OnceLock::new();
        *CACHED.get_or_init(Self::from_env)
    }

    /// Options with an explicit thread count, the default morsel size, and
    /// the environment-selected index mode.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            index_mode: monomi_store::IndexMode::from_env(),
        }
    }

    /// These options with an explicit index mode (benchmarks compare access
    /// paths in one process this way, without racing on the environment).
    pub fn with_index_mode(self, index_mode: monomi_store::IndexMode) -> Self {
        ExecOptions { index_mode, ..self }
    }

    /// Fully serial execution (one thread).
    pub fn serial() -> Self {
        Self::with_threads(1)
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A fixed row range of an operator's input: the unit of work a worker claims.
#[derive(Clone, Copy, Debug)]
pub struct Morsel {
    /// Position of this morsel in the partition order.
    pub index: usize,
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row.
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Work accounting for one parallel (or serial morsel-loop) region.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ParallelMetrics {
    /// Morsels processed.
    pub morsels: u64,
    /// Workers engaged (1 for a serial region).
    pub threads_used: u32,
    /// Wall-clock residency summed across all workers, scheduled or not.
    /// std has no portable thread-CPU clock, so on oversubscribed hosts
    /// (threads > cores) this is an upper bound on the CPU actually burned.
    pub worker_busy_nanos: u64,
    /// Wall-clock time of the region.
    pub wall_nanos: u64,
}

fn morsels_of(total_rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    let morsel_rows = morsel_rows.max(1);
    (0..total_rows.div_ceil(morsel_rows))
        .map(|index| Morsel {
            index,
            start: index * morsel_rows,
            end: ((index + 1) * morsel_rows).min(total_rows),
        })
        .collect()
}

/// Runs `f` over every morsel sequentially, in partition order. Used directly
/// when the per-morsel work needs context a worker thread cannot share (e.g.
/// a subquery callback), and by [`run_morsels`] for the single-thread case —
/// both paths see the *same* partition boundaries, which is what keeps results
/// identical at every thread count.
pub(crate) fn run_morsels_serial<T>(
    total_rows: usize,
    morsel_rows: usize,
    mut f: impl FnMut(Morsel) -> Result<T, EngineError>,
) -> Result<(Vec<T>, ParallelMetrics), EngineError> {
    let morsels = morsels_of(total_rows, morsel_rows);
    // monomi-lint: allow(determinism-clock-env): wall-clock feeds ParallelMetrics only, never operator output
    let start = Instant::now();
    let mut out = Vec::with_capacity(morsels.len());
    for m in &morsels {
        out.push(f(*m)?);
    }
    let nanos = start.elapsed().as_nanos() as u64;
    Ok((
        out,
        ParallelMetrics {
            morsels: morsels.len() as u64,
            threads_used: 1,
            worker_busy_nanos: nanos,
            wall_nanos: nanos,
        },
    ))
}

/// Runs `f` over every morsel with up to `opts.threads` scoped worker threads
/// claiming morsels from a shared counter. Results come back in partition
/// order regardless of which worker produced them; on failure the error of the
/// lowest-indexed failing morsel is returned (matching what the serial loop
/// would have hit first).
pub(crate) fn run_morsels<T: Send>(
    total_rows: usize,
    opts: &ExecOptions,
    f: impl Fn(Morsel) -> Result<T, EngineError> + Sync,
) -> Result<(Vec<T>, ParallelMetrics), EngineError> {
    let morsels = morsels_of(total_rows, opts.morsel_rows);
    let threads = opts.threads.min(morsels.len());
    if threads <= 1 {
        return run_morsels_serial(total_rows, opts.morsel_rows, f);
    }

    // monomi-lint: allow(determinism-clock-env): wall-clock feeds ParallelMetrics only, never operator output
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    // Lowest morsel index known to have failed; claims beyond it are wasted
    // work (its error decides the outcome), so workers stop at the frontier.
    let error_floor = AtomicUsize::new(usize::MAX);
    let morsels = &morsels;
    let f = &f;
    let (mut tagged, worker_busy_nanos) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let error_floor = &error_floor;
                scope.spawn(move || {
                    // monomi-lint: allow(determinism-clock-env): per-worker busy time feeds ParallelMetrics only, never operator output
                    let busy = Instant::now();
                    let mut local: Vec<(usize, Result<T, EngineError>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        // Claims are issued in ascending order, so every index
                        // below a claimed one has been claimed and will run to
                        // completion: the lowest-indexed erroring morsel — the
                        // one the serial loop would hit first — is always
                        // processed and reported, even though claiming stops
                        // past the current error floor.
                        if i >= morsels.len() || i > error_floor.load(Ordering::Relaxed) {
                            break;
                        }
                        let result = f(morsels[i]);
                        let failed = result.is_err();
                        if failed {
                            error_floor.fetch_min(i, Ordering::Relaxed);
                        }
                        local.push((i, result));
                        if failed {
                            break;
                        }
                    }
                    (local, busy.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        let mut tagged: Vec<(usize, Result<T, EngineError>)> = Vec::with_capacity(morsels.len());
        let mut cpu = 0u64;
        for handle in handles {
            match handle.join() {
                Ok((local, nanos)) => {
                    tagged.extend(local);
                    cpu += nanos;
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (tagged, cpu)
    });

    tagged.sort_by_key(|(i, _)| *i);
    // After a failure, later morsels may be missing (failed workers stop
    // claiming); the lowest-indexed error decides the outcome either way.
    let mut out = Vec::with_capacity(tagged.len());
    for (_, result) in tagged {
        out.push(result?);
    }
    Ok((
        out,
        ParallelMetrics {
            morsels: morsels.len() as u64,
            threads_used: threads as u32,
            worker_busy_nanos,
            wall_nanos: start.elapsed().as_nanos() as u64,
        },
    ))
}

/// An intermediate relation flowing between operators: a row schema plus
/// materialized rows.
#[derive(Clone, Debug)]
pub(crate) struct Relation {
    pub schema: RowSchema,
    pub rows: Vec<Vec<Value>>,
}

/// Per-partition output of a [`ScanFilter`].
pub(crate) struct ScanMorselOut {
    pub rows: Vec<Vec<Value>>,
    pub rows_scanned: u64,
    pub bytes_scanned: u64,
    pub bytes_materialized: u64,
    /// 1 when this partition was a segment the scan decoded.
    pub segments_read: u64,
    /// 1 when this partition was a segment the zone map (or an index probe
    /// returning zero postings) skipped.
    pub segments_pruned: u64,
    /// Index postings lookups executed for this partition.
    pub index_probes: u64,
    /// Row ids the executed probes returned (before intersection).
    pub index_rows_fetched: u64,
    /// Bytes of postings the executed probes touched.
    pub postings_bytes_read: u64,
}

/// One index-eligible probe a predicate conjunct compiled to. Every probe is
/// a *superset contract*: the postings it returns must contain every row the
/// conjunct accepts (NULL rows excepted — comparison predicates are never
/// true of NULL), because the scan seeds its selection from them. The full
/// predicate list still runs over the seed, so a probe can only narrow work,
/// never change results.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum ProbeOp {
    /// `col = const` — served by DET and OPE blocks.
    Eq(Value),
    /// `col IN (consts)` — served by DET and OPE blocks.
    InList(Vec<Value>),
    /// `col </<=/>/>= const`, `BETWEEN` — OPE blocks only (needs order);
    /// each bound is `(value, inclusive)`, `None` = unbounded.
    Range {
        low: Option<(Value, bool)>,
        high: Option<(Value, bool)>,
    },
}

/// An index probe planned for one scan: which column to look up and how.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct IndexProbe {
    /// Schema column name, as recorded in the store catalog's index metadata.
    pub column: String,
    pub op: ProbeOp,
}

/// Intersection of two ascending row-id lists (conjuncts AND together).
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while let (Some(&x), Some(&y)) = (a.get(i), b.get(j)) {
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Scan + Filter: evaluates compiled single-table predicates over the column
/// slices of one base-table partition and late-materializes the survivors'
/// referenced columns. The only operator that reads base-table storage.
///
/// Partitioning comes from [`Table::scan_plan`]: fixed morsel-row ranges for
/// the memory backing, *segment-aligned* partitions for the disk backing
/// (plus morsel ranges over the unflushed tail). Before a segment partition
/// is decoded, its zone map is consulted
/// ([`zone_may_match`](crate::expr::zone_may_match)) — a segment no row of
/// which can satisfy the conjuncts is skipped entirely, contributing neither
/// rows nor bytes to the scan counters (it was never read). Pruning is
/// result-invisible: skipping is exactly equivalent to evaluating the
/// predicates and finding zero survivors, so disk results stay byte-identical
/// to memory results.
pub(crate) struct ScanFilter<'a> {
    pub table: &'a crate::storage::Table,
    pub schema: &'a RowSchema,
    /// Compiled scan-level conjuncts, applied as successive narrowing passes.
    pub predicates: &'a [ColumnarPredicate],
    /// Index probes the planner extracted from the conjuncts (empty = plain
    /// scan). Probed segments seed their selection from the intersected
    /// postings instead of all rows; every predicate still runs over the
    /// seed, so results are byte-identical to the scan path.
    pub probes: &'a [IndexProbe],
    /// Which index kinds may be probed (`MONOMI_INDEXES` via [`ExecOptions`]).
    pub index_mode: monomi_store::IndexMode,
    /// Column indices to materialize for surviving rows.
    pub keep: &'a [usize],
    pub params: &'a [Value],
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl ScanFilter<'_> {
    /// Filters one batch (a morsel range or a whole decoded segment) and
    /// late-materializes the survivors.
    fn filter_batch(
        &self,
        batch: &ColumnBatch<'_>,
        mut selection: SelectionVector,
    ) -> Result<(Vec<Vec<Value>>, u64), EngineError> {
        // Scan predicates never contain subqueries (the executor checks before
        // compiling), so no subquery callback is needed — which is what makes
        // this closure shareable across worker threads.
        let ctx = EvalContext {
            params: self.params,
            aggregates: None,
            subquery: None,
            outer: self.outer,
        };
        for pred in self.predicates {
            if selection.is_empty() {
                break;
            }
            selection = apply_predicate(pred, batch, &selection, self.schema, &ctx)?;
        }
        let rows = batch.gather(&selection, self.keep);
        let bytes_materialized: usize = rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum();
        Ok((rows, bytes_materialized as u64))
    }

    fn run_partition(
        &self,
        plan: &crate::storage::ScanPlan,
        partition: crate::storage::ScanPartition,
    ) -> Result<ScanMorselOut, EngineError> {
        use crate::storage::ScanPartition;
        match partition {
            ScanPartition::Range { start, end } => {
                // In-memory rows (whole table or disk tail): logical bytes,
                // exactly the original morsel scan.
                let batch = self.table.range_batch();
                let bytes_scanned: usize = (0..batch.column_count())
                    .map(|c| {
                        batch.column(c)[start..end]
                            .iter()
                            .map(Value::size_bytes)
                            .sum::<usize>()
                    })
                    .sum();
                let (rows, bytes_materialized) =
                    self.filter_batch(&batch, SelectionVector::range(start, end))?;
                Ok(ScanMorselOut {
                    rows,
                    rows_scanned: (end - start) as u64,
                    bytes_scanned: bytes_scanned as u64,
                    bytes_materialized,
                    segments_read: 0,
                    segments_pruned: 0,
                    index_probes: 0,
                    index_rows_fetched: 0,
                    postings_bytes_read: 0,
                })
            }
            ScanPartition::Segment(idx) => {
                let meta = &plan.segments[idx];
                // Zone-map check before touching the file: if no row of the
                // segment can satisfy the conjuncts, skip it unread.
                if !self
                    .predicates
                    .iter()
                    .all(|p| crate::expr::zone_may_match(p, &meta.zones, meta.rows))
                {
                    return Ok(ScanMorselOut {
                        rows: Vec::new(),
                        rows_scanned: 0,
                        bytes_scanned: 0,
                        bytes_materialized: 0,
                        segments_read: 0,
                        segments_pruned: 1,
                        index_probes: 0,
                        index_rows_fetched: 0,
                        postings_bytes_read: 0,
                    });
                }
                // Index probes: intersect postings across probeable conjuncts
                // into a seed selection. A missing, ineligible, or unreadable
                // index leaves `seed` at None — the plain full-segment scan.
                let (mut index_probes, mut index_rows_fetched, mut postings_bytes_read) =
                    (0u64, 0u64, 0u64);
                let mut seed: Option<Vec<u32>> = None;
                if !self.probes.is_empty() {
                    if let Some(indexes) = self.table.segment_indexes(meta) {
                        for probe in self.probes {
                            let Some(block) = indexes.block(&probe.column) else {
                                continue;
                            };
                            if !self.index_mode.allows(block.kind) || block.rows != meta.rows as u32
                            {
                                continue;
                            }
                            let ids: Vec<u32> = match &probe.op {
                                ProbeOp::Eq(v) => block.postings_eq(v).to_vec(),
                                ProbeOp::InList(vs) => block.postings_in(vs),
                                ProbeOp::Range { low, high } => {
                                    if block.kind != monomi_store::IndexKind::Ope {
                                        continue;
                                    }
                                    block.postings_range(
                                        low.as_ref().map(|(v, incl)| (v, *incl)),
                                        high.as_ref().map(|(v, incl)| (v, *incl)),
                                    )
                                }
                            };
                            index_probes += 1;
                            index_rows_fetched += ids.len() as u64;
                            postings_bytes_read += 4 * ids.len() as u64;
                            seed = Some(match seed.take() {
                                None => ids,
                                Some(prev) => intersect_sorted(&prev, &ids),
                            });
                            if seed.as_ref().is_some_and(Vec::is_empty) {
                                break;
                            }
                        }
                    }
                }
                if seed.as_ref().is_some_and(Vec::is_empty) {
                    // The intersection is empty: no row can survive, so the
                    // segment is never decoded — index-pruned, like a zone
                    // miss (equally result-invisible).
                    return Ok(ScanMorselOut {
                        rows: Vec::new(),
                        rows_scanned: 0,
                        bytes_scanned: 0,
                        bytes_materialized: 0,
                        segments_read: 0,
                        segments_pruned: 1,
                        index_probes,
                        index_rows_fetched,
                        postings_bytes_read,
                    });
                }
                let data = self.table.read_segment(meta).map_err(EngineError::new)?;
                let batch = ColumnBatch::new(&data.columns, data.rows);
                let (selection, rows_scanned) = match seed {
                    Some(ids) => {
                        let seeded = ids.len() as u64;
                        (SelectionVector::from_indices(ids), seeded)
                    }
                    None => (SelectionVector::all(data.rows), meta.rows),
                };
                let (rows, bytes_materialized) = self.filter_batch(&batch, selection)?;
                Ok(ScanMorselOut {
                    rows,
                    rows_scanned,
                    // Stored (encoded) bytes: the real disk read this segment
                    // costs, cached or not.
                    bytes_scanned: meta.stored_bytes,
                    bytes_materialized,
                    segments_read: 1,
                    segments_pruned: 0,
                    index_probes,
                    index_rows_fetched,
                    postings_bytes_read,
                })
            }
        }
    }

    /// Runs the scan over all partitions (parallel when `opts.threads > 1`),
    /// concatenating survivors in partition order.
    pub fn execute(
        &self,
        opts: &ExecOptions,
    ) -> Result<(Vec<Vec<Value>>, crate::exec::ExecStats), EngineError> {
        let plan = self.table.scan_plan(opts.morsel_rows);
        // One claim per partition: partitions already embody the morsel
        // granularity (ranges) or the segment alignment (disk).
        let claim_opts = ExecOptions {
            morsel_rows: 1,
            ..*opts
        };
        let (parts, metrics) = run_morsels(plan.partitions.len(), &claim_opts, |m| {
            self.run_partition(&plan, plan.partitions[m.index])
        })?;
        let mut stats = crate::exec::ExecStats::default();
        stats.note_parallel(&metrics);
        let total: usize = parts.iter().map(|p| p.rows.len()).sum();
        let mut rows = Vec::with_capacity(total);
        for part in parts {
            stats.rows_scanned += part.rows_scanned;
            stats.bytes_scanned += part.bytes_scanned;
            stats.rows_materialized += part.rows.len() as u64;
            stats.bytes_materialized += part.bytes_materialized;
            stats.segments_read += part.segments_read;
            stats.segments_pruned += part.segments_pruned;
            stats.index_probes += part.index_probes;
            stats.index_rows_fetched += part.index_rows_fetched;
            stats.postings_bytes_read += part.postings_bytes_read;
            rows.extend(part.rows);
        }
        Ok((rows, stats))
    }
}

/// Filter: row-at-a-time predicate evaluation over a materialized relation
/// (residual conjuncts joins could not consume, subquery-bearing predicates).
/// Subquery-free predicates run morsel-parallel; predicates with subqueries
/// fall back to the serial morsel loop with the recursive callback.
pub(crate) struct RowFilter<'a> {
    pub schema: &'a RowSchema,
    pub predicate: &'a Expr,
    pub params: &'a [Value],
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl RowFilter<'_> {
    pub fn execute(
        &self,
        rows: Vec<Vec<Value>>,
        opts: &ExecOptions,
        subquery: Option<SubqueryFn<'_>>,
    ) -> Result<(Vec<Vec<Value>>, ParallelMetrics), EngineError> {
        let keep_of =
            |m: Morsel, subquery: Option<SubqueryFn<'_>>| -> Result<Vec<bool>, EngineError> {
                let ctx = EvalContext {
                    params: self.params,
                    aggregates: None,
                    subquery,
                    outer: self.outer,
                };
                rows[m.start..m.end]
                    .iter()
                    .map(|row| {
                        eval(self.predicate, self.schema, row, &ctx)
                            .map(|v| v.as_bool().unwrap_or(false))
                    })
                    .collect()
            };
        let (parts, metrics) = if self.predicate.contains_subquery() {
            run_morsels_serial(rows.len(), opts.morsel_rows, |m| keep_of(m, subquery))?
        } else {
            run_morsels(rows.len(), opts, |m| keep_of(m, None))?
        };
        let keep: Vec<bool> = parts.into_iter().flatten().collect();
        let filtered: Vec<Vec<Value>> = rows
            .into_iter()
            .zip(keep)
            .filter_map(|(row, k)| k.then_some(row))
            .collect();
        Ok((filtered, metrics))
    }
}

/// Cross join (no equi-join keys found): the L×R concatenation, streamed with
/// an exact reservation.
pub(crate) struct CrossJoin;

impl CrossJoin {
    pub fn execute(left: &Relation, right: &Relation) -> Relation {
        let schema = left.schema.concat(&right.schema);
        let mut rows = Vec::with_capacity(left.rows.len().saturating_mul(right.rows.len()));
        for l in &left.rows {
            for r in &right.rows {
                let mut row = Vec::with_capacity(l.len() + r.len());
                row.extend(l.iter().cloned());
                row.extend(r.iter().cloned());
                rows.push(row);
            }
        }
        Relation { schema, rows }
    }
}

/// Hash join on equality keys: serial build over the right side, morsel-
/// parallel probe over the left. Rows with a NULL join key are dropped on both
/// sides: SQL equi-join predicates are never *true* for NULL keys
/// (`NULL = NULL` is NULL), so keeping them would invent matches through
/// `Value`'s reflexive `Eq`.
pub(crate) struct HashJoin<'a> {
    /// `(left_key_expr, right_key_expr)` pairs, oriented accumulator-first.
    pub keys: &'a [(Expr, Expr)],
    pub params: &'a [Value],
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl HashJoin<'_> {
    pub fn execute(
        &self,
        left: &Relation,
        right: &Relation,
        opts: &ExecOptions,
    ) -> Result<(Relation, ParallelMetrics), EngineError> {
        let ctx = EvalContext {
            params: self.params,
            aggregates: None,
            subquery: None,
            outer: self.outer,
        };
        // Build phase.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (idx, row) in right.rows.iter().enumerate() {
            let key: Vec<Value> = self
                .keys
                .iter()
                .map(|(_, r)| eval(r, &right.schema, row, &ctx))
                .collect::<Result<_, _>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(idx);
        }
        // Probe phase: morsels over the left rows, output concatenated in
        // partition order (which preserves the serial left-then-right-index
        // emission order).
        let table = &table;
        let (parts, metrics) = run_morsels(left.rows.len(), opts, |m| {
            let ctx = EvalContext {
                params: self.params,
                aggregates: None,
                subquery: None,
                outer: self.outer,
            };
            let mut out: Vec<Vec<Value>> = Vec::new();
            for lrow in &left.rows[m.start..m.end] {
                let key: Vec<Value> = self
                    .keys
                    .iter()
                    .map(|(l, _)| eval(l, &left.schema, lrow, &ctx))
                    .collect::<Result<_, _>>()?;
                if key.iter().any(Value::is_null) {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for &ridx in matches {
                        let rrow = &right.rows[ridx];
                        let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                        row.extend(lrow.iter().cloned());
                        row.extend(rrow.iter().cloned());
                        out.push(row);
                    }
                }
            }
            Ok(out)
        })?;
        let schema = left.schema.concat(&right.schema);
        let rows: Vec<Vec<Value>> = parts.into_iter().flatten().collect();
        Ok((Relation { schema, rows }, metrics))
    }
}

/// Sort: orders rows by their precomputed ORDER BY keys (stable, so ties keep
/// their input order).
pub(crate) struct Sort<'a> {
    pub order_by: &'a [OrderByItem],
}

impl Sort<'_> {
    pub fn execute(&self, rows: Vec<Vec<Value>>, sort_keys: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        let mut indexed: Vec<(Vec<Value>, Vec<Value>)> = sort_keys.into_iter().zip(rows).collect();
        indexed.sort_by(|(ka, _), (kb, _)| {
            for (i, ob) in self.order_by.iter().enumerate() {
                let ord = ka[i].compare(&kb[i]);
                let ord = if ob.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        indexed.into_iter().map(|(_, r)| r).collect()
    }
}

/// One aggregate expression, pre-analyzed for the per-row update loop.
pub(crate) struct AggSpec {
    /// The aggregate expression node (the key HAVING/projections resolve).
    pub expr: Expr,
    /// Its argument expression, if any.
    pub arg: Option<Expr>,
    /// `COUNT(*)`: update with no argument value.
    pub count_star: bool,
}

impl AggSpec {
    pub fn of(expr: &Expr) -> AggSpec {
        let arg = match expr {
            Expr::Aggregate { arg, .. } => arg.as_deref().cloned(),
            Expr::Function { args, .. } => args.first().cloned(),
            _ => None,
        };
        let count_star = matches!(
            expr,
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        );
        AggSpec {
            expr: expr.clone(),
            arg,
            count_star,
        }
    }

    /// True when the per-row update needs a subquery callback (which forces
    /// the serial morsel loop).
    pub fn needs_subquery(&self) -> bool {
        self.arg.as_ref().is_some_and(Expr::contains_subquery)
    }
}

/// State for one aggregate over one group. Partial states over disjoint row
/// ranges combine with [`merge`](Self::merge); merging in partition order
/// reproduces the serial accumulation exactly (see the module docs).
pub(crate) enum AggState {
    Sum {
        total_i: i64,
        total_f: f64,
        any_float: bool,
        count: u64,
    },
    Avg {
        total: f64,
        count: u64,
    },
    Count {
        count: u64,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    PaillierSum {
        /// Montgomery-resident drifting accumulator (see
        /// [`monomi_crypto::PaillierSum`]); each row is one in-place CIOS
        /// multiply, each partial-merge is one more.
        sum: PaillierSum,
        /// Shared modulus + Montgomery context, built once at
        /// `register_paillier_modulus` time.
        paillier: Arc<PaillierServerCtx>,
        /// Reusable parse buffer for the incoming ciphertext bytes.
        operand: BigUint,
    },
    GroupConcat {
        values: Vec<Value>,
    },
}

impl AggState {
    pub fn new(expr: &Expr, db: &Database) -> Result<Self, EngineError> {
        match expr {
            Expr::Aggregate { func, distinct, .. } => Ok(match func {
                AggFunc::Sum => AggState::Sum {
                    total_i: 0,
                    total_f: 0.0,
                    any_float: false,
                    count: 0,
                },
                AggFunc::Avg => AggState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggFunc::Count => AggState::Count {
                    count: 0,
                    distinct: if *distinct {
                        Some(Default::default())
                    } else {
                        None
                    },
                },
                AggFunc::Min => AggState::MinMax {
                    best: None,
                    is_min: true,
                },
                AggFunc::Max => AggState::MinMax {
                    best: None,
                    is_min: false,
                },
            }),
            Expr::Function { name, .. } if name == "paillier_sum" => {
                let paillier = db.paillier_ctx().cloned().ok_or_else(|| {
                    EngineError::new("paillier_sum requires a registered public modulus")
                })?;
                Ok(AggState::PaillierSum {
                    sum: PaillierSum::new(paillier.ctx()),
                    operand: BigUint::zero(),
                    paillier,
                })
            }
            Expr::Function { name, .. } if name == "group_concat" => {
                Ok(AggState::GroupConcat { values: Vec::new() })
            }
            other => Err(EngineError::new(format!("not an aggregate: {other}"))),
        }
    }

    pub fn update(&mut self, value: Option<Value>) {
        match self {
            AggState::Sum {
                total_i,
                total_f,
                any_float,
                count,
            } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return;
                    }
                    match v {
                        Value::Float(f) => {
                            *any_float = true;
                            *total_f += f;
                        }
                        other => {
                            if let Some(i) = other.as_int() {
                                *total_i += i;
                                *total_f += i as f64;
                            }
                        }
                    }
                    *count += 1;
                }
            }
            AggState::Avg { total, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *total += f;
                        *count += 1;
                    }
                }
            }
            AggState::Count { count, distinct } => match value {
                None => *count += 1, // COUNT(*)
                Some(v) => {
                    if v.is_null() {
                        return;
                    }
                    match distinct {
                        Some(set) => {
                            if set.insert(v) {
                                *count += 1;
                            }
                        }
                        None => *count += 1,
                    }
                }
            },
            AggState::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v < *b
                            } else {
                                v > *b
                            }
                        }
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            AggState::PaillierSum {
                sum,
                paillier,
                operand,
            } => {
                if let Some(Value::Bytes(ct)) = value {
                    operand.assign_from_bytes_be(&ct);
                    // The paper's §5.3 cost: one modular multiplication per
                    // row, here a single allocation-free CIOS pass (oversized
                    // operands are reduced defensively inside `add`).
                    sum.add(paillier.ctx(), operand);
                }
            }
            AggState::GroupConcat { values } => {
                if let Some(v) = value {
                    values.push(v);
                }
            }
        }
    }

    /// Folds another partial state (covering a *later* row range) into this
    /// one. Merging in partition order reproduces the serial result exactly:
    /// integer and modular arithmetic are order-insensitive, float partials
    /// reassociate at fixed morsel boundaries, and first-encounter data
    /// (MIN/MAX ties, group_concat order) keeps the earlier partition's view.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (
                AggState::Sum {
                    total_i,
                    total_f,
                    any_float,
                    count,
                },
                AggState::Sum {
                    total_i: oi,
                    total_f: of,
                    any_float: oaf,
                    count: oc,
                },
            ) => {
                *total_i += oi;
                *total_f += of;
                *any_float |= oaf;
                *count += oc;
            }
            (
                AggState::Avg { total, count },
                AggState::Avg {
                    total: ot,
                    count: oc,
                },
            ) => {
                *total += ot;
                *count += oc;
            }
            (
                AggState::Count { count, distinct },
                AggState::Count {
                    count: oc,
                    distinct: od,
                },
            ) => match (distinct, od) {
                (Some(set), Some(oset)) => {
                    set.extend(oset);
                    *count = set.len() as u64;
                }
                _ => *count += oc,
            },
            (AggState::MinMax { best, is_min }, AggState::MinMax { best: ob, .. }) => {
                if let Some(v) = ob {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v < *b
                            } else {
                                v > *b
                            }
                        }
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            (
                AggState::PaillierSum { sum, paillier, .. },
                AggState::PaillierSum { sum: osum, .. },
            ) => {
                // One CIOS multiply combines the two drifting accumulators.
                sum.merge(paillier.ctx(), &osum);
            }
            (AggState::GroupConcat { values }, AggState::GroupConcat { values: ov }) => {
                values.extend(ov);
            }
            _ => unreachable!("mismatched aggregate partials"),
        }
    }

    pub fn finish(self) -> Value {
        match self {
            AggState::Sum {
                total_i,
                total_f,
                any_float,
                count,
            } => {
                if count == 0 {
                    Value::Null
                } else if any_float {
                    Value::Float(total_f)
                } else {
                    Value::Int(total_i)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Count { count, .. } => Value::Int(count as i64),
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::PaillierSum { sum, paillier, .. } => {
                if sum.count() == 0 {
                    Value::Null
                } else {
                    // Cancel the R^{-count} drift accumulated by the per-row
                    // CIOS multiplies: one R^count fixup for the whole group.
                    let product = sum.finish(paillier.ctx());
                    Value::Bytes(product.to_bytes_be_padded(paillier.ciphertext_bytes()))
                }
            }
            AggState::GroupConcat { values } => Value::List(values),
        }
    }
}

/// One group discovered during partial aggregation.
pub(crate) struct GroupEntry {
    pub key: Vec<Value>,
    /// Global index of the group's first member row (the representative for
    /// group-key expressions in projections / HAVING / ORDER BY); `None` for
    /// the synthetic all-NULL group of a global aggregate over empty input.
    pub rep_row: Option<usize>,
    pub states: Vec<AggState>,
}

/// The partial aggregation result of one morsel: groups in first-encounter
/// order plus a lookup index.
pub(crate) struct GroupPartial {
    pub groups: Vec<GroupEntry>,
    index: HashMap<Vec<Value>, usize>,
}

impl GroupPartial {
    fn empty() -> Self {
        GroupPartial {
            groups: Vec::new(),
            index: HashMap::new(),
        }
    }
}

/// PartialAggregate → Merge: morsel-granular hash aggregation. Each morsel
/// builds thread-local [`AggState`]s per group; partials merge in partition
/// order, reproducing the serial group order and accumulation exactly.
pub(crate) struct MorselAggregate<'a> {
    pub relation: &'a Relation,
    pub group_by: &'a [Expr],
    pub specs: &'a [AggSpec],
    pub db: &'a Database,
    pub params: &'a [Value],
    pub outer: Option<(&'a RowSchema, &'a [Value])>,
}

impl MorselAggregate<'_> {
    /// True when every per-row expression (group keys and aggregate
    /// arguments) is subquery-free, so morsels can run on worker threads.
    pub fn parallelizable(&self) -> bool {
        !self.group_by.iter().any(Expr::contains_subquery)
            && !self.specs.iter().any(AggSpec::needs_subquery)
    }

    fn partial(
        &self,
        m: Morsel,
        subquery: Option<SubqueryFn<'_>>,
    ) -> Result<GroupPartial, EngineError> {
        let ctx = EvalContext {
            params: self.params,
            aggregates: None,
            subquery,
            outer: self.outer,
        };
        let mut partial = GroupPartial::empty();
        for ridx in m.start..m.end {
            let row = &self.relation.rows[ridx];
            let key: Vec<Value> = self
                .group_by
                .iter()
                .map(|g| eval(g, &self.relation.schema, row, &ctx))
                .collect::<Result<_, _>>()?;
            let gidx = match partial.index.get(&key) {
                Some(&i) => i,
                None => {
                    let states = self
                        .specs
                        .iter()
                        .map(|s| AggState::new(&s.expr, self.db))
                        .collect::<Result<Vec<_>, _>>()?;
                    partial.groups.push(GroupEntry {
                        key: key.clone(),
                        rep_row: Some(ridx),
                        states,
                    });
                    partial.index.insert(key, partial.groups.len() - 1);
                    partial.groups.len() - 1
                }
            };
            let entry = &mut partial.groups[gidx];
            for (spec, state) in self.specs.iter().zip(entry.states.iter_mut()) {
                if spec.count_star {
                    state.update(None);
                } else if let Some(arg) = &spec.arg {
                    let v = eval(arg, &self.relation.schema, row, &ctx)?;
                    state.update(Some(v));
                } else {
                    state.update(None);
                }
            }
        }
        Ok(partial)
    }

    /// Runs partial aggregation over all morsels and merges the partials in
    /// partition order, returning groups in the serial first-encounter order.
    pub fn execute(
        &self,
        opts: &ExecOptions,
        subquery: Option<SubqueryFn<'_>>,
    ) -> Result<(Vec<GroupEntry>, ParallelMetrics), EngineError> {
        let rows = self.relation.rows.len();
        let (partials, metrics) = if self.parallelizable() {
            run_morsels(rows, opts, |m| self.partial(m, None))?
        } else {
            run_morsels_serial(rows, opts.morsel_rows, |m| self.partial(m, subquery))?
        };
        let mut merged = GroupPartial::empty();
        for partial in partials {
            for entry in partial.groups {
                match merged.index.get(&entry.key) {
                    Some(&i) => {
                        let acc = &mut merged.groups[i];
                        for (state, other) in acc.states.iter_mut().zip(entry.states) {
                            state.merge(other);
                        }
                    }
                    None => {
                        merged.index.insert(entry.key.clone(), merged.groups.len());
                        merged.groups.push(entry);
                    }
                }
            }
        }
        Ok((merged.groups, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_partitioning_covers_input_exactly() {
        assert!(morsels_of(0, 4096).is_empty());
        let ms = morsels_of(10_001, 4096);
        assert_eq!(ms.len(), 3);
        assert_eq!((ms[0].start, ms[0].end), (0, 4096));
        assert_eq!((ms[2].start, ms[2].end), (8192, 10_001));
        assert_eq!(ms.iter().map(Morsel::len).sum::<usize>(), 10_001);
        assert!(!ms[0].is_empty());
    }

    #[test]
    fn run_morsels_preserves_partition_order_at_any_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            let opts = ExecOptions {
                threads,
                morsel_rows: 7,
                ..ExecOptions::serial()
            };
            let (parts, metrics) =
                run_morsels(100, &opts, |m| Ok((m.index, m.start, m.end))).unwrap();
            assert_eq!(parts.len(), 15);
            for (i, (idx, start, end)) in parts.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*start, i * 7);
                assert_eq!(*end, ((i + 1) * 7).min(100));
            }
            assert_eq!(metrics.morsels, 15);
            assert!(metrics.threads_used as usize <= threads.max(1));
        }
    }

    #[test]
    fn run_morsels_reports_lowest_indexed_error() {
        let opts = ExecOptions {
            threads: 4,
            morsel_rows: 1,
            ..ExecOptions::serial()
        };
        let err = run_morsels(64, &opts, |m| {
            if m.index >= 10 {
                Err(EngineError::new(format!("boom at {}", m.index)))
            } else {
                Ok(m.index)
            }
        })
        .unwrap_err();
        assert_eq!(err.message, "boom at 10");
    }

    #[test]
    fn exec_options_env_parsing_defaults() {
        let opts = ExecOptions::with_threads(0);
        assert_eq!(opts.threads, 1);
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::serial().morsel_rows, DEFAULT_MORSEL_ROWS);
    }
}
