//! Table statistics and a Postgres-flavoured cost estimator.
//!
//! MONOMI's planner asks the server's optimizer for cost estimates of candidate
//! server-side queries (§6.4 of the paper). This module is the stand-in: it
//! keeps per-table statistics (row counts, byte widths, distinct counts,
//! min/max) and produces an estimated execution cost, result cardinality, and
//! result width for a query AST, using the same shape of formulas Postgres
//! uses (sequential page cost + per-tuple CPU cost, multiplicative predicate
//! selectivities, distinct-count-capped group cardinalities).

use crate::database::Database;
use crate::value::Value;
use monomi_sql::ast::*;
use std::collections::HashMap;

/// Cost-model constants, loosely mirroring Postgres defaults.
pub const SEQ_PAGE_COST: f64 = 1.0;
pub const CPU_TUPLE_COST: f64 = 0.01;
pub const CPU_OPERATOR_COST: f64 = 0.0025;
pub const PAGE_BYTES: f64 = 8192.0;

/// Statistics for one column.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    pub distinct: usize,
    pub avg_width: usize,
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// Statistics for one table.
#[derive(Clone, Debug, Default)]
pub struct TableStats {
    pub rows: usize,
    pub bytes: usize,
    pub columns: HashMap<String, ColumnStats>,
}

/// Estimated execution characteristics of a query at the server.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryEstimate {
    /// Abstract server cost units (comparable across candidate plans).
    pub server_cost: f64,
    /// Estimated number of result rows.
    pub result_rows: f64,
    /// Estimated size of one result row in bytes.
    pub result_row_bytes: f64,
    /// Estimated fraction of scanned rows surviving the WHERE clause — the
    /// selectivity the vectorized scan's selection vectors realize. Mirrors
    /// [`crate::ExecStats::scan_selectivity`] on the measurement side.
    pub scan_selectivity: f64,
    /// Estimated bytes the scan materializes after filtering (scanned bytes ×
    /// selectivity); the selectivity-aware counterpart of the full scan size.
    pub post_filter_bytes: f64,
}

impl QueryEstimate {
    /// Estimated total result size in bytes.
    pub fn result_bytes(&self) -> f64 {
        self.result_rows * self.result_row_bytes
    }
}

/// Collects statistics for every table in the database.
pub fn collect_stats(db: &Database) -> HashMap<String, TableStats> {
    let mut out = HashMap::new();
    for name in db.table_names() {
        let table = db.table(&name).expect("table listed but missing");
        let mut columns = HashMap::new();
        for (idx, col) in table.schema().columns.iter().enumerate() {
            let bytes = table.column_size_bytes(idx);
            let rows = table.row_count().max(1);
            let (min, max) = table
                .min_max(idx)
                .map(|(a, b)| (Some(a), Some(b)))
                .unwrap_or((None, None));
            columns.insert(
                col.name.to_lowercase(),
                ColumnStats {
                    distinct: table.distinct_count(idx).max(1),
                    avg_width: (bytes / rows).max(1),
                    min,
                    max,
                },
            );
        }
        out.insert(
            name.clone(),
            TableStats {
                rows: table.row_count(),
                bytes: table.size_bytes(),
                columns,
            },
        );
    }
    out
}

/// Cost estimator over previously collected statistics.
pub struct Estimator<'a> {
    stats: &'a HashMap<String, TableStats>,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator.
    pub fn new(stats: &'a HashMap<String, TableStats>) -> Self {
        Estimator { stats }
    }

    /// Estimates the server cost and output shape of a query.
    pub fn estimate(&self, query: &Query) -> QueryEstimate {
        // Input side: scan every base relation (and derived tables).
        let mut scan_cost = 0.0;
        let mut input_rows: f64 = 1.0;
        let mut max_rows: f64 = 0.0;
        let mut input_bytes: f64 = 0.0;
        let mut column_width: HashMap<String, usize> = HashMap::new();
        let mut column_distinct: HashMap<String, usize> = HashMap::new();

        for table_ref in &query.from {
            match table_ref {
                TableRef::Table { name, .. } => {
                    if let Some(ts) = self.stats.get(&name.to_lowercase()) {
                        scan_cost += (ts.bytes as f64 / PAGE_BYTES) * SEQ_PAGE_COST
                            + ts.rows as f64 * CPU_TUPLE_COST;
                        input_bytes += ts.bytes as f64;
                        max_rows = max_rows.max(ts.rows as f64);
                        input_rows = input_rows.max(ts.rows as f64);
                        for (cname, cs) in &ts.columns {
                            column_width.insert(cname.clone(), cs.avg_width);
                            column_distinct.insert(cname.clone(), cs.distinct);
                        }
                    }
                }
                TableRef::Subquery { query: sub, alias } => {
                    let inner = self.estimate(sub);
                    scan_cost += inner.server_cost;
                    input_bytes += inner.result_bytes();
                    max_rows = max_rows.max(inner.result_rows);
                    input_rows = input_rows.max(inner.result_rows);
                    for (i, p) in sub.projections.iter().enumerate() {
                        column_width.insert(
                            format!("{}.{}", alias, p.output_name(i)).to_lowercase(),
                            (inner.result_row_bytes / sub.projections.len().max(1) as f64) as usize,
                        );
                    }
                }
            }
        }

        // Joins: assume key/foreign-key joins, so the output cardinality tracks
        // the largest relation rather than the Cartesian product.
        let join_count = query.from.len().saturating_sub(1) as f64;
        let joined_rows = max_rows.max(1.0);
        scan_cost += join_count * joined_rows * CPU_OPERATOR_COST * 2.0;

        // WHERE selectivity.
        let selectivity = query
            .where_clause
            .as_ref()
            .map(|w| self.predicate_selectivity(w, &column_distinct))
            .unwrap_or(1.0);
        let filtered_rows = (joined_rows * selectivity).max(1.0);

        // The vectorized scan materializes rows only after filtering, so the
        // per-tuple materialization cost scales with selectivity rather than
        // with the raw scan size.
        let materialize_cost = filtered_rows * CPU_TUPLE_COST;
        let post_filter_bytes = input_bytes * selectivity;

        // Aggregation.
        let (result_rows, agg_cost) = if query.is_aggregate_query() {
            let groups = if query.group_by.is_empty() {
                1.0
            } else {
                let mut g = 1.0f64;
                for key in &query.group_by {
                    let d = key
                        .column_refs()
                        .first()
                        .and_then(|c| column_distinct.get(&c.column.to_lowercase()))
                        .copied()
                        .unwrap_or(10);
                    g *= d as f64;
                }
                g.min(filtered_rows)
            };
            (groups, filtered_rows * CPU_OPERATOR_COST)
        } else {
            (filtered_rows, 0.0)
        };

        // HAVING halves the groups by default.
        let result_rows = if query.having.is_some() {
            (result_rows * 0.5).max(1.0)
        } else {
            result_rows
        };

        // Sorting cost (n log n over the rows feeding the sort).
        let sort_cost = if query.order_by.is_empty() {
            0.0
        } else {
            let n = result_rows.max(2.0);
            n * n.log2() * CPU_OPERATOR_COST
        };

        // Output row width.
        let rows_per_group = (filtered_rows / result_rows).max(1.0);
        let mut row_bytes = 0.0;
        for p in &query.projections {
            row_bytes += self.projection_width(&p.expr, &column_width, rows_per_group);
        }
        let result_rows = match query.limit {
            Some(l) => result_rows.min(l as f64),
            None => result_rows,
        };

        QueryEstimate {
            server_cost: scan_cost + materialize_cost + agg_cost + sort_cost,
            result_rows,
            result_row_bytes: row_bytes.max(1.0),
            scan_selectivity: selectivity,
            post_filter_bytes,
        }
    }

    fn projection_width(
        &self,
        expr: &Expr,
        widths: &HashMap<String, usize>,
        rows_per_group: f64,
    ) -> f64 {
        match expr {
            // The group_concat UDF ships every value of the group to the client.
            Expr::Function { name, args } if name == "group_concat" => {
                let inner = args
                    .first()
                    .map(|a| self.projection_width(a, widths, 1.0))
                    .unwrap_or(8.0);
                inner * rows_per_group
            }
            Expr::Function { name, args } if name == "paillier_sum" => args
                .first()
                .map(|a| self.projection_width(a, widths, 1.0))
                .unwrap_or(256.0),
            Expr::Column(c) => *widths
                .get(&c.column.to_lowercase())
                .or_else(|| {
                    widths.get(
                        &format!("{}.{}", c.table.clone().unwrap_or_default(), c.column)
                            .to_lowercase(),
                    )
                })
                .unwrap_or(&8) as f64,
            Expr::Aggregate { arg, .. } => arg
                .as_ref()
                .map(|a| self.projection_width(a, widths, 1.0))
                .unwrap_or(8.0)
                .max(8.0),
            Expr::BinaryOp { left, right, .. } => self
                .projection_width(left, widths, rows_per_group)
                .max(self.projection_width(right, widths, rows_per_group)),
            Expr::Case {
                when_then,
                else_expr,
                ..
            } => {
                let mut w: f64 = 8.0;
                for (_, t) in when_then {
                    w = w.max(self.projection_width(t, widths, rows_per_group));
                }
                if let Some(e) = else_expr {
                    w = w.max(self.projection_width(e, widths, rows_per_group));
                }
                w
            }
            _ => 8.0,
        }
    }

    fn predicate_selectivity(&self, expr: &Expr, distinct: &HashMap<String, usize>) -> f64 {
        match expr {
            Expr::BinaryOp {
                left,
                op: BinaryOp::And,
                right,
            } => {
                self.predicate_selectivity(left, distinct)
                    * self.predicate_selectivity(right, distinct)
            }
            Expr::BinaryOp {
                left,
                op: BinaryOp::Or,
                right,
            } => {
                let a = self.predicate_selectivity(left, distinct);
                let b = self.predicate_selectivity(right, distinct);
                (a + b - a * b).min(1.0)
            }
            Expr::BinaryOp { left, op, right } if op.is_comparison() => {
                // Join predicates (column = column) do not reduce cardinality
                // under the FK-join assumption.
                let lcols = left.column_refs();
                let rcols = right.column_refs();
                if !lcols.is_empty() && !rcols.is_empty() {
                    return 1.0;
                }
                match op {
                    BinaryOp::Eq => {
                        let d = lcols
                            .first()
                            .or_else(|| rcols.first())
                            .and_then(|c| distinct.get(&c.column.to_lowercase()))
                            .copied()
                            .unwrap_or(20);
                        1.0 / d as f64
                    }
                    BinaryOp::NotEq => 0.9,
                    _ => 0.33,
                }
            }
            Expr::Between { .. } => 0.2,
            Expr::Like { negated, .. } => {
                if *negated {
                    0.9
                } else {
                    0.1
                }
            }
            Expr::InList { list, expr, .. } => {
                let d = expr
                    .column_refs()
                    .first()
                    .and_then(|c| distinct.get(&c.column.to_lowercase()))
                    .copied()
                    .unwrap_or(20);
                (list.len() as f64 / d as f64).min(1.0)
            }
            Expr::InSubquery { .. } | Expr::Exists { .. } => 0.5,
            Expr::IsNull { negated, .. } => {
                if *negated {
                    0.95
                } else {
                    0.05
                }
            }
            Expr::UnaryOp {
                op: UnaryOp::Not,
                expr,
            } => 1.0 - self.predicate_selectivity(expr, distinct),
            Expr::Function { name, .. } if name == "search_match" => 0.1,
            _ => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::schema::{ColumnDef, ColumnType, TableSchema};
    use monomi_sql::parse_query;

    fn db_with_data() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "items",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("category", ColumnType::Str),
                ColumnDef::new("price", ColumnType::Int),
            ],
        ));
        for i in 0..1000i64 {
            db.insert(
                "items",
                vec![
                    Value::Int(i),
                    Value::Str(format!("cat{}", i % 10)),
                    Value::Int(i * 3),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn scan_cost_scales_with_table_size() {
        let db = db_with_data();
        let stats = collect_stats(&db);
        let est = Estimator::new(&stats);
        let full = est.estimate(&parse_query("SELECT id FROM items").unwrap());
        assert!(full.server_cost > 0.0);
        assert!((full.result_rows - 1000.0).abs() < 1.0);
    }

    #[test]
    fn equality_filter_reduces_cardinality() {
        let db = db_with_data();
        let stats = collect_stats(&db);
        let est = Estimator::new(&stats);
        let all = est.estimate(&parse_query("SELECT id FROM items").unwrap());
        let filtered =
            est.estimate(&parse_query("SELECT id FROM items WHERE category = 'cat3'").unwrap());
        assert!(filtered.result_rows < all.result_rows / 5.0);
    }

    #[test]
    fn group_by_caps_at_distinct_count() {
        let db = db_with_data();
        let stats = collect_stats(&db);
        let est = Estimator::new(&stats);
        let grouped = est.estimate(
            &parse_query("SELECT category, SUM(price) FROM items GROUP BY category").unwrap(),
        );
        assert!((grouped.result_rows - 10.0).abs() < 1.0);
        let global = est.estimate(&parse_query("SELECT SUM(price) FROM items").unwrap());
        assert!((global.result_rows - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn group_concat_width_reflects_group_size() {
        let db = db_with_data();
        let stats = collect_stats(&db);
        let est = Estimator::new(&stats);
        let concat = est.estimate(
            &parse_query("SELECT category, group_concat(price) FROM items GROUP BY category")
                .unwrap(),
        );
        let plain = est.estimate(
            &parse_query("SELECT category, SUM(price) FROM items GROUP BY category").unwrap(),
        );
        assert!(concat.result_row_bytes > plain.result_row_bytes * 10.0);
    }

    #[test]
    fn limit_caps_result_rows() {
        let db = db_with_data();
        let stats = collect_stats(&db);
        let est = Estimator::new(&stats);
        let limited =
            est.estimate(&parse_query("SELECT id FROM items ORDER BY id LIMIT 20").unwrap());
        assert!((limited.result_rows - 20.0).abs() < f64::EPSILON);
    }
}
