//! Runtime values flowing through the execution engine.
//!
//! The value model now lives in `monomi-store` (the persistent segment store
//! must encode values exactly — variant and bit pattern included — which puts
//! it at the bottom of the crate DAG); this module re-exports it unchanged so
//! engine-internal paths (`crate::value::Value`) and the public API
//! (`monomi_engine::Value`) are unaffected.

pub use monomi_store::value::{date, Value};
