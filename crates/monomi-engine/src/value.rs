//! Runtime values flowing through the execution engine.
//!
//! The engine stores and processes both plaintext values (integers, strings,
//! dates) and ciphertext values (fixed-width byte strings produced by the
//! encryption schemes in `monomi-crypto`). Ciphertexts are ordinary [`Value`]s
//! to the engine — the server never interprets them beyond equality and byte
//! ordering, which is exactly what DET and OPE ciphertexts support.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (also used for DET ciphertexts of integers).
    Int(i64),
    /// Double-precision float (used for computed averages and ratios).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Date as days since 1970-01-01 (can be negative).
    Date(i32),
    /// Raw bytes: RND/DET string ciphertexts, OPE ciphertexts (16-byte
    /// big-endian), Paillier ciphertexts, SEARCH token sets.
    Bytes(Vec<u8>),
    /// An ordered list of values, produced by the `group_concat` aggregate the
    /// split-execution client uses to fetch whole groups.
    List(Vec<Value>),
}

impl Value {
    /// True iff NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (casts floats, parses nothing else).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(d) => Some(*d as i64),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// Float view of numeric values.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Byte view.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate storage footprint in bytes, used for space accounting
    /// (Table 2 of the paper) and the I/O cost model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 1,
            Value::Date(_) => 4,
            Value::Bytes(b) => b.len(),
            Value::List(vs) => vs.iter().map(Value::size_bytes).sum::<usize>() + 8,
        }
    }

    /// SQL three-valued-logic truthiness: NULL propagates as `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(*v != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY, MIN/MAX, and comparison predicates.
    /// NULLs sort first; numeric types compare numerically across Int/Float/
    /// Date; bytes compare lexicographically (which matches numeric order for
    /// fixed-width big-endian OPE ciphertexts).
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.compare(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            // Mixed numerics via f64.
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => format!("{a:?}").cmp(&format!("{b:?}")),
            },
        }
    }

    /// Equality following the same coercion rules as [`compare`](Self::compare).
    pub fn equals(&self, other: &Value) -> bool {
        self.compare(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.equals(other)
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Value::Float(f) => {
                // Hash the bit pattern of the canonical float; equal Int/Float
                // values that compare equal may hash differently, so group keys
                // should not mix types for the same column (they do not: a
                // column has a single type).
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
            Value::Bytes(b) => {
                5u8.hash(state);
                b.hash(state);
            }
            Value::List(vs) => {
                6u8.hash(state);
                for v in vs {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", date::format_date(*d)),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter().take(8) {
                    write!(f, "{byte:02x}")?;
                }
                if b.len() > 8 {
                    write!(f, "…({}B)", b.len())?;
                }
                Ok(())
            }
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// Date helpers: conversion between `YYYY-MM-DD` strings and days since the
/// Unix epoch, plus calendar arithmetic for INTERVAL handling.
pub mod date {
    /// Days in each month of a non-leap year.
    const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

    fn is_leap(year: i32) -> bool {
        (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
    }

    fn days_in_month(year: i32, month: i32) -> i32 {
        if month == 2 && is_leap(year) {
            29
        } else {
            DAYS_IN_MONTH[(month - 1) as usize]
        }
    }

    /// Converts `(year, month, day)` to days since 1970-01-01.
    pub fn ymd_to_days(year: i32, month: i32, day: i32) -> i32 {
        let mut days: i64 = 0;
        if year >= 1970 {
            for y in 1970..year {
                days += if is_leap(y) { 366 } else { 365 };
            }
        } else {
            for y in year..1970 {
                days -= if is_leap(y) { 366 } else { 365 };
            }
        }
        for m in 1..month {
            days += days_in_month(year, m) as i64;
        }
        days += (day - 1) as i64;
        days as i32
    }

    /// Converts days since 1970-01-01 back to `(year, month, day)`.
    pub fn days_to_ymd(days: i32) -> (i32, i32, i32) {
        let mut remaining = days as i64;
        let mut year = 1970;
        loop {
            let year_days = if is_leap(year) { 366 } else { 365 } as i64;
            if remaining >= year_days {
                remaining -= year_days;
                year += 1;
            } else if remaining < 0 {
                year -= 1;
                remaining += if is_leap(year) { 366 } else { 365 } as i64;
            } else {
                break;
            }
        }
        let mut month = 1;
        while remaining >= days_in_month(year, month) as i64 {
            remaining -= days_in_month(year, month) as i64;
            month += 1;
        }
        (year, month, remaining as i32 + 1)
    }

    /// Parses `YYYY-MM-DD` into days since the epoch.
    pub fn parse_date(s: &str) -> Option<i32> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: i32 = parts.next()?.parse().ok()?;
        let day: i32 = parts.next()?.parse().ok()?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(ymd_to_days(year, month, day))
    }

    /// Formats days since the epoch as `YYYY-MM-DD`.
    pub fn format_date(days: i32) -> String {
        let (y, m, d) = days_to_ymd(days);
        format!("{y:04}-{m:02}-{d:02}")
    }

    /// Adds calendar months to a date, clamping the day to the target month.
    pub fn add_months(days: i32, months: i32) -> i32 {
        let (y, m, d) = days_to_ymd(days);
        let total = (y * 12 + (m - 1)) + months;
        let ny = total.div_euclid(12);
        let nm = total.rem_euclid(12) + 1;
        let nd = d.min(days_in_month(ny, nm));
        ymd_to_days(ny, nm, nd)
    }

    /// The year component of a date.
    pub fn year_of(days: i32) -> i32 {
        days_to_ymd(days).0
    }

    /// The month component of a date.
    pub fn month_of(days: i32) -> i32 {
        days_to_ymd(days).1
    }

    /// The day-of-month component of a date.
    pub fn day_of(days: i32) -> i32 {
        days_to_ymd(days).2
    }
}

#[cfg(test)]
mod tests {
    use super::date::*;
    use super::*;

    #[test]
    fn date_roundtrip_known_values() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1971-01-01"), Some(365));
        assert_eq!(parse_date("1996-02-29"), Some(ymd_to_days(1996, 2, 29)));
        for s in [
            "1992-01-01",
            "1995-09-17",
            "1998-12-31",
            "2000-02-29",
            "1969-12-31",
            "1965-03-07",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "roundtrip {s}");
        }
    }

    #[test]
    fn date_arithmetic() {
        let d = parse_date("1994-01-01").unwrap();
        assert_eq!(format_date(add_months(d, 3)), "1994-04-01");
        assert_eq!(format_date(add_months(d, 12)), "1995-01-01");
        assert_eq!(
            format_date(add_months(parse_date("1995-01-31").unwrap(), 1)),
            "1995-02-28"
        );
        assert_eq!(year_of(d), 1994);
        assert_eq!(month_of(parse_date("1995-09-17").unwrap()), 9);
        assert_eq!(day_of(parse_date("1995-09-17").unwrap()), 17);
    }

    #[test]
    fn value_ordering_and_nulls() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(3) < Value::Int(5));
        assert!(Value::Float(2.5) < Value::Int(3));
        assert!(Value::Str("AIR".into()) < Value::Str("RAIL".into()));
        assert!(Value::Date(100) < Value::Date(200));
        assert!(Value::Bytes(vec![0, 1]) < Value::Bytes(vec![0, 2]));
    }

    #[test]
    fn value_equality_coerces_numerics() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert!(!Value::Null.equals(&Value::Int(0)));
    }

    #[test]
    fn size_accounting() {
        assert_eq!(Value::Int(7).size_bytes(), 8);
        assert_eq!(Value::Str("abc".into()).size_bytes(), 4);
        assert_eq!(Value::Bytes(vec![0u8; 256]).size_bytes(), 256);
    }

    #[test]
    fn bytes_ordering_matches_big_endian_numeric() {
        // OPE ciphertexts are stored big-endian: byte order must equal numeric order.
        let a = 12345u128.to_be_bytes().to_vec();
        let b = 12346u128.to_be_bytes().to_vec();
        assert!(Value::Bytes(a) < Value::Bytes(b));
    }
}
