//! The query executor: a pipeline of physical operators (see [`crate::ops`])
//! over columnar morsels, driven by morsel-granular worker threads.
//!
//! One query flows Scan → Filter → \[HashJoin\] → PartialAggregate → Merge →
//! Sort/Project. Base-table scans are *vectorized*: single-table WHERE
//! conjuncts are compiled ([`crate::expr::compile_predicate`]) and evaluated
//! directly over the stored column slices, narrowing a
//! [`SelectionVector`](crate::storage::SelectionVector) per morsel. Only after
//! every scan-level predicate has run are the survivors materialized — and
//! only the columns the query actually references (late materialization).
//! Aggregation is morsel-partitioned: workers build thread-local
//! [`AggState`](crate::ops::AggState)s and the partials merge in partition
//! order, so results are bit-identical at any thread count
//! ([`ExecOptions::threads`]). Correlated and uncorrelated subqueries are
//! evaluated through a recursive callback on the serial paths.
//!
//! Encrypted execution uses exactly the same code path — the rewritten queries
//! produced by `monomi-core` reference encrypted columns and the engine's
//! encrypted aggregation UDFs (`paillier_sum`, `group_concat`), which are
//! handled in the aggregation phase; `paillier_sum` partials combine with one
//! CIOS multiply ([`monomi_crypto::PaillierSum::merge`]).

use crate::database::Database;
use crate::expr::{compile_predicate, eval, ColumnarPredicate, EvalContext, RowSchema};
use crate::ops::{
    AggSpec, AggState, CrossJoin, ExecOptions, GroupEntry, HashJoin, IndexProbe, MorselAggregate,
    ParallelMetrics, ProbeOp, Relation, RowFilter, ScanFilter, Sort,
};
use crate::storage::Table;
use crate::value::Value;
use crate::EngineError;
use monomi_obs::Span;
use monomi_sql::ast::*;
use std::collections::HashMap;

/// A query result: named columns and materialized rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Total serialized size of the result in bytes (drives the network
    /// transfer model of the split-execution cost estimator).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Counters describing the work the "server" did for one query.
///
/// Parallel operators accumulate their counters per worker thread and the
/// per-thread/per-morsel partials are combined with [`ExecStats::merge`], so
/// the totals are identical at every thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Bytes read from base tables.
    pub bytes_scanned: u64,
    /// Rows surviving the scan-level predicates and materialized into row
    /// form (the input to joins/aggregation). With no scan predicates this
    /// equals `rows_scanned`.
    pub rows_materialized: u64,
    /// Bytes of the values actually materialized after filtering and column
    /// pruning — the post-filter scan output the split-execution cost model
    /// uses for selectivity-aware scan costs (vs. `bytes_scanned`, which
    /// counts everything the scan read).
    pub bytes_materialized: u64,
    /// Rows produced.
    pub result_rows: u64,
    /// Bytes produced.
    pub result_bytes: u64,
    /// Disk segments decoded (or served from the segment cache) by scans.
    /// Always 0 on the memory backing.
    pub segments_read: u64,
    /// Disk segments skipped before any predicate ran — by zone-map pruning
    /// or by an index-probe intersection coming back empty. Pruned segments
    /// contribute nothing to `rows_scanned`/`bytes_scanned` — they were
    /// never read.
    pub segments_pruned: u64,
    /// Index postings lookups (one per probeable conjunct per indexed
    /// segment). Always 0 on the memory backing and with `MONOMI_INDEXES=off`.
    pub index_probes: u64,
    /// Row ids returned by index probes, before conjunct intersection. A
    /// probed segment's `rows_scanned` is its *seeded* row count, so the
    /// rows-scanned reduction of the index path shows up directly.
    pub index_rows_fetched: u64,
    /// Bytes of postings the probes touched (4 bytes per fetched row id).
    pub postings_bytes_read: u64,
    /// Morsels processed by morsel-driven operators (scan, filter, join
    /// probe, partial aggregation).
    pub morsels: u64,
    /// Largest worker pool any single operator of this query engaged (1 for
    /// fully serial execution).
    pub threads_used: u32,
    /// Wall-clock residency summed across all workers of all morsel-driven
    /// regions. With a dedicated core per worker this is the aggregate CPU
    /// the query burned (vs. the wall-clock it took); on oversubscribed
    /// hosts (threads > cores) descheduled time is included, making it an
    /// upper bound on true CPU — std has no portable thread-CPU clock.
    pub worker_busy_nanos: u64,
    /// Wall-clock time spent inside morsel-driven regions. The query's
    /// aggregate busy time is
    /// `total_wall - parallel_wall_nanos + worker_busy_nanos`.
    pub parallel_wall_nanos: u64,
}

impl ExecStats {
    /// Observed fraction of scanned base-table rows that survived the
    /// scan-level predicates (1.0 when nothing was scanned).
    pub fn scan_selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            1.0
        } else {
            self.rows_materialized as f64 / self.rows_scanned as f64
        }
    }

    /// Folds another stats snapshot (a per-thread or per-operator partial)
    /// into this one: counters add, `threads_used` takes the maximum.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.bytes_scanned += other.bytes_scanned;
        self.rows_materialized += other.rows_materialized;
        self.bytes_materialized += other.bytes_materialized;
        self.result_rows += other.result_rows;
        self.result_bytes += other.result_bytes;
        self.segments_read += other.segments_read;
        self.segments_pruned += other.segments_pruned;
        self.index_probes += other.index_probes;
        self.index_rows_fetched += other.index_rows_fetched;
        self.postings_bytes_read += other.postings_bytes_read;
        self.morsels += other.morsels;
        self.threads_used = self.threads_used.max(other.threads_used);
        self.worker_busy_nanos += other.worker_busy_nanos;
        self.parallel_wall_nanos += other.parallel_wall_nanos;
    }

    /// Aggregate busy seconds for a query whose total execution wall-clock
    /// was `exec_wall_seconds`: wall-clock outside the morsel-parallel
    /// regions plus the summed worker residency inside them, clamped at
    /// zero. Equals aggregate CPU when every worker has a core to itself
    /// (see [`worker_busy_nanos`](Self::worker_busy_nanos)); the single
    /// definition of the wall-vs-CPU accounting every consumer
    /// (`QueryTimings`, baselines) shares.
    pub fn cpu_seconds(&self, exec_wall_seconds: f64) -> f64 {
        (exec_wall_seconds - self.parallel_wall_nanos as f64 * 1e-9
            + self.worker_busy_nanos as f64 * 1e-9)
            .max(0.0)
    }

    /// The deterministic work counters, excluding the two wall-clock fields
    /// (`worker_busy_nanos`, `parallel_wall_nanos`) that legitimately differ
    /// between otherwise identical runs. Two executions of the same query
    /// over the same data must agree on this array regardless of transport,
    /// thread count, or host load — the transport-parity tests compare it.
    /// Order: rows/bytes scanned, rows/bytes materialized, result rows/bytes,
    /// segments read/pruned, index probes / rows fetched / postings bytes,
    /// morsels, threads used.
    pub fn work_counters(&self) -> [u64; 13] {
        [
            self.rows_scanned,
            self.bytes_scanned,
            self.rows_materialized,
            self.bytes_materialized,
            self.result_rows,
            self.result_bytes,
            self.segments_read,
            self.segments_pruned,
            self.index_probes,
            self.index_rows_fetched,
            self.postings_bytes_read,
            self.morsels,
            u64::from(self.threads_used),
        ]
    }

    /// Records the work accounting of one morsel-driven region.
    pub(crate) fn note_parallel(&mut self, m: &ParallelMetrics) {
        self.morsels += m.morsels;
        self.threads_used = self.threads_used.max(m.threads_used);
        self.worker_busy_nanos += m.worker_busy_nanos;
        self.parallel_wall_nanos += m.wall_nanos;
    }
}

/// Executes a query against a database with the given execution options.
pub fn execute_query(
    db: &Database,
    query: &Query,
    params: &[Value],
    opts: &ExecOptions,
) -> Result<(ResultSet, ExecStats), EngineError> {
    let (result, stats, _) = execute_query_spanned(db, query, params, opts, false)?;
    Ok((result, stats))
}

/// Executes a query and additionally returns one [`Span`] per named operator
/// (`ScanFilter`, `HashJoin`, `MorselAggregate`, `Sort`) in execution order.
///
/// The spans carry wall-clock times, so they vary run to run — but the
/// *result* and [`ExecStats`] work counters are byte-identical to the
/// untraced [`execute_query`] path: tracing only ever wraps an operator call
/// in a stopwatch, it never reorders or alters work. When tracing is off the
/// executor makes zero clock calls (the `timed` helper short-circuits), so
/// the untraced hot path pays nothing.
pub fn execute_query_traced(
    db: &Database,
    query: &Query,
    params: &[Value],
    opts: &ExecOptions,
) -> Result<(ResultSet, ExecStats, Vec<Span>), EngineError> {
    execute_query_spanned(db, query, params, opts, true)
}

fn execute_query_spanned(
    db: &Database,
    query: &Query,
    params: &[Value],
    opts: &ExecOptions,
    traced: bool,
) -> Result<(ResultSet, ExecStats, Vec<Span>), EngineError> {
    let mut stats = ExecStats {
        threads_used: 1,
        ..Default::default()
    };
    let mut spans = if traced { Some(Vec::new()) } else { None };
    let result = execute_inner(db, query, params, None, &mut stats, opts, &mut spans)?;
    stats.result_rows = result.rows.len() as u64;
    stats.result_bytes = result.size_bytes() as u64;
    Ok((result, stats, spans.unwrap_or_default()))
}

/// Runs `f`, timing it into a new leaf span when tracing is on. With `spans`
/// `None` this is a plain call — no clock is consulted, keeping the untraced
/// executor free of timing overhead and of nondeterministic syscalls.
fn timed<T>(
    spans: &mut Option<Vec<Span>>,
    label: impl FnOnce() -> String,
    rows_of: impl FnOnce(&T) -> u64,
    f: impl FnOnce() -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    if spans.is_none() {
        return f();
    }
    // monomi-lint: allow(determinism-clock-env): span timing runs only when tracing was requested and feeds observability output, never operator results
    let start = std::time::Instant::now();
    let value = f()?;
    let seconds = start.elapsed().as_secs_f64();
    if let Some(out) = spans.as_mut() {
        out.push(Span::leaf(label(), seconds, rows_of(&value)));
    }
    Ok(value)
}

fn execute_inner(
    db: &Database,
    query: &Query,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    stats: &mut ExecStats,
    opts: &ExecOptions,
    spans: &mut Option<Vec<Span>>,
) -> Result<ResultSet, EngineError> {
    // 1. Build the FROM relation (scans, derived tables, joins, filters).
    let where_conjuncts: Vec<Expr> = query
        .where_clause
        .as_ref()
        .map(|w| w.split_conjuncts())
        .unwrap_or_default();
    let relation = build_from_relation(
        db,
        query,
        &where_conjuncts,
        params,
        outer,
        stats,
        opts,
        spans,
    )?;

    // 2. Aggregate or plain projection. UDF aggregates (paillier_sum,
    // group_concat) make a query an aggregation even though the parser does
    // not know they aggregate.
    let is_aggregate = query.is_aggregate_query() || !collect_aggregates(query).is_empty();
    let subquery_fn = make_subquery_fn(db, params, *opts);
    let mut output = if is_aggregate {
        aggregate_and_project(db, query, &relation, params, outer, stats, opts, spans)?
    } else {
        project_rows(query, &relation, params, outer, &subquery_fn)?
    };

    // 3. DISTINCT.
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept_rows = Vec::new();
        let mut kept_keys = Vec::new();
        for (row, key) in output.rows.into_iter().zip(output.sort_keys) {
            if seen.insert(row.clone()) {
                kept_rows.push(row);
                kept_keys.push(key);
            }
        }
        output.rows = kept_rows;
        output.sort_keys = kept_keys;
    }

    // 4. ORDER BY.
    if !query.order_by.is_empty() {
        let sort = Sort {
            order_by: &query.order_by,
        };
        let rows = std::mem::take(&mut output.rows);
        let keys = std::mem::take(&mut output.sort_keys);
        output.rows = timed(
            spans,
            || "Sort".to_string(),
            |r: &Vec<Vec<Value>>| r.len() as u64,
            || Ok(sort.execute(rows, keys)),
        )?;
    }

    // 5. LIMIT.
    if let Some(limit) = query.limit {
        output.rows.truncate(limit as usize);
    }

    Ok(ResultSet {
        columns: output.columns,
        rows: output.rows,
    })
}

/// Rows plus the pre-computed ORDER BY keys for each row.
struct ProjectedRows {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    sort_keys: Vec<Vec<Value>>,
}

/// An outer row visible to a correlated subquery: its schema and values.
type OuterRow<'s, 'v> = Option<(&'s RowSchema, &'v [Value])>;

fn make_subquery_fn<'a>(
    db: &'a Database,
    params: &'a [Value],
    opts: ExecOptions,
) -> impl Fn(&Query, OuterRow<'_, '_>) -> Result<Vec<Vec<Value>>, EngineError> + 'a {
    // Subqueries track their scan work in a local counter; the parent query's
    // own scans dominate the statistics we report. They run serially: a
    // correlated subquery is re-evaluated once per outer row, and spawning a
    // worker pool for each evaluation would cost far more than it saves.
    // The morsel size is kept, so results stay partition-identical; only the
    // parent's own regions (and derived tables in FROM) parallelize.
    let opts = ExecOptions { threads: 1, ..opts };
    // Subqueries are never traced: a correlated one re-runs per outer row,
    // and a span per evaluation would swamp the trace with thousands of
    // entries while timing regions the parent's spans already cover.
    move |q: &Query, outer: Option<(&RowSchema, &[Value])>| {
        let mut local_stats = ExecStats::default();
        let rs = execute_inner(db, q, params, outer, &mut local_stats, &opts, &mut None)?;
        Ok(rs.rows)
    }
}

/// Fraction of a table a probed conjunct may be estimated to select before a
/// full vectorized scan is considered cheaper than gathering and intersecting
/// postings. Probing is only a win when the seed it produces is small: every
/// compiled predicate still runs over the seeded rows, so a low-selectivity
/// probe pays the posting fetch *and* nearly the whole column pass.
const INDEX_SELECTIVITY_CROSSOVER: f64 = 0.25;

/// Assumed selectivity for a range whose bounds don't interpolate numerically
/// (strings, bytes): above the crossover, so such ranges scan by default.
const DEFAULT_RANGE_SELECTIVITY: f64 = 0.3;

/// Numeric interpolation point of a value, for range-width estimation.
fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        Value::Date(d) => Some(f64::from(*d)),
        _ => None,
    }
}

/// Estimated fraction of rows a probe selects, from the table's memoized
/// column statistics (`distinct_count` for equality, zone-fold `min_max` for
/// ranges). Estimates assume uniformity — good enough to pick an access path,
/// and a wrong pick only costs speed, never correctness.
fn probe_selectivity(table: &Table, col: usize, op: &ProbeOp) -> f64 {
    match op {
        ProbeOp::Eq(_) => 1.0 / table.distinct_count(col).max(1) as f64,
        ProbeOp::InList(values) => values.len() as f64 / table.distinct_count(col).max(1) as f64,
        ProbeOp::Range { low, high } => {
            let Some((min, max)) = table.min_max(col) else {
                return 0.0; // empty or all-NULL column: nothing to fetch
            };
            let (Some(lo_col), Some(hi_col)) = (value_as_f64(&min), value_as_f64(&max)) else {
                return DEFAULT_RANGE_SELECTIVITY;
            };
            let width = hi_col - lo_col;
            if width <= 0.0 {
                return 1.0; // single-valued column: a range can't narrow it
            }
            let interp = |bound: &Option<(Value, bool)>, unbounded: f64| match bound {
                None => Some(unbounded),
                Some((v, _)) => value_as_f64(v),
            };
            match (interp(low, lo_col), interp(high, hi_col)) {
                (Some(lo), Some(hi)) => ((hi.min(hi_col) - lo.max(lo_col)) / width).clamp(0.0, 1.0),
                _ => DEFAULT_RANGE_SELECTIVITY,
            }
        }
    }
}

/// Derives index probes from one scan's compiled conjuncts.
///
/// Each probe's postings are a *superset* of the rows its conjunct accepts
/// (minus NULLs — a comparison predicate is never true of NULL), so seeding
/// the scan's selection vector with their intersection and still running every
/// compiled predicate over the seed leaves results byte-identical to the full
/// scan. The probe only narrows work; it never decides membership.
///
/// A probe is planned only when its estimated selectivity clears
/// [`INDEX_SELECTIVITY_CROSSOVER`] — the index is an access path the
/// statistics must justify, not a default.
fn plan_index_probes(
    table: &Table,
    schema: &RowSchema,
    predicates: &[ColumnarPredicate],
    opts: &ExecOptions,
) -> Vec<IndexProbe> {
    if opts.index_mode == monomi_store::IndexMode::Off || !table.has_segment_indexes() {
        return Vec::new();
    }
    let mut candidates = Vec::new();
    for pred in predicates {
        collect_probe_candidates(pred, &mut candidates);
    }
    // Range conjuncts on the same column merge into one two-sided probe
    // before the selectivity gate: in the classic Q6 shape
    // `d >= lo AND d < hi` each half keeps ~half the table and fails the
    // crossover alone, while together they select a narrow window. Each
    // conjunct's range is a superset of the rows it accepts, so their
    // intersection stays a superset of the rows satisfying all of them.
    let mut probes = Vec::new();
    let mut ranges: Vec<(usize, ProbeOp)> = Vec::new();
    for (col, op) in candidates {
        match op {
            ProbeOp::Range { low, high } => match ranges.iter_mut().find(|(c, _)| *c == col) {
                Some((
                    _,
                    ProbeOp::Range {
                        low: merged_low,
                        high: merged_high,
                    },
                )) => {
                    *merged_low = tighter_bound(merged_low.take(), low, true);
                    *merged_high = tighter_bound(merged_high.take(), high, false);
                }
                _ => ranges.push((col, ProbeOp::Range { low, high })),
            },
            other => {
                if probe_selectivity(table, col, &other) <= INDEX_SELECTIVITY_CROSSOVER {
                    probes.push(IndexProbe {
                        column: schema.columns[col].1.clone(),
                        op: other,
                    });
                }
            }
        }
    }
    for (col, op) in ranges {
        if probe_selectivity(table, col, &op) <= INDEX_SELECTIVITY_CROSSOVER {
            probes.push(IndexProbe {
                column: schema.columns[col].1.clone(),
                op,
            });
        }
    }
    probes
}

/// The tighter of two optional range bounds: the larger lower bound when
/// `lower` (else the smaller upper bound), `None` meaning unbounded. On equal
/// values the exclusive flag wins — a row must satisfy *both* conjuncts.
fn tighter_bound(
    a: Option<(Value, bool)>,
    b: Option<(Value, bool)>,
    lower: bool,
) -> Option<(Value, bool)> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some((va, ia)), Some((vb, ib))) => Some(match va.compare(&vb) {
            std::cmp::Ordering::Equal => (va, ia && ib),
            std::cmp::Ordering::Less => {
                if lower {
                    (vb, ib)
                } else {
                    (va, ia)
                }
            }
            std::cmp::Ordering::Greater => {
                if lower {
                    (va, ia)
                } else {
                    (vb, ib)
                }
            }
        }),
    }
}

/// Collects the probe candidate (if any) of one compiled predicate,
/// recursing into ANDs (every branch must hold, so each branch's probe
/// stands on its own). ORs, negations, LIKE, and NULL tests never probe:
/// their row sets aren't a single sorted-key lookup, and the fallback scan
/// answers them exactly. Candidates are ungated — the caller merges
/// same-column ranges and applies the selectivity crossover.
fn collect_probe_candidates(pred: &ColumnarPredicate, out: &mut Vec<(usize, ProbeOp)>) {
    let planned: Option<(usize, ProbeOp)> = match pred {
        ColumnarPredicate::And(children) => {
            for child in children {
                collect_probe_candidates(child, out);
            }
            None
        }
        ColumnarPredicate::CmpConst { col, op, value } if !value.is_null() => {
            let bound = |inclusive: bool| Some((value.clone(), inclusive));
            match op {
                BinaryOp::Eq => Some((*col, ProbeOp::Eq(value.clone()))),
                BinaryOp::Lt => Some((
                    *col,
                    ProbeOp::Range {
                        low: None,
                        high: bound(false),
                    },
                )),
                BinaryOp::LtEq => Some((
                    *col,
                    ProbeOp::Range {
                        low: None,
                        high: bound(true),
                    },
                )),
                BinaryOp::Gt => Some((
                    *col,
                    ProbeOp::Range {
                        low: bound(false),
                        high: None,
                    },
                )),
                BinaryOp::GtEq => Some((
                    *col,
                    ProbeOp::Range {
                        low: bound(true),
                        high: None,
                    },
                )),
                _ => None,
            }
        }
        ColumnarPredicate::BetweenConst {
            col,
            low,
            high,
            negated: false,
        } if !low.is_null() && !high.is_null() => Some((
            *col,
            ProbeOp::Range {
                low: Some((low.clone(), true)),
                high: Some((high.clone(), true)),
            },
        )),
        ColumnarPredicate::InListConst {
            col,
            values,
            negated: false,
        } => {
            // NULL list entries never match a row; dropping them keeps the
            // probe a superset (an all-NULL list legitimately selects
            // nothing, and the empty posting intersection prunes the
            // segment outright).
            let nonnull: Vec<Value> = values.iter().filter(|v| !v.is_null()).cloned().collect();
            Some((*col, ProbeOp::InList(nonnull)))
        }
        _ => None,
    };
    if let Some(candidate) = planned {
        out.push(candidate);
    }
}

#[allow(clippy::too_many_arguments)]
fn build_from_relation(
    db: &Database,
    query: &Query,
    where_conjuncts: &[Expr],
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    stats: &mut ExecStats,
    opts: &ExecOptions,
    spans: &mut Option<Vec<Span>>,
) -> Result<Relation, EngineError> {
    if query.from.is_empty() {
        // SELECT without FROM: a single empty row.
        return Ok(Relation {
            schema: RowSchema::default(),
            rows: vec![vec![]],
        });
    }

    let subquery_fn = make_subquery_fn(db, params, *opts);

    // Load each FROM entry. Derived tables execute eagerly (their schema is
    // only known from their result); base tables are *not* materialized yet —
    // the morsel-parallel scan below filters them in columnar form first.
    enum Loaded<'t> {
        Scan { table: &'t Table, binding: String },
        Rows(Relation),
    }
    let mut loaded: Vec<Loaded> = Vec::with_capacity(query.from.len());
    let mut full_schemas: Vec<RowSchema> = Vec::with_capacity(query.from.len());
    for table_ref in &query.from {
        match table_ref {
            TableRef::Table { name, alias } => {
                let table = db
                    .table(name)
                    .ok_or_else(|| EngineError::new(format!("unknown table {name}")))?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                full_schemas.push(RowSchema::new(
                    table
                        .schema()
                        .columns
                        .iter()
                        .map(|c| (Some(binding.clone()), c.name.clone()))
                        .collect(),
                ));
                loaded.push(Loaded::Scan { table, binding });
            }
            TableRef::Subquery { query: sub, alias } => {
                // Derived tables share the parent's span sink: their operator
                // spans precede the outer scans' in the flat list, matching
                // execution order.
                let rs = execute_inner(db, sub, params, outer, stats, opts, spans)?;
                let schema = RowSchema::new(
                    rs.columns
                        .iter()
                        .map(|c| (Some(alias.clone()), c.clone()))
                        .collect(),
                );
                full_schemas.push(schema.clone());
                loaded.push(Loaded::Rows(Relation {
                    schema,
                    rows: rs.rows,
                }));
            }
        }
    }

    // Scan → Filter: evaluate each scan's single-table conjuncts over column
    // slices (selection vectors per morsel, no row materialization), then
    // late-materialize only the surviving rows' referenced columns.
    let referenced = collect_referenced_columns(query);
    let mut used = vec![false; where_conjuncts.len()];
    let mut relations: Vec<Relation> = Vec::with_capacity(loaded.len());
    for (ri, entry) in loaded.into_iter().enumerate() {
        match entry {
            Loaded::Rows(rel) => relations.push(rel),
            Loaded::Scan { table, binding } => {
                let schema = &full_schemas[ri];
                let other_schemas: Vec<&RowSchema> = full_schemas
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ri)
                    .map(|(_, s)| s)
                    .collect();
                let ctx = EvalContext {
                    params,
                    aggregates: None,
                    subquery: None,
                    outer,
                };
                let mut predicates: Vec<ColumnarPredicate> = Vec::new();
                for (ci, conj) in where_conjuncts.iter().enumerate() {
                    if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                        continue;
                    }
                    if refs_resolvable(conj, schema)
                        && !refs_resolvable_elsewhere(conj, &other_schemas)
                    {
                        // Conjunct references only this scan: compile it for
                        // direct evaluation over the column slices.
                        predicates.push(compile_predicate(conj, schema, &ctx));
                        used[ci] = true;
                    }
                }

                // Late materialization: survivors only, referenced columns
                // only. Conjuncts this (or an earlier) scan consumed never run
                // again, so only the still-pending ones pin extra columns
                // (join keys, subquery-bearing predicates, cross-relation
                // residuals).
                let mut scan_refs = referenced.clone();
                for (ci, conj) in where_conjuncts.iter().enumerate() {
                    if !used[ci] {
                        collect_expr_refs(conj, &mut scan_refs);
                    }
                }
                let keep = scan_refs.pruned_indices(&binding, schema);
                let pruned_schema = RowSchema::new(
                    keep.iter()
                        .map(|&c| schema.columns[c].clone())
                        .collect::<Vec<_>>(),
                );
                let probes = plan_index_probes(table, schema, &predicates, opts);
                let scan = ScanFilter {
                    table,
                    schema,
                    predicates: &predicates,
                    keep: &keep,
                    params,
                    outer,
                    probes: &probes,
                    index_mode: opts.index_mode,
                };
                let (rows, scan_stats) = timed(
                    spans,
                    || format!("ScanFilter({binding})"),
                    |(rows, _): &(Vec<Vec<Value>>, ExecStats)| rows.len() as u64,
                    || scan.execute(opts),
                )?;
                stats.merge(&scan_stats);
                relations.push(Relation {
                    schema: pruned_schema,
                    rows,
                });
            }
        }
    }

    // Pre-filter derived-table relations with the conjuncts they alone can
    // answer (base-table conjuncts were consumed by the vectorized scans).
    let all_schemas: Vec<RowSchema> = relations.iter().map(|r| r.schema.clone()).collect();
    for (ri, rel) in relations.iter_mut().enumerate() {
        let other_schemas: Vec<&RowSchema> = all_schemas
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ri)
            .map(|(_, s)| s)
            .collect();
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                continue;
            }
            if refs_resolvable(conj, &rel.schema)
                && !refs_resolvable_elsewhere(conj, &other_schemas)
            {
                // Conjunct references only this relation: apply it now.
                let filter = RowFilter {
                    schema: &rel.schema,
                    predicate: conj,
                    params,
                    outer,
                };
                let (rows, metrics) =
                    filter.execute(std::mem::take(&mut rel.rows), opts, Some(&subquery_fn))?;
                stats.note_parallel(&metrics);
                rel.rows = rows;
                used[ci] = true;
            }
        }
    }

    // Join the relations left to right.
    let mut acc = relations.remove(0);
    while !relations.is_empty() {
        // Prefer a relation with an equi-join conjunct against the accumulator.
        let mut chosen = 0usize;
        let mut join_keys: Vec<(Expr, Expr)> = Vec::new();
        'search: for (idx, rel) in relations.iter().enumerate() {
            let keys = find_equi_join_keys(where_conjuncts, &used, &acc.schema, &rel.schema);
            if !keys.is_empty() {
                chosen = idx;
                join_keys = keys;
                break 'search;
            }
        }
        let right = relations.remove(chosen);
        // Mark the conjuncts we are about to consume as used.
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] {
                continue;
            }
            if let Some((l, r)) = as_equi_join(conj) {
                let consumed = join_keys
                    .iter()
                    .any(|(jl, jr)| (*jl == l && *jr == r) || (*jl == r && *jr == l));
                if consumed {
                    used[ci] = true;
                }
            }
        }
        acc = if join_keys.is_empty() {
            CrossJoin::execute(&acc, &right)
        } else {
            let join = HashJoin {
                keys: &join_keys,
                params,
                outer,
            };
            let (joined, metrics) = timed(
                spans,
                || "HashJoin".to_string(),
                |(rel, _): &(Relation, ParallelMetrics)| rel.rows.len() as u64,
                || join.execute(&acc, &right, opts),
            )?;
            stats.note_parallel(&metrics);
            joined
        };

        // Apply any remaining conjuncts that are now fully resolvable (cheap
        // early filtering between joins).
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                continue;
            }
            if refs_resolvable(conj, &acc.schema) {
                let filter = RowFilter {
                    schema: &acc.schema,
                    predicate: conj,
                    params,
                    outer,
                };
                let (rows, metrics) =
                    filter.execute(std::mem::take(&mut acc.rows), opts, Some(&subquery_fn))?;
                stats.note_parallel(&metrics);
                acc.rows = rows;
                used[ci] = true;
            }
        }
    }

    // Apply all remaining conjuncts (including those with subqueries).
    for (ci, conj) in where_conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        let filter = RowFilter {
            schema: &acc.schema,
            predicate: conj,
            params,
            outer,
        };
        let (rows, metrics) =
            filter.execute(std::mem::take(&mut acc.rows), opts, Some(&subquery_fn))?;
        stats.note_parallel(&metrics);
        acc.rows = rows;
        used[ci] = true;
    }

    Ok(acc)
}

/// Column references a query may resolve against its base-table scans, used
/// to prune unreferenced columns at materialization time.
#[derive(Clone)]
struct ReferencedColumns {
    refs: Vec<ColumnRef>,
    /// A `SELECT *` appears somewhere: keep every column (conservative — a
    /// star inside a nested subquery disables pruning for the whole query).
    star: bool,
}

impl ReferencedColumns {
    /// Indices of the scan's columns the query may reference. A qualified
    /// reference must name this scan's binding; an unqualified one matches by
    /// column name alone (conservative under ambiguity).
    fn pruned_indices(&self, binding: &str, schema: &RowSchema) -> Vec<usize> {
        if self.star {
            return (0..schema.len()).collect();
        }
        (0..schema.len())
            .filter(|&i| {
                let (_, name) = &schema.columns[i];
                self.refs.iter().any(|r| {
                    r.column.eq_ignore_ascii_case(name)
                        && r.table
                            .as_deref()
                            .is_none_or(|t| t.eq_ignore_ascii_case(binding))
                })
            })
            .collect()
    }
}

/// Collects every column reference the query can make against its FROM
/// relations *outside its own WHERE clause*, descending into subqueries
/// (correlated references resolve against the enclosing query's scans, so
/// they count too). The top-level WHERE conjuncts are deliberately excluded:
/// a conjunct consumed by the vectorized scan never runs again, so columns it
/// alone references need not be materialized — each scan adds back the refs
/// of the conjuncts still pending when it materializes.
fn collect_referenced_columns(query: &Query) -> ReferencedColumns {
    let mut out = ReferencedColumns {
        refs: Vec::new(),
        star: false,
    };
    collect_query_refs(query, false, &mut out);
    out
}

fn collect_query_refs(query: &Query, include_where: bool, out: &mut ReferencedColumns) {
    for p in &query.projections {
        collect_expr_refs(&p.expr, out);
    }
    if include_where {
        if let Some(w) = &query.where_clause {
            collect_expr_refs(w, out);
        }
    }
    for g in &query.group_by {
        collect_expr_refs(g, out);
    }
    if let Some(h) = &query.having {
        collect_expr_refs(h, out);
    }
    for o in &query.order_by {
        collect_expr_refs(&o.expr, out);
    }
    for t in &query.from {
        if let TableRef::Subquery { query: sub, .. } = t {
            collect_query_refs(sub, true, out);
        }
    }
}

fn collect_expr_refs(expr: &Expr, out: &mut ReferencedColumns) {
    expr.walk(&mut |node| match node {
        Expr::Column(c) => {
            if c.column == "*" {
                out.star = true;
            } else {
                out.refs.push(c.clone());
            }
        }
        // `Expr::walk` does not descend into subqueries; their (possibly
        // correlated) references still pin columns of the outer scans. Their
        // WHERE clauses count: they are evaluated row-at-a-time against the
        // outer query's materialized rows, not consumed by the outer scan.
        Expr::ScalarSubquery(q) => collect_query_refs(q, true, out),
        Expr::InSubquery { subquery, .. } => collect_query_refs(subquery, true, out),
        Expr::Exists { subquery, .. } => collect_query_refs(subquery, true, out),
        _ => {}
    });
}

/// True if every column reference in `expr` resolves in `schema`.
fn refs_resolvable(expr: &Expr, schema: &RowSchema) -> bool {
    expr.column_refs()
        .iter()
        .all(|c| schema.resolve(c).is_some())
}

/// True if any column reference in `expr` resolves in one of the other schemas
/// with a qualified name, which would make single-relation pre-filtering wrong.
fn refs_resolvable_elsewhere(expr: &Expr, others: &[&RowSchema]) -> bool {
    expr.column_refs()
        .iter()
        .any(|c| c.table.is_some() && others.iter().any(|s| s.resolve(c).is_some()))
}

/// If the conjunct is `col_expr = col_expr`, returns the two sides.
fn as_equi_join(conj: &Expr) -> Option<(Expr, Expr)> {
    if let Expr::BinaryOp {
        left,
        op: BinaryOp::Eq,
        right,
    } = conj
    {
        let left_cols = left.column_refs();
        let right_cols = right.column_refs();
        if !left_cols.is_empty() && !right_cols.is_empty() {
            return Some((*left.clone(), *right.clone()));
        }
    }
    None
}

/// Finds equality conjuncts joining the accumulator schema to the right schema.
/// Returns pairs `(left_key_expr, right_key_expr)` oriented accumulator-first.
fn find_equi_join_keys(
    conjuncts: &[Expr],
    used: &[bool],
    left: &RowSchema,
    right: &RowSchema,
) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for (ci, conj) in conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        if let Some((a, b)) = as_equi_join(conj) {
            let a_left = refs_resolvable(&a, left);
            let a_right = refs_resolvable(&a, right);
            let b_left = refs_resolvable(&b, left);
            let b_right = refs_resolvable(&b, right);
            if a_left && b_right && !(a_right && b_left) {
                keys.push((a, b));
            } else if b_left && a_right {
                keys.push((b, a));
            }
        }
    }
    keys
}

/// Collects every aggregate-like expression (true aggregates and the encrypted
/// aggregation UDFs) appearing in the query's post-grouping clauses.
fn collect_aggregates(query: &Query) -> Vec<Expr> {
    let mut found: Vec<Expr> = Vec::new();
    let mut push_from = |e: &Expr| {
        e.walk(&mut |node| {
            let is_agg = matches!(node, Expr::Aggregate { .. })
                || matches!(node, Expr::Function { name, .. } if is_udf_aggregate(name));
            if is_agg && !found.contains(node) {
                found.push(node.clone());
            }
        });
    };
    for p in &query.projections {
        push_from(&p.expr);
    }
    if let Some(h) = &query.having {
        push_from(h);
    }
    for o in &query.order_by {
        push_from(&o.expr);
    }
    found
}

/// UDF aggregates the encrypted execution path uses.
pub fn is_udf_aggregate(name: &str) -> bool {
    matches!(name, "paillier_sum" | "group_concat")
}

#[allow(clippy::too_many_arguments)]
fn aggregate_and_project(
    db: &Database,
    query: &Query,
    relation: &Relation,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    stats: &mut ExecStats,
    opts: &ExecOptions,
    spans: &mut Option<Vec<Span>>,
) -> Result<ProjectedRows, EngineError> {
    let subquery_fn = make_subquery_fn(db, params, *opts);
    let agg_exprs = collect_aggregates(query);
    let specs: Vec<AggSpec> = agg_exprs.iter().map(AggSpec::of).collect();

    // PartialAggregate → Merge: morsel-partitioned grouping with thread-local
    // aggregation states, merged in partition order (bit-identical to the
    // serial first-encounter accumulation at any thread count).
    let aggregate = MorselAggregate {
        relation,
        group_by: &query.group_by,
        specs: &specs,
        db,
        params,
        outer,
    };
    let (mut groups, metrics) = timed(
        spans,
        || "MorselAggregate".to_string(),
        |(groups, _): &(Vec<GroupEntry>, ParallelMetrics)| groups.len() as u64,
        || aggregate.execute(opts, Some(&subquery_fn)),
    )?;
    stats.note_parallel(&metrics);

    // A global aggregate over an empty input still produces one group.
    if groups.is_empty() && query.group_by.is_empty() {
        groups.push(GroupEntry {
            key: Vec::new(),
            rep_row: None,
            states: specs
                .iter()
                .map(|s| AggState::new(&s.expr, db))
                .collect::<Result<Vec<_>, _>>()?,
        });
    }

    let mut columns = Vec::new();
    for (i, p) in query.projections.iter().enumerate() {
        columns.push(p.output_name(i));
    }

    let mut rows_out = Vec::new();
    let mut sort_keys_out = Vec::new();
    for group in groups {
        // Finished aggregate values for this group, keyed by expression node.
        let mut agg_values: HashMap<Expr, Value> = HashMap::new();
        for (spec, state) in specs.iter().zip(group.states) {
            agg_values.insert(spec.expr.clone(), state.finish());
        }

        // Representative row for evaluating group-key expressions in
        // projections / HAVING / ORDER BY.
        let representative: Vec<Value> = group
            .rep_row
            .map(|i| relation.rows[i].clone())
            .unwrap_or_else(|| vec![Value::Null; relation.schema.len()]);

        let ctx = EvalContext {
            params,
            aggregates: Some(&agg_values),
            subquery: Some(&subquery_fn),
            outer,
        };

        // HAVING.
        if let Some(having) = &query.having {
            let keep = eval(having, &relation.schema, &representative, &ctx)?
                .as_bool()
                .unwrap_or(false);
            if !keep {
                continue;
            }
        }

        // Projections.
        let mut out_row = Vec::with_capacity(query.projections.len());
        for p in &query.projections {
            out_row.push(eval(&p.expr, &relation.schema, &representative, &ctx)?);
        }

        // ORDER BY keys: aliases refer to projection outputs.
        let mut keys = Vec::with_capacity(query.order_by.len());
        for ob in &query.order_by {
            keys.push(resolve_order_key(
                ob,
                query,
                &out_row,
                &relation.schema,
                &representative,
                &ctx,
            )?);
        }

        rows_out.push(out_row);
        sort_keys_out.push(keys);
    }

    Ok(ProjectedRows {
        columns,
        rows: rows_out,
        sort_keys: sort_keys_out,
    })
}

fn project_rows(
    query: &Query,
    relation: &Relation,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    subquery_fn: &impl Fn(
        &Query,
        Option<(&RowSchema, &[Value])>,
    ) -> Result<Vec<Vec<Value>>, EngineError>,
) -> Result<ProjectedRows, EngineError> {
    let mut columns = Vec::new();
    let star = query
        .projections
        .iter()
        .any(|p| matches!(&p.expr, Expr::Column(c) if c.column == "*"));
    if star {
        for (_, name) in &relation.schema.columns {
            columns.push(name.clone());
        }
    } else {
        for (i, p) in query.projections.iter().enumerate() {
            columns.push(p.output_name(i));
        }
    }

    let mut rows_out = Vec::with_capacity(relation.rows.len());
    let mut sort_keys_out = Vec::with_capacity(relation.rows.len());
    for row in &relation.rows {
        let ctx = EvalContext {
            params,
            aggregates: None,
            subquery: Some(subquery_fn),
            outer,
        };
        let out_row = if star {
            row.clone()
        } else {
            query
                .projections
                .iter()
                .map(|p| eval(&p.expr, &relation.schema, row, &ctx))
                .collect::<Result<Vec<_>, _>>()?
        };
        let mut keys = Vec::with_capacity(query.order_by.len());
        for ob in &query.order_by {
            keys.push(resolve_order_key(
                ob,
                query,
                &out_row,
                &relation.schema,
                row,
                &ctx,
            )?);
        }
        rows_out.push(out_row);
        sort_keys_out.push(keys);
    }
    Ok(ProjectedRows {
        columns,
        rows: rows_out,
        sort_keys: sort_keys_out,
    })
}

/// Resolves an ORDER BY key: projection aliases and positions take precedence,
/// otherwise the expression is evaluated against the source row.
fn resolve_order_key(
    ob: &OrderByItem,
    query: &Query,
    out_row: &[Value],
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    if let Expr::Column(c) = &ob.expr {
        if c.table.is_none() {
            if let Some(pos) = query.projections.iter().position(|p| {
                p.alias
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(&c.column))
            }) {
                return Ok(out_row[pos].clone());
            }
        }
    }
    if let Expr::Literal(Literal::Number(n)) = &ob.expr {
        if let Ok(pos) = n.parse::<usize>() {
            if pos >= 1 && pos <= out_row.len() {
                return Ok(out_row[pos - 1].clone());
            }
        }
    }
    // The expression may itself be (or contain) one of the projection
    // expressions; evaluate directly.
    if let Some(pos) = query.projections.iter().position(|p| p.expr == ob.expr) {
        return Ok(out_row[pos].clone());
    }
    eval(&ob.expr, schema, row, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_stats_merge_sums_counters_and_keeps_selectivity_consistent() {
        // Two per-thread partials of one scan: 60+40 rows scanned, 15+10
        // survivors.
        let a = ExecStats {
            rows_scanned: 60,
            bytes_scanned: 600,
            rows_materialized: 15,
            bytes_materialized: 120,
            result_rows: 0,
            result_bytes: 0,
            segments_read: 2,
            segments_pruned: 1,
            index_probes: 2,
            index_rows_fetched: 30,
            postings_bytes_read: 240,
            morsels: 3,
            threads_used: 4,
            worker_busy_nanos: 1_000,
            parallel_wall_nanos: 400,
        };
        let b = ExecStats {
            rows_scanned: 40,
            bytes_scanned: 400,
            rows_materialized: 10,
            bytes_materialized: 80,
            result_rows: 25,
            result_bytes: 200,
            segments_read: 1,
            segments_pruned: 3,
            index_probes: 1,
            index_rows_fetched: 10,
            postings_bytes_read: 60,
            morsels: 2,
            threads_used: 2,
            worker_busy_nanos: 500,
            parallel_wall_nanos: 300,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.rows_scanned, 100);
        assert_eq!(merged.bytes_scanned, 1_000);
        assert_eq!(merged.rows_materialized, 25);
        assert_eq!(merged.bytes_materialized, 200);
        assert_eq!(merged.result_rows, 25);
        assert_eq!(merged.result_bytes, 200);
        assert_eq!(merged.segments_read, 3);
        assert_eq!(merged.segments_pruned, 4);
        assert_eq!(merged.index_probes, 3);
        assert_eq!(merged.index_rows_fetched, 40);
        assert_eq!(merged.postings_bytes_read, 300);
        assert_eq!(merged.morsels, 5);
        assert_eq!(merged.threads_used, 4);
        assert_eq!(merged.worker_busy_nanos, 1_500);
        assert_eq!(merged.parallel_wall_nanos, 700);
        // Selectivity over the merged totals: 25/100.
        assert!((merged.scan_selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exec_stats_merge_into_empty_is_identity() {
        let partial = ExecStats {
            rows_scanned: 7,
            bytes_scanned: 70,
            rows_materialized: 3,
            bytes_materialized: 24,
            result_rows: 3,
            result_bytes: 24,
            segments_read: 0,
            segments_pruned: 0,
            index_probes: 0,
            index_rows_fetched: 0,
            postings_bytes_read: 0,
            morsels: 1,
            threads_used: 1,
            worker_busy_nanos: 10,
            parallel_wall_nanos: 10,
        };
        let mut merged = ExecStats::default();
        merged.merge(&partial);
        assert_eq!(merged.rows_scanned, partial.rows_scanned);
        assert_eq!(merged.bytes_scanned, partial.bytes_scanned);
        assert_eq!(merged.rows_materialized, partial.rows_materialized);
        assert_eq!(merged.bytes_materialized, partial.bytes_materialized);
        assert!((merged.scan_selectivity() - partial.scan_selectivity()).abs() < 1e-12);
        // An empty stats block is all-1.0 selectivity by convention.
        assert!((ExecStats::default().scan_selectivity() - 1.0).abs() < f64::EPSILON);
    }
}
