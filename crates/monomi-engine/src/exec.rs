//! The query executor: vectorized columnar scans feeding hash join / hash
//! aggregate evaluation of the analytical SQL subset.
//!
//! Base-table scans are *vectorized*: single-table WHERE conjuncts are
//! compiled ([`crate::expr::compile_predicate`]) and evaluated directly over
//! the stored column slices, narrowing a
//! [`SelectionVector`](crate::storage::SelectionVector) of surviving row
//! indices. Only after every scan-level predicate has run are the survivors
//! materialized — and only the columns the query actually references (late
//! materialization). The materialized relation then flows through the
//! row-oriented tail: hash join on equality predicates discovered in the WHERE
//! clause, hash aggregate, HAVING, projection, sort, and limit. Correlated
//! and uncorrelated subqueries are evaluated through a recursive callback.
//!
//! Encrypted execution uses exactly the same code path — the rewritten queries
//! produced by `monomi-core` reference encrypted columns and the engine's
//! encrypted aggregation UDFs (`paillier_sum`, `group_concat`), which are
//! handled in the aggregation phase.

use crate::database::{Database, PaillierServerCtx};
use crate::expr::{apply_predicate, compile_predicate, eval, EvalContext, RowSchema};
use crate::storage::{SelectionVector, Table};
use crate::value::Value;
use crate::EngineError;
use monomi_math::{BigUint, MontScratch};
use monomi_sql::ast::*;
use std::collections::HashMap;
use std::sync::Arc;

/// A query result: named columns and materialized rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Total serialized size of the result in bytes (drives the network
    /// transfer model of the split-execution cost estimator).
    pub fn size_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
            .sum()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Counters describing the work the "server" did for one query.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Bytes read from base tables.
    pub bytes_scanned: u64,
    /// Rows surviving the scan-level predicates and materialized into row
    /// form (the input to joins/aggregation). With no scan predicates this
    /// equals `rows_scanned`.
    pub rows_materialized: u64,
    /// Bytes of the values actually materialized after filtering and column
    /// pruning — the post-filter scan output the split-execution cost model
    /// uses for selectivity-aware scan costs (vs. `bytes_scanned`, which
    /// counts everything the scan read).
    pub bytes_materialized: u64,
    /// Rows produced.
    pub result_rows: u64,
    /// Bytes produced.
    pub result_bytes: u64,
}

impl ExecStats {
    /// Observed fraction of scanned base-table rows that survived the
    /// scan-level predicates (1.0 when nothing was scanned).
    pub fn scan_selectivity(&self) -> f64 {
        if self.rows_scanned == 0 {
            1.0
        } else {
            self.rows_materialized as f64 / self.rows_scanned as f64
        }
    }
}

/// An intermediate relation during execution.
#[derive(Clone, Debug)]
struct Relation {
    schema: RowSchema,
    rows: Vec<Vec<Value>>,
}

/// Executes a query against a database.
pub fn execute_query(
    db: &Database,
    query: &Query,
    params: &[Value],
) -> Result<(ResultSet, ExecStats), EngineError> {
    let mut stats = ExecStats::default();
    let result = execute_inner(db, query, params, None, &mut stats)?;
    stats.result_rows = result.rows.len() as u64;
    stats.result_bytes = result.size_bytes() as u64;
    Ok((result, stats))
}

fn execute_inner(
    db: &Database,
    query: &Query,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    stats: &mut ExecStats,
) -> Result<ResultSet, EngineError> {
    // 1. Build the FROM relation (scans, derived tables, joins, filters).
    let where_conjuncts: Vec<Expr> = query
        .where_clause
        .as_ref()
        .map(|w| w.split_conjuncts())
        .unwrap_or_default();
    let relation = build_from_relation(db, query, &where_conjuncts, params, outer, stats)?;

    // 2. Aggregate or plain projection. UDF aggregates (paillier_sum,
    // group_concat) make a query an aggregation even though the parser does
    // not know they aggregate.
    let is_aggregate = query.is_aggregate_query() || !collect_aggregates(query).is_empty();
    let subquery_fn = make_subquery_fn(db, params);
    let mut output = if is_aggregate {
        aggregate_and_project(db, query, &relation, params, outer, stats)?
    } else {
        project_rows(query, &relation, params, outer, &subquery_fn)?
    };

    // 3. DISTINCT.
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        let mut kept_rows = Vec::new();
        let mut kept_keys = Vec::new();
        for (row, key) in output.rows.into_iter().zip(output.sort_keys) {
            if seen.insert(row.clone()) {
                kept_rows.push(row);
                kept_keys.push(key);
            }
        }
        output.rows = kept_rows;
        output.sort_keys = kept_keys;
    }

    // 4. ORDER BY.
    if !query.order_by.is_empty() {
        let mut indexed: Vec<(Vec<Value>, Vec<Value>)> =
            output.sort_keys.into_iter().zip(output.rows).collect();
        indexed.sort_by(|(ka, _), (kb, _)| {
            for (i, ob) in query.order_by.iter().enumerate() {
                let ord = ka[i].compare(&kb[i]);
                let ord = if ob.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        output.rows = indexed.into_iter().map(|(_, r)| r).collect();
        output.sort_keys = Vec::new();
    }

    // 5. LIMIT.
    if let Some(limit) = query.limit {
        output.rows.truncate(limit as usize);
    }

    Ok(ResultSet {
        columns: output.columns,
        rows: output.rows,
    })
}

/// Rows plus the pre-computed ORDER BY keys for each row.
struct ProjectedRows {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
    sort_keys: Vec<Vec<Value>>,
}

/// An outer row visible to a correlated subquery: its schema and values.
type OuterRow<'s, 'v> = Option<(&'s RowSchema, &'v [Value])>;

fn make_subquery_fn<'a>(
    db: &'a Database,
    params: &'a [Value],
) -> impl Fn(&Query, OuterRow<'_, '_>) -> Result<Vec<Vec<Value>>, EngineError> + 'a {
    // Subqueries track their scan work in a local counter; the parent query's
    // own scans dominate the statistics we report.
    move |q: &Query, outer: Option<(&RowSchema, &[Value])>| {
        let mut local_stats = ExecStats::default();
        let rs = execute_inner(db, q, params, outer, &mut local_stats)?;
        Ok(rs.rows)
    }
}

fn build_from_relation(
    db: &Database,
    query: &Query,
    where_conjuncts: &[Expr],
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    stats: &mut ExecStats,
) -> Result<Relation, EngineError> {
    if query.from.is_empty() {
        // SELECT without FROM: a single empty row.
        return Ok(Relation {
            schema: RowSchema::default(),
            rows: vec![vec![]],
        });
    }

    // Load each FROM entry. Derived tables execute eagerly (their schema is
    // only known from their result); base tables are *not* materialized yet —
    // the vectorized scan below filters them in columnar form first.
    enum Loaded<'t> {
        Scan { table: &'t Table, binding: String },
        Rows(Relation),
    }
    let mut loaded: Vec<Loaded> = Vec::with_capacity(query.from.len());
    let mut full_schemas: Vec<RowSchema> = Vec::with_capacity(query.from.len());
    for table_ref in &query.from {
        match table_ref {
            TableRef::Table { name, alias } => {
                let table = db
                    .table(name)
                    .ok_or_else(|| EngineError::new(format!("unknown table {name}")))?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                full_schemas.push(RowSchema::new(
                    table
                        .schema()
                        .columns
                        .iter()
                        .map(|c| (Some(binding.clone()), c.name.clone()))
                        .collect(),
                ));
                loaded.push(Loaded::Scan { table, binding });
            }
            TableRef::Subquery { query: sub, alias } => {
                let rs = execute_inner(db, sub, params, outer, stats)?;
                let schema = RowSchema::new(
                    rs.columns
                        .iter()
                        .map(|c| (Some(alias.clone()), c.clone()))
                        .collect(),
                );
                full_schemas.push(schema.clone());
                loaded.push(Loaded::Rows(Relation {
                    schema,
                    rows: rs.rows,
                }));
            }
        }
    }

    // Vectorized base-table scans: evaluate each scan's single-table conjuncts
    // over column slices (selection vectors, no row materialization), then
    // late-materialize only the surviving rows' referenced columns.
    let referenced = collect_referenced_columns(query);
    let mut used = vec![false; where_conjuncts.len()];
    let mut relations: Vec<Relation> = Vec::with_capacity(loaded.len());
    for (ri, entry) in loaded.into_iter().enumerate() {
        match entry {
            Loaded::Rows(rel) => relations.push(rel),
            Loaded::Scan { table, binding } => {
                let schema = &full_schemas[ri];
                let other_schemas: Vec<&RowSchema> = full_schemas
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ri)
                    .map(|(_, s)| s)
                    .collect();
                stats.rows_scanned += table.row_count() as u64;
                stats.bytes_scanned += table.size_bytes() as u64;

                let batch = table.batch();
                let mut selection = SelectionVector::all(table.row_count());
                let ctx = EvalContext {
                    params,
                    aggregates: None,
                    subquery: None,
                    outer,
                };
                for (ci, conj) in where_conjuncts.iter().enumerate() {
                    if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                        continue;
                    }
                    if refs_resolvable(conj, schema)
                        && !refs_resolvable_elsewhere(conj, &other_schemas)
                    {
                        // Conjunct references only this scan: apply it now,
                        // directly over the column slices.
                        let compiled = compile_predicate(conj, schema, &ctx);
                        selection = apply_predicate(&compiled, &batch, &selection, schema, &ctx)?;
                        used[ci] = true;
                    }
                }

                // Late materialization: survivors only, referenced columns
                // only. Conjuncts this (or an earlier) scan consumed never run
                // again, so only the still-pending ones pin extra columns
                // (join keys, subquery-bearing predicates, cross-relation
                // residuals).
                let mut scan_refs = referenced.clone();
                for (ci, conj) in where_conjuncts.iter().enumerate() {
                    if !used[ci] {
                        collect_expr_refs(conj, &mut scan_refs);
                    }
                }
                let keep = scan_refs.pruned_indices(&binding, schema);
                let pruned_schema = RowSchema::new(
                    keep.iter()
                        .map(|&c| schema.columns[c].clone())
                        .collect::<Vec<_>>(),
                );
                let rows = batch.gather(&selection, &keep);
                stats.rows_materialized += selection.len() as u64;
                stats.bytes_materialized += rows
                    .iter()
                    .map(|r| r.iter().map(Value::size_bytes).sum::<usize>())
                    .sum::<usize>() as u64;
                relations.push(Relation {
                    schema: pruned_schema,
                    rows,
                });
            }
        }
    }

    // Pre-filter derived-table relations with the conjuncts they alone can
    // answer (base-table conjuncts were consumed by the vectorized scans).
    let all_schemas: Vec<RowSchema> = relations.iter().map(|r| r.schema.clone()).collect();
    for (ri, rel) in relations.iter_mut().enumerate() {
        let other_schemas: Vec<&RowSchema> = all_schemas
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != ri)
            .map(|(_, s)| s)
            .collect();
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                continue;
            }
            if refs_resolvable(conj, &rel.schema)
                && !refs_resolvable_elsewhere(conj, &other_schemas)
            {
                // Conjunct references only this relation: apply it now.
                rel.rows = filter_rows(
                    db,
                    &rel.schema,
                    std::mem::take(&mut rel.rows),
                    conj,
                    params,
                    outer,
                )?;
                used[ci] = true;
            }
        }
    }

    // Join the relations left to right.
    let mut acc = relations.remove(0);
    while !relations.is_empty() {
        // Prefer a relation with an equi-join conjunct against the accumulator.
        let mut chosen = 0usize;
        let mut join_keys: Vec<(Expr, Expr)> = Vec::new();
        'search: for (idx, rel) in relations.iter().enumerate() {
            let keys = find_equi_join_keys(where_conjuncts, &used, &acc.schema, &rel.schema);
            if !keys.is_empty() {
                chosen = idx;
                join_keys = keys;
                break 'search;
            }
        }
        let right = relations.remove(chosen);
        // Mark the conjuncts we are about to consume as used.
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] {
                continue;
            }
            if let Some((l, r)) = as_equi_join(conj) {
                let consumed = join_keys
                    .iter()
                    .any(|(jl, jr)| (*jl == l && *jr == r) || (*jl == r && *jr == l));
                if consumed {
                    used[ci] = true;
                }
            }
        }
        acc = if join_keys.is_empty() {
            cross_join(&acc, &right)
        } else {
            hash_join(db, &acc, &right, &join_keys, params, outer)?
        };

        // Apply any remaining conjuncts that are now fully resolvable (cheap
        // early filtering between joins).
        for (ci, conj) in where_conjuncts.iter().enumerate() {
            if used[ci] || conj.contains_subquery() || conj.contains_aggregate() {
                continue;
            }
            if refs_resolvable(conj, &acc.schema) {
                acc.rows = filter_rows(
                    db,
                    &acc.schema,
                    std::mem::take(&mut acc.rows),
                    conj,
                    params,
                    outer,
                )?;
                used[ci] = true;
            }
        }
    }

    // Apply all remaining conjuncts (including those with subqueries).
    for (ci, conj) in where_conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        acc.rows = filter_rows(
            db,
            &acc.schema,
            std::mem::take(&mut acc.rows),
            conj,
            params,
            outer,
        )?;
        used[ci] = true;
    }

    Ok(acc)
}

/// Column references a query may resolve against its base-table scans, used
/// to prune unreferenced columns at materialization time.
#[derive(Clone)]
struct ReferencedColumns {
    refs: Vec<ColumnRef>,
    /// A `SELECT *` appears somewhere: keep every column (conservative — a
    /// star inside a nested subquery disables pruning for the whole query).
    star: bool,
}

impl ReferencedColumns {
    /// Indices of the scan's columns the query may reference. A qualified
    /// reference must name this scan's binding; an unqualified one matches by
    /// column name alone (conservative under ambiguity).
    fn pruned_indices(&self, binding: &str, schema: &RowSchema) -> Vec<usize> {
        if self.star {
            return (0..schema.len()).collect();
        }
        (0..schema.len())
            .filter(|&i| {
                let (_, name) = &schema.columns[i];
                self.refs.iter().any(|r| {
                    r.column.eq_ignore_ascii_case(name)
                        && r.table
                            .as_deref()
                            .is_none_or(|t| t.eq_ignore_ascii_case(binding))
                })
            })
            .collect()
    }
}

/// Collects every column reference the query can make against its FROM
/// relations *outside its own WHERE clause*, descending into subqueries
/// (correlated references resolve against the enclosing query's scans, so
/// they count too). The top-level WHERE conjuncts are deliberately excluded:
/// a conjunct consumed by the vectorized scan never runs again, so columns it
/// alone references need not be materialized — each scan adds back the refs
/// of the conjuncts still pending when it materializes.
fn collect_referenced_columns(query: &Query) -> ReferencedColumns {
    let mut out = ReferencedColumns {
        refs: Vec::new(),
        star: false,
    };
    collect_query_refs(query, false, &mut out);
    out
}

fn collect_query_refs(query: &Query, include_where: bool, out: &mut ReferencedColumns) {
    for p in &query.projections {
        collect_expr_refs(&p.expr, out);
    }
    if include_where {
        if let Some(w) = &query.where_clause {
            collect_expr_refs(w, out);
        }
    }
    for g in &query.group_by {
        collect_expr_refs(g, out);
    }
    if let Some(h) = &query.having {
        collect_expr_refs(h, out);
    }
    for o in &query.order_by {
        collect_expr_refs(&o.expr, out);
    }
    for t in &query.from {
        if let TableRef::Subquery { query: sub, .. } = t {
            collect_query_refs(sub, true, out);
        }
    }
}

fn collect_expr_refs(expr: &Expr, out: &mut ReferencedColumns) {
    expr.walk(&mut |node| match node {
        Expr::Column(c) => {
            if c.column == "*" {
                out.star = true;
            } else {
                out.refs.push(c.clone());
            }
        }
        // `Expr::walk` does not descend into subqueries; their (possibly
        // correlated) references still pin columns of the outer scans. Their
        // WHERE clauses count: they are evaluated row-at-a-time against the
        // outer query's materialized rows, not consumed by the outer scan.
        Expr::ScalarSubquery(q) => collect_query_refs(q, true, out),
        Expr::InSubquery { subquery, .. } => collect_query_refs(subquery, true, out),
        Expr::Exists { subquery, .. } => collect_query_refs(subquery, true, out),
        _ => {}
    });
}

/// True if every column reference in `expr` resolves in `schema`.
fn refs_resolvable(expr: &Expr, schema: &RowSchema) -> bool {
    expr.column_refs()
        .iter()
        .all(|c| schema.resolve(c).is_some())
}

/// True if any column reference in `expr` resolves in one of the other schemas
/// with a qualified name, which would make single-relation pre-filtering wrong.
fn refs_resolvable_elsewhere(expr: &Expr, others: &[&RowSchema]) -> bool {
    expr.column_refs()
        .iter()
        .any(|c| c.table.is_some() && others.iter().any(|s| s.resolve(c).is_some()))
}

/// If the conjunct is `col_expr = col_expr`, returns the two sides.
fn as_equi_join(conj: &Expr) -> Option<(Expr, Expr)> {
    if let Expr::BinaryOp {
        left,
        op: BinaryOp::Eq,
        right,
    } = conj
    {
        let left_cols = left.column_refs();
        let right_cols = right.column_refs();
        if !left_cols.is_empty() && !right_cols.is_empty() {
            return Some((*left.clone(), *right.clone()));
        }
    }
    None
}

/// Finds equality conjuncts joining the accumulator schema to the right schema.
/// Returns pairs `(left_key_expr, right_key_expr)` oriented accumulator-first.
fn find_equi_join_keys(
    conjuncts: &[Expr],
    used: &[bool],
    left: &RowSchema,
    right: &RowSchema,
) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for (ci, conj) in conjuncts.iter().enumerate() {
        if used[ci] {
            continue;
        }
        if let Some((a, b)) = as_equi_join(conj) {
            let a_left = refs_resolvable(&a, left);
            let a_right = refs_resolvable(&a, right);
            let b_left = refs_resolvable(&b, left);
            let b_right = refs_resolvable(&b, right);
            if a_left && b_right && !(a_right && b_left) {
                keys.push((a, b));
            } else if b_left && a_right {
                keys.push((b, a));
            }
        }
    }
    keys
}

fn filter_rows(
    db: &Database,
    schema: &RowSchema,
    rows: Vec<Vec<Value>>,
    predicate: &Expr,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
) -> Result<Vec<Vec<Value>>, EngineError> {
    let subquery_fn = |q: &Query, o: Option<(&RowSchema, &[Value])>| {
        let mut local = ExecStats::default();
        execute_inner(db, q, params, o, &mut local).map(|rs| rs.rows)
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let ctx = EvalContext {
            params,
            aggregates: None,
            subquery: Some(&subquery_fn),
            outer,
        };
        let keep = eval(predicate, schema, &row, &ctx)?
            .as_bool()
            .unwrap_or(false);
        if keep {
            out.push(row);
        }
    }
    Ok(out)
}

fn cross_join(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len().max(1));
    for l in &left.rows {
        for r in &right.rows {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            rows.push(row);
        }
    }
    Relation { schema, rows }
}

fn hash_join(
    db: &Database,
    left: &Relation,
    right: &Relation,
    keys: &[(Expr, Expr)],
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
) -> Result<Relation, EngineError> {
    let ctx_template = |_row: &[Value]| EvalContext {
        params,
        aggregates: None,
        subquery: None,
        outer,
    };
    // Build hash table on the right side. Rows with a NULL join key are
    // dropped on both sides: SQL equi-join predicates are never *true* for
    // NULL keys (`NULL = NULL` is NULL), so keeping them would invent matches
    // through `Value`'s reflexive `Eq`.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (idx, row) in right.rows.iter().enumerate() {
        let ctx = ctx_template(row);
        let key: Vec<Value> = keys
            .iter()
            .map(|(_, r)| eval(r, &right.schema, row, &ctx))
            .collect::<Result<_, _>>()?;
        if key.iter().any(Value::is_null) {
            continue;
        }
        table.entry(key).or_default().push(idx);
    }
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::new();
    for lrow in &left.rows {
        let ctx = ctx_template(lrow);
        let key: Vec<Value> = keys
            .iter()
            .map(|(l, _)| eval(l, &left.schema, lrow, &ctx))
            .collect::<Result<_, _>>()?;
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &ridx in matches {
                let mut row = lrow.clone();
                row.extend(right.rows[ridx].iter().cloned());
                rows.push(row);
            }
        }
    }
    let _ = db;
    Ok(Relation { schema, rows })
}

/// Collects every aggregate-like expression (true aggregates and the encrypted
/// aggregation UDFs) appearing in the query's post-grouping clauses.
fn collect_aggregates(query: &Query) -> Vec<Expr> {
    let mut found: Vec<Expr> = Vec::new();
    let mut push_from = |e: &Expr| {
        e.walk(&mut |node| {
            let is_agg = matches!(node, Expr::Aggregate { .. })
                || matches!(node, Expr::Function { name, .. } if is_udf_aggregate(name));
            if is_agg && !found.contains(node) {
                found.push(node.clone());
            }
        });
    };
    for p in &query.projections {
        push_from(&p.expr);
    }
    if let Some(h) = &query.having {
        push_from(h);
    }
    for o in &query.order_by {
        push_from(&o.expr);
    }
    found
}

/// UDF aggregates the encrypted execution path uses.
pub fn is_udf_aggregate(name: &str) -> bool {
    matches!(name, "paillier_sum" | "group_concat")
}

/// State for one aggregate over one group.
enum AggState {
    Sum {
        total_i: i64,
        total_f: f64,
        any_float: bool,
        count: u64,
    },
    Avg {
        total: f64,
        count: u64,
    },
    Count {
        count: u64,
        distinct: Option<std::collections::HashSet<Value>>,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    PaillierSum {
        /// Montgomery-resident accumulator: starts at `R` (Montgomery 1);
        /// each row is one in-place CIOS multiply, which leaves the running
        /// product carrying an `R^{-count}` drift that `finish` cancels with
        /// a single `R^count` multiplication.
        acc: BigUint,
        /// Shared modulus + Montgomery context, built once at
        /// `register_paillier_modulus` time.
        paillier: Arc<PaillierServerCtx>,
        /// Reusable CIOS scratch (allocated once per group).
        scratch: MontScratch,
        /// Reusable parse buffer for the incoming ciphertext bytes.
        operand: BigUint,
        count: u64,
    },
    GroupConcat {
        values: Vec<Value>,
    },
}

impl AggState {
    fn new(expr: &Expr, db: &Database) -> Result<Self, EngineError> {
        match expr {
            Expr::Aggregate { func, distinct, .. } => Ok(match func {
                AggFunc::Sum => AggState::Sum {
                    total_i: 0,
                    total_f: 0.0,
                    any_float: false,
                    count: 0,
                },
                AggFunc::Avg => AggState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggFunc::Count => AggState::Count {
                    count: 0,
                    distinct: if *distinct {
                        Some(Default::default())
                    } else {
                        None
                    },
                },
                AggFunc::Min => AggState::MinMax {
                    best: None,
                    is_min: true,
                },
                AggFunc::Max => AggState::MinMax {
                    best: None,
                    is_min: false,
                },
            }),
            Expr::Function { name, .. } if name == "paillier_sum" => {
                let paillier = db.paillier_ctx().cloned().ok_or_else(|| {
                    EngineError::new("paillier_sum requires a registered public modulus")
                })?;
                Ok(AggState::PaillierSum {
                    acc: paillier.ctx().one_mont(),
                    scratch: paillier.ctx().scratch(),
                    operand: BigUint::zero(),
                    paillier,
                    count: 0,
                })
            }
            Expr::Function { name, .. } if name == "group_concat" => {
                Ok(AggState::GroupConcat { values: Vec::new() })
            }
            other => Err(EngineError::new(format!("not an aggregate: {other}"))),
        }
    }

    fn arg(expr: &Expr) -> Option<&Expr> {
        match expr {
            Expr::Aggregate { arg, .. } => arg.as_deref(),
            Expr::Function { args, .. } => args.first(),
            _ => None,
        }
    }

    fn update(&mut self, value: Option<Value>) {
        match self {
            AggState::Sum {
                total_i,
                total_f,
                any_float,
                count,
            } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return;
                    }
                    match v {
                        Value::Float(f) => {
                            *any_float = true;
                            *total_f += f;
                        }
                        other => {
                            if let Some(i) = other.as_int() {
                                *total_i += i;
                                *total_f += i as f64;
                            }
                        }
                    }
                    *count += 1;
                }
            }
            AggState::Avg { total, count } => {
                if let Some(v) = value {
                    if let Some(f) = v.as_float() {
                        *total += f;
                        *count += 1;
                    }
                }
            }
            AggState::Count { count, distinct } => match value {
                None => *count += 1, // COUNT(*)
                Some(v) => {
                    if v.is_null() {
                        return;
                    }
                    match distinct {
                        Some(set) => {
                            if set.insert(v) {
                                *count += 1;
                            }
                        }
                        None => *count += 1,
                    }
                }
            },
            AggState::MinMax { best, is_min } => {
                if let Some(v) = value {
                    if v.is_null() {
                        return;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => {
                            if *is_min {
                                v < *b
                            } else {
                                v > *b
                            }
                        }
                    };
                    if better {
                        *best = Some(v);
                    }
                }
            }
            AggState::PaillierSum {
                acc,
                paillier,
                scratch,
                operand,
                count,
            } => {
                if let Some(Value::Bytes(ct)) = value {
                    operand.assign_from_bytes_be(&ct);
                    // Well-formed ciphertexts are already < n²; reduce only
                    // defensively so malformed input cannot break the CIOS
                    // precondition.
                    if &*operand >= paillier.n_squared() {
                        *operand = operand.rem(paillier.n_squared());
                    }
                    // The paper's §5.3 cost: one modular multiplication per
                    // row, here a single allocation-free CIOS pass.
                    paillier.ctx().mont_mul_assign(acc, operand, scratch);
                    *count += 1;
                }
            }
            AggState::GroupConcat { values } => {
                if let Some(v) = value {
                    values.push(v);
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum {
                total_i,
                total_f,
                any_float,
                count,
            } => {
                if count == 0 {
                    Value::Null
                } else if any_float {
                    Value::Float(total_f)
                } else {
                    Value::Int(total_i)
                }
            }
            AggState::Avg { total, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(total / count as f64)
                }
            }
            AggState::Count { count, .. } => Value::Int(count as i64),
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::PaillierSum {
                acc,
                paillier,
                count,
                ..
            } => {
                if count == 0 {
                    Value::Null
                } else {
                    // Cancel the R^{-count} drift accumulated by the per-row
                    // CIOS multiplies: one R^count fixup for the whole group.
                    let ctx = paillier.ctx();
                    let product = ctx.mont_mul(&acc, &ctx.r_to_the(count));
                    Value::Bytes(product.to_bytes_be_padded(paillier.ciphertext_bytes()))
                }
            }
            AggState::GroupConcat { values } => Value::List(values),
        }
    }
}

fn aggregate_and_project(
    db: &Database,
    query: &Query,
    relation: &Relation,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    _stats: &mut ExecStats,
) -> Result<ProjectedRows, EngineError> {
    let subquery_fn = |q: &Query, o: Option<(&RowSchema, &[Value])>| {
        let mut local = ExecStats::default();
        execute_inner(db, q, params, o, &mut local).map(|rs| rs.rows)
    };
    let agg_exprs = collect_aggregates(query);

    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
    for (ridx, row) in relation.rows.iter().enumerate() {
        let ctx = EvalContext {
            params,
            aggregates: None,
            subquery: Some(&subquery_fn),
            outer,
        };
        let key: Vec<Value> = query
            .group_by
            .iter()
            .map(|g| eval(g, &relation.schema, row, &ctx))
            .collect::<Result<_, _>>()?;
        let gidx = *group_index.entry(key.clone()).or_insert_with(|| {
            groups.push((key, Vec::new()));
            groups.len() - 1
        });
        groups[gidx].1.push(ridx);
    }
    // A global aggregate over an empty input still produces one group.
    if groups.is_empty() && query.group_by.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    let mut columns = Vec::new();
    for (i, p) in query.projections.iter().enumerate() {
        columns.push(p.output_name(i));
    }

    let mut rows_out = Vec::new();
    let mut sort_keys_out = Vec::new();
    for (_key, row_indices) in &groups {
        // Compute aggregate values for this group.
        let mut agg_values: HashMap<Expr, Value> = HashMap::new();
        for agg_expr in &agg_exprs {
            let mut state = AggState::new(agg_expr, db)?;
            let arg = AggState::arg(agg_expr).cloned();
            let is_count_star = matches!(
                agg_expr,
                Expr::Aggregate {
                    func: AggFunc::Count,
                    arg: None,
                    ..
                }
            );
            for &ridx in row_indices {
                let row = &relation.rows[ridx];
                let ctx = EvalContext {
                    params,
                    aggregates: None,
                    subquery: Some(&subquery_fn),
                    outer,
                };
                if is_count_star {
                    state.update(None);
                } else if let Some(arg_expr) = &arg {
                    let v = eval(arg_expr, &relation.schema, row, &ctx)?;
                    state.update(Some(v));
                } else {
                    state.update(None);
                }
            }
            agg_values.insert(agg_expr.clone(), state.finish());
        }

        // Representative row for evaluating group-key expressions in
        // projections / HAVING / ORDER BY.
        let representative: Vec<Value> = row_indices
            .first()
            .map(|&i| relation.rows[i].clone())
            .unwrap_or_else(|| vec![Value::Null; relation.schema.len()]);

        let ctx = EvalContext {
            params,
            aggregates: Some(&agg_values),
            subquery: Some(&subquery_fn),
            outer,
        };

        // HAVING.
        if let Some(having) = &query.having {
            let keep = eval(having, &relation.schema, &representative, &ctx)?
                .as_bool()
                .unwrap_or(false);
            if !keep {
                continue;
            }
        }

        // Projections.
        let mut out_row = Vec::with_capacity(query.projections.len());
        for p in &query.projections {
            out_row.push(eval(&p.expr, &relation.schema, &representative, &ctx)?);
        }

        // ORDER BY keys: aliases refer to projection outputs.
        let mut keys = Vec::with_capacity(query.order_by.len());
        for ob in &query.order_by {
            keys.push(resolve_order_key(
                ob,
                query,
                &out_row,
                &relation.schema,
                &representative,
                &ctx,
            )?);
        }

        rows_out.push(out_row);
        sort_keys_out.push(keys);
    }

    Ok(ProjectedRows {
        columns,
        rows: rows_out,
        sort_keys: sort_keys_out,
    })
}

fn project_rows(
    query: &Query,
    relation: &Relation,
    params: &[Value],
    outer: Option<(&RowSchema, &[Value])>,
    subquery_fn: &impl Fn(
        &Query,
        Option<(&RowSchema, &[Value])>,
    ) -> Result<Vec<Vec<Value>>, EngineError>,
) -> Result<ProjectedRows, EngineError> {
    let mut columns = Vec::new();
    let star = query
        .projections
        .iter()
        .any(|p| matches!(&p.expr, Expr::Column(c) if c.column == "*"));
    if star {
        for (_, name) in &relation.schema.columns {
            columns.push(name.clone());
        }
    } else {
        for (i, p) in query.projections.iter().enumerate() {
            columns.push(p.output_name(i));
        }
    }

    let mut rows_out = Vec::with_capacity(relation.rows.len());
    let mut sort_keys_out = Vec::with_capacity(relation.rows.len());
    for row in &relation.rows {
        let ctx = EvalContext {
            params,
            aggregates: None,
            subquery: Some(subquery_fn),
            outer,
        };
        let out_row = if star {
            row.clone()
        } else {
            query
                .projections
                .iter()
                .map(|p| eval(&p.expr, &relation.schema, row, &ctx))
                .collect::<Result<Vec<_>, _>>()?
        };
        let mut keys = Vec::with_capacity(query.order_by.len());
        for ob in &query.order_by {
            keys.push(resolve_order_key(
                ob,
                query,
                &out_row,
                &relation.schema,
                row,
                &ctx,
            )?);
        }
        rows_out.push(out_row);
        sort_keys_out.push(keys);
    }
    Ok(ProjectedRows {
        columns,
        rows: rows_out,
        sort_keys: sort_keys_out,
    })
}

/// Resolves an ORDER BY key: projection aliases and positions take precedence,
/// otherwise the expression is evaluated against the source row.
fn resolve_order_key(
    ob: &OrderByItem,
    query: &Query,
    out_row: &[Value],
    schema: &RowSchema,
    row: &[Value],
    ctx: &EvalContext<'_>,
) -> Result<Value, EngineError> {
    if let Expr::Column(c) = &ob.expr {
        if c.table.is_none() {
            if let Some(pos) = query.projections.iter().position(|p| {
                p.alias
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(&c.column))
            }) {
                return Ok(out_row[pos].clone());
            }
        }
    }
    if let Expr::Literal(Literal::Number(n)) = &ob.expr {
        if let Ok(pos) = n.parse::<usize>() {
            if pos >= 1 && pos <= out_row.len() {
                return Ok(out_row[pos - 1].clone());
            }
        }
    }
    // The expression may itself be (or contain) one of the projection
    // expressions; evaluate directly.
    if let Some(pos) = query.projections.iter().position(|p| p.expr == ob.expr) {
        return Ok(out_row[pos].clone());
    }
    eval(&ob.expr, schema, row, ctx)
}
