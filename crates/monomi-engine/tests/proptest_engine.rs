//! Property-based tests for the engine's load-bearing contracts:
//!
//! 1. `Value`'s `Hash`/`Eq` contract (`a == b ⇒ hash(a) == hash(b)`, plus
//!    antisymmetry of the total order) — everything the executor's hash
//!    joins, GROUP BY, and DISTINCT silently rely on;
//! 2. the vectorized selection-vector scan returns exactly the rows the old
//!    row-materializing scan returned, on random tables and predicates;
//! 3. the morsel-parallel executor is deterministic: at any worker thread
//!    count (1, 2, 4, 8) a query returns byte-identical results — float
//!    sums, group order, and encrypted `paillier_sum` ciphertexts included —
//!    because partials merge in partition order at fixed morsel boundaries.

use monomi_engine::{
    apply_predicate, compile_predicate, expr::eval, ColumnDef, ColumnType, Database, EvalContext,
    ExecOptions, RowSchema, SelectionVector, TableSchema, Value,
};
use monomi_sql::parse_query;
use proptest::prelude::*;

/// Builds a value from generator primitives; `kind` collides deliberately
/// (several kinds reuse `base`) so equal pairs are common.
fn make_value(kind: u8, base: i64, bits: u64) -> Value {
    match kind % 9 {
        0 => Value::Null,
        1 => Value::Int(base),
        2 => Value::Float(base as f64),
        3 => Value::Float(base as f64 + 0.5),
        4 => Value::Date(base as i32),
        5 => Value::Str(format!("s{base}")),
        6 => Value::Bytes(base.to_be_bytes().to_vec()),
        7 => Value::Float(f64::from_bits(bits)), // arbitrary: NaN, ±inf, -0.0…
        _ => Value::List(vec![Value::Int(base), Value::Float(base as f64)]),
    }
}

fn hash_of(v: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn eq_implies_equal_hashes(
        ka in 0u8..9, kb in 0u8..9,
        base_a in -64i64..64, base_b in -64i64..64,
        bits in any::<u64>(),
    ) {
        let a = make_value(ka, base_a, bits);
        let b = make_value(kb, base_b, bits);
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b), "{:?} == {:?} but hashes differ", a, b);
        }
        // Eq must agree with the comparator in both directions.
        prop_assert_eq!(a == b, a.compare(&b) == std::cmp::Ordering::Equal);
        prop_assert_eq!(a.compare(&b), b.compare(&a).reverse());
        // Reflexivity (NaN payloads included: total_cmp makes this hold).
        prop_assert_eq!(a.compare(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn extreme_numerics_keep_the_contract(a in any::<i64>(), bits in any::<u64>()) {
        let i = Value::Int(a);
        let f = Value::Float(f64::from_bits(bits));
        let d = Value::Date(a as i32);
        for (x, y) in [(&i, &f), (&i, &d), (&d, &f)] {
            if x == y {
                prop_assert_eq!(hash_of(x), hash_of(y), "{:?} == {:?} but hashes differ", x, y);
            }
            prop_assert_eq!(x.compare(y), y.compare(x).reverse());
        }
    }
}

/// A random table of four columns (nullable int, int, categorical string,
/// date) loaded into a [`Database`].
/// Builds the reference table explicitly in memory: this suite compares the
/// vectorized scan against the row-at-a-time scan over `Table::batch()`'s
/// borrowed memory columns, so it must not follow `MONOMI_STORAGE=disk`
/// (the disk backend's scan equivalence is covered by `disk_backend.rs`).
fn build_table(rows: &[(i64, i64, u8, i16)]) -> Database {
    let mut db = Database::in_memory();
    db.create_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("b", ColumnType::Int),
            ColumnDef::new("s", ColumnType::Str),
            ColumnDef::new("d", ColumnType::Date),
        ],
    ));
    let cats = ["AIR", "RAIL", "TRUCK", "SHIP"];
    for &(a, b, c, d) in rows {
        db.insert(
            "t",
            vec![
                // a % 7 == 0 injects NULLs so predicates see them.
                if a % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(a)
                },
                Value::Int(b),
                Value::Str(cats[(c % 4) as usize].into()),
                Value::Date(d as i32),
            ],
        )
        .expect("insert");
    }
    db
}

/// Predicate templates stitched together by the generator.
fn predicate_sql(template: u8, c1: i64, c2: i64) -> String {
    let (lo, hi) = (c1.min(c2), c1.max(c2));
    match template % 12 {
        0 => format!("a < {c1}"),
        1 => format!("a = {c1}"),
        2 => format!("{c1} >= b"),
        3 => format!("b BETWEEN {lo} AND {hi}"),
        4 => format!("b NOT BETWEEN {lo} AND {hi}"),
        5 => "s IN ('AIR', 'TRUCK')".to_string(),
        6 => "s LIKE 'R%'".to_string(),
        7 => "a IS NULL".to_string(),
        8 => "a IS NOT NULL".to_string(),
        9 => format!("a + b < {c1}"),
        10 => format!("NOT (a < {c1})"),
        _ => format!("d < DATE '{}'", monomi_engine::date::format_date(c1 as i32)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vectorized_scan_agrees_with_row_materializing_scan(
        rows in proptest::collection::vec(
            (-40i64..40, -40i64..40, any::<u8>(), -200i16..200), 0..60),
        t1 in any::<u8>(), t2 in any::<u8>(), t3 in any::<u8>(),
        c1 in -50i64..50, c2 in -50i64..50,
        connective in 0u8..3,
    ) {
        let db = build_table(&rows);
        let p1 = predicate_sql(t1, c1, c2);
        let p2 = predicate_sql(t2, c2, c1);
        let p3 = predicate_sql(t3, c1.wrapping_mul(2), c2);
        let pred = match connective {
            0 => p1,
            1 => format!("({p1}) AND ({p2})"),
            _ => format!("(({p1}) OR ({p2})) AND ({p3})"),
        };

        // New path: full query execution through the vectorized scan.
        let (got, stats) = db
            .execute_sql(&format!("SELECT a, b, s, d FROM t WHERE {pred}"), &[])
            .expect("vectorized execution");

        // Reference: the seed's row-materializing scan — clone every row,
        // then filter with the row-at-a-time evaluator.
        let table = db.table("t").unwrap();
        let schema = RowSchema::new(
            ["a", "b", "s", "d"]
                .iter()
                .map(|c| (Some("t".to_string()), c.to_string()))
                .collect(),
        );
        let parsed = parse_query(&format!("SELECT a FROM t WHERE {pred}")).unwrap();
        let where_clause = parsed.where_clause.unwrap();
        let ctx = EvalContext::with_params(&[]);
        let expected: Vec<Vec<Value>> = (0..table.row_count())
            .map(|i| table.row(i))
            .filter(|row| {
                eval(&where_clause, &schema, row, &ctx)
                    .expect("row evaluation")
                    .as_bool()
                    .unwrap_or(false)
            })
            .collect();

        prop_assert_eq!(&got.rows, &expected, "predicate: {}", pred);
        prop_assert_eq!(stats.rows_materialized as usize, expected.len());
        prop_assert_eq!(stats.rows_scanned as usize, rows.len());

        // The compiled predicate applied directly over the column batch must
        // select exactly the same row indices.
        let batch = table.batch();
        let compiled = compile_predicate(&where_clause, &schema, &ctx);
        let sel = apply_predicate(
            &compiled,
            &batch,
            &SelectionVector::all(table.row_count()),
            &schema,
            &ctx,
        )
        .expect("columnar filter");
        let direct: Vec<Vec<Value>> = sel.iter().map(|i| table.row(i)).collect();
        prop_assert_eq!(&direct, &expected, "predicate: {}", pred);
    }
}

/// Query shapes stressing every morsel-parallelized stage: scan+filter,
/// residual filters, hash joins, partial aggregation (float sums, DISTINCT
/// counts, MIN/MAX, AVG), and plain projection with ORDER BY.
fn query_sql(shape: u8, pred: &str) -> String {
    match shape % 6 {
        0 => format!(
            "SELECT s, COUNT(*), SUM(b), SUM(b * 0.1), AVG(b), MIN(a), MAX(d) \
             FROM t WHERE {pred} GROUP BY s ORDER BY s"
        ),
        1 => format!("SELECT a, b, s, d FROM t WHERE {pred} ORDER BY b, a, s, d"),
        2 => {
            format!("SELECT COUNT(DISTINCT s), SUM(a + b), MIN(s), SUM(b / 3) FROM t WHERE {pred}")
        }
        3 => format!(
            "SELECT s, d, COUNT(*) FROM t WHERE {pred} GROUP BY s, d \
             HAVING COUNT(*) >= 2 ORDER BY s, d"
        ),
        4 => format!("SELECT DISTINCT s, a FROM t WHERE {pred} ORDER BY s, a LIMIT 20"),
        _ => format!(
            "SELECT t.s, COUNT(*), SUM(u.b) FROM t, t AS u \
             WHERE t.a = u.a AND {pred} GROUP BY t.s ORDER BY t.s"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The determinism contract: with fixed morsel boundaries, execution at
    /// threads ∈ {2, 4, 8} is byte-identical to serial execution — results
    /// (including float sums and group order) and scan counters alike.
    #[test]
    fn parallel_execution_is_byte_identical_to_serial(
        rows in proptest::collection::vec(
            (-40i64..40, -40i64..40, any::<u8>(), -200i16..200), 0..200),
        template in any::<u8>(), shape in any::<u8>(),
        c1 in -50i64..50, c2 in -50i64..50,
    ) {
        let db = build_table(&rows);
        let sql = query_sql(shape, &predicate_sql(template, c1, c2));
        let query = parse_query(&sql).unwrap();
        // Small morsels so even tiny generated tables span several partitions.
        let serial_opts = ExecOptions { threads: 1, morsel_rows: 16, ..ExecOptions::serial() };
        let (serial, serial_stats) = db
            .execute_with(&query, &[], &serial_opts)
            .expect("serial execution");
        for threads in [2usize, 4, 8] {
            let opts = ExecOptions { threads, morsel_rows: 16, ..ExecOptions::serial() };
            let (parallel, stats) = db
                .execute_with(&query, &[], &opts)
                .expect("parallel execution");
            prop_assert_eq!(&serial, &parallel, "threads={} sql={}", threads, sql);
            // Byte-identical, not merely equal-by-comparator: the debug
            // rendering distinguishes -0.0 from 0.0 and Int from Float.
            prop_assert_eq!(
                format!("{:?}", serial.rows), format!("{:?}", parallel.rows),
                "debug mismatch at threads={} sql={}", threads, sql
            );
            prop_assert_eq!(serial_stats.rows_scanned, stats.rows_scanned);
            prop_assert_eq!(serial_stats.bytes_scanned, stats.bytes_scanned);
            prop_assert_eq!(serial_stats.rows_materialized, stats.rows_materialized);
            prop_assert_eq!(serial_stats.bytes_materialized, stats.bytes_materialized);
            prop_assert_eq!(serial_stats.result_rows, stats.result_rows);
            prop_assert_eq!(serial_stats.result_bytes, stats.result_bytes);
        }
    }

    /// Encrypted aggregation determinism: `paillier_sum` over a registered
    /// modulus yields byte-identical ciphertexts at every thread count (the
    /// Montgomery drift merge is exact modular arithmetic).
    #[test]
    fn parallel_paillier_sum_is_byte_identical_to_serial(
        cts in proptest::collection::vec((0u8..5, any::<u64>()), 0..150),
    ) {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "e",
            vec![
                ColumnDef::new("g", ColumnType::Int),
                ColumnDef::new("c", ColumnType::Bytes),
            ],
        ));
        // A fixed odd modulus stands in for n² — the server never needs the
        // key, only the public modulus to multiply ciphertexts.
        let n = monomi_math::BigUint::from_u64(u64::MAX - 58);
        db.register_paillier_modulus(n.mul(&n));
        for &(g, c) in &cts {
            db.insert(
                "e",
                vec![
                    Value::Int(g as i64),
                    Value::Bytes(monomi_math::BigUint::from_u64(c).to_bytes_be()),
                ],
            )
            .expect("insert ciphertext row");
        }
        let query = parse_query(
            "SELECT g, paillier_sum(c), COUNT(*) FROM e GROUP BY g ORDER BY g",
        )
        .unwrap();
        let serial_opts = ExecOptions { threads: 1, morsel_rows: 8, ..ExecOptions::serial() };
        let (serial, _) = db
            .execute_with(&query, &[], &serial_opts)
            .expect("serial paillier_sum");
        for threads in [2usize, 4, 8] {
            let opts = ExecOptions { threads, morsel_rows: 8, ..ExecOptions::serial() };
            let (parallel, _) = db
                .execute_with(&query, &[], &opts)
                .expect("parallel paillier_sum");
            prop_assert_eq!(&serial, &parallel, "threads={}", threads);
        }
    }
}
