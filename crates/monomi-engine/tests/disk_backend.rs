//! The disk backend's engine-level contracts:
//!
//! 1. **Byte-identity**: a disk-backed database (multi-segment tables, tiny
//!    segments to force many of them) returns *debug-format identical*
//!    results to the in-memory backend for random tables, predicates, and
//!    aggregations, at 1 and 4 worker threads — and zone-map-pruned scans
//!    are exactly equivalent to full scans.
//! 2. **Pruning works and is observable**: a Q6-shaped selective range scan
//!    over a clustered column skips segments (`segments_pruned > 0`) and
//!    reads fewer real bytes than the unpruned full scan.
//! 3. **Crash safety**: a load killed before its catalog commit is invisible
//!    after reopen; a flipped byte in a committed segment file surfaces as a
//!    query error, not wrong data.
//! 4. **Persistence**: `Database::open` on an existing directory serves the
//!    committed rows; `persist()` makes tail rows durable.

use monomi_engine::{ColumnDef, ColumnType, Database, ExecOptions, TableSchema, Value};
use monomi_store::{Store, StoreOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique store directory per call (tests and proptest cases run
/// concurrently in one process).
fn fresh_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "monomi-disk-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_small_store(dir: &PathBuf, segment_rows: usize) -> Arc<Store> {
    Store::open_with(
        dir,
        StoreOptions {
            segment_rows,
            cache_bytes: 4 << 20,
            ..StoreOptions::default()
        },
    )
    .expect("store opens")
}

fn lineitem_like_schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("a", ColumnType::Int),
            ColumnDef::new("b", ColumnType::Int),
            ColumnDef::new("s", ColumnType::Str),
            ColumnDef::new("d", ColumnType::Date),
        ],
    )
}

fn rows_from(spec: &[(i64, i64, u8, i16)]) -> Vec<Vec<Value>> {
    let cats = ["AIR", "RAIL", "TRUCK", "SHIP"];
    spec.iter()
        .map(|&(a, b, c, d)| {
            vec![
                if a % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(a)
                },
                Value::Int(b),
                Value::Str(cats[(c % 4) as usize].into()),
                Value::Date(d as i32),
            ]
        })
        .collect()
}

fn predicate_sql(kind: u8, c1: i64, c2: i64) -> String {
    let (lo, hi) = (c1.min(c2), c1.max(c2));
    match kind % 10 {
        0 => format!("a = {c1}"),
        1 => format!("a < {c1}"),
        2 => format!("b >= {c1}"),
        3 => format!("b BETWEEN {lo} AND {hi}"),
        4 => format!("a NOT BETWEEN {lo} AND {hi}"),
        5 => "s IN ('AIR', 'TRUCK')".to_string(),
        6 => "s LIKE 'R%'".to_string(),
        7 => "a IS NULL".to_string(),
        8 => format!("a <> {c1}"),
        _ => format!("d < DATE '{}'", monomi_engine::date::format_date(c1 as i32)),
    }
}

proptest! {
    // Each case does real file I/O; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Disk results ≡ memory results, byte for byte (debug format pins float
    /// bit patterns and variant), for filters and aggregations at 1 and 4
    /// threads — with the disk table split over many tiny segments so
    /// zone-map pruning actually fires. Also: pruning never changes counts —
    /// rows_materialized matches the memory scan exactly.
    #[test]
    fn disk_execution_is_byte_identical_to_memory(
        spec in proptest::collection::vec(
            (-40i64..40, -40i64..40, any::<u8>(), -200i16..200), 0..70),
        segment_rows in 1usize..9,
        t1 in any::<u8>(), t2 in any::<u8>(),
        c1 in -50i64..50, c2 in -50i64..50,
    ) {
        let rows = rows_from(&spec);

        let mut mem = Database::in_memory();
        mem.create_table(lineitem_like_schema());
        mem.bulk_load("t", rows.clone()).expect("memory load");

        let dir = fresh_dir("ident");
        let store = open_small_store(&dir, segment_rows);
        let mut disk = Database::with_store(store);
        disk.create_table(lineitem_like_schema());
        disk.bulk_load("t", rows).expect("disk load");

        let pred = format!("({}) AND ({})", predicate_sql(t1, c1, c2), predicate_sql(t2, c2, c1));
        let queries = [
            format!("SELECT a, b, s, d FROM t WHERE {pred}"),
            format!("SELECT s, COUNT(*), SUM(b), MIN(a), MAX(d) FROM t WHERE {pred} \
                     GROUP BY s ORDER BY s"),
            "SELECT COUNT(*) FROM t".to_string(),
        ];
        for sql in &queries {
            for threads in [1usize, 4] {
                let opts = ExecOptions::with_threads(threads);
                let (expected, mem_stats) =
                    mem.execute_sql_with(sql, &[], &opts).expect("memory run");
                let (got, disk_stats) =
                    disk.execute_sql_with(sql, &[], &opts).expect("disk run");
                prop_assert_eq!(
                    format!("{:?}", &expected),
                    format!("{:?}", &got),
                    "results diverged for {} at {} threads", sql, threads
                );
                // Pruning is result-invisible: the disk scan materializes
                // exactly what the memory scan does, and never scans more
                // rows than exist.
                prop_assert_eq!(mem_stats.rows_materialized, disk_stats.rows_materialized);
                prop_assert!(disk_stats.rows_scanned <= mem_stats.rows_scanned);
                prop_assert_eq!(mem_stats.segments_read, 0);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index-probed execution ≡ full-scan execution, byte for byte, over a
    /// table whose segments are *mixed*: the first half committed by a store
    /// with indexes off (no `.idx` files), the second half after a reopen
    /// with indexes on. Both legs must also match the memory backend, probes
    /// never scan more rows than the full scan, and the work counters are
    /// invariant under the thread count.
    #[test]
    fn index_probes_match_full_scan_byte_for_byte(
        spec in proptest::collection::vec(
            (-40i64..40, -40i64..40, any::<u8>(), -200i16..200), 1..60),
        segment_rows in 2usize..9,
        t1 in any::<u8>(),
        c1 in -50i64..50, c2 in -50i64..50,
    ) {
        let rows = rows_from(&spec);
        let split = rows.len() / 2;

        let mut mem = Database::in_memory();
        mem.create_table(lineitem_like_schema());
        mem.bulk_load("t", rows.clone()).expect("memory load");

        let dir = fresh_dir("probe");
        {
            let store = Store::open_with(&dir, StoreOptions {
                segment_rows,
                cache_bytes: 4 << 20,
                index_mode: monomi_store::IndexMode::Off,
                ..StoreOptions::default()
            }).expect("store opens");
            let mut disk = Database::with_store(store);
            disk.create_table(lineitem_like_schema());
            disk.bulk_load("t", rows[..split].to_vec()).expect("unindexed half");
        }
        let store = open_small_store(&dir, segment_rows);
        let mut disk = Database::with_store(store);
        disk.bulk_load("t", rows[split..].to_vec()).expect("indexed half");

        let queries = [
            format!("SELECT a, b, s, d FROM t WHERE {}", predicate_sql(t1, c1, c2)),
            format!("SELECT b, s FROM t WHERE a = {c1}"),
            format!("SELECT a FROM t WHERE b BETWEEN {} AND {}", c1.min(c2), c1.max(c2)),
        ];
        for sql in &queries {
            let (baseline, _) = mem.execute_sql(sql, &[]).expect("memory baseline");
            let expected = format!("{:?}", baseline.rows);
            let mut counters = Vec::new();
            for threads in [1usize, 4] {
                let probed_opts = ExecOptions::with_threads(threads)
                    .with_index_mode(monomi_store::IndexMode::All);
                let scan_opts = ExecOptions::with_threads(threads)
                    .with_index_mode(monomi_store::IndexMode::Off);
                let (probed, probed_stats) =
                    disk.execute_sql_with(sql, &[], &probed_opts).expect("probed run");
                let (scanned, scanned_stats) =
                    disk.execute_sql_with(sql, &[], &scan_opts).expect("scanned run");
                prop_assert_eq!(&format!("{:?}", probed.rows), &expected,
                    "probed diverged for {} at {} threads", sql, threads);
                prop_assert_eq!(&format!("{:?}", scanned.rows), &expected,
                    "full scan diverged for {} at {} threads", sql, threads);
                // Probing narrows work, never the result.
                prop_assert!(probed_stats.rows_scanned <= scanned_stats.rows_scanned);
                prop_assert_eq!(probed_stats.rows_materialized, scanned_stats.rows_materialized);
                prop_assert_eq!(probed_stats.result_rows, scanned_stats.result_rows);
                prop_assert_eq!(probed_stats.result_bytes, scanned_stats.result_bytes);
                prop_assert_eq!(scanned_stats.index_probes, 0);
                counters.push((probed_stats.work_counters(), scanned_stats.work_counters()));
            }
            // The thread count changes parallelism, not work: every counter
            // except the trailing morsels/threads_used pair is identical.
            let (p1, s1) = &counters[0];
            let (p4, s4) = &counters[1];
            prop_assert_eq!(&p1[..11], &p4[..11], "probed counters drifted for {}", sql);
            prop_assert_eq!(&s1[..11], &s4[..11], "scan counters drifted for {}", sql);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Builds a disk table whose `a` column is clustered (sorted), so segment
/// zone maps carry disjoint ranges — the shape a selective Q6-like range
/// predicate can prune.
fn clustered_disk_db(dir: &PathBuf, n: i64, segment_rows: usize) -> Database {
    let store = open_small_store(dir, segment_rows);
    let mut db = Database::with_store(store);
    db.create_table(lineitem_like_schema());
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 13),
                Value::Str(["AIR", "RAIL"][(i % 2) as usize].into()),
                Value::Date((i / 4) as i32),
            ]
        })
        .collect();
    db.bulk_load("t", rows).expect("clustered load");
    db
}

#[test]
fn q6_shaped_selective_scan_prunes_segments_and_reads_fewer_bytes() {
    let dir = fresh_dir("prune");
    let db = clustered_disk_db(&dir, 1000, 100); // 10 segments of 100 rows
    let selective = "SELECT a, b FROM t WHERE a BETWEEN 940 AND 960";
    let (rs, stats) = db.execute_sql(selective, &[]).expect("selective scan");
    assert_eq!(rs.rows.len(), 21);
    // 9 of the 10 segments lie wholly outside [940, 960].
    assert_eq!(
        stats.segments_pruned, 9,
        "zone maps must skip 9/10 segments"
    );
    assert_eq!(stats.segments_read, 1);
    // The ordered index narrows the surviving segment to the 21 matching
    // rows before any column data is decoded.
    assert_eq!(stats.rows_scanned, 21);
    assert!(stats.index_probes >= 1, "range probe must run");
    assert_eq!(stats.index_rows_fetched, 21);
    assert!(stats.postings_bytes_read > 0);

    // With index probing disabled, zone maps still prune — and the one
    // surviving segment is scanned in full, byte-identically.
    let off = ExecOptions::serial().with_index_mode(monomi_store::IndexMode::Off);
    let (rs_off, off_stats) = db
        .execute_sql_with(selective, &[], &off)
        .expect("selective scan, indexes off");
    assert_eq!(format!("{:?}", rs.rows), format!("{:?}", rs_off.rows));
    assert_eq!(off_stats.segments_pruned, 9);
    assert_eq!(off_stats.rows_scanned, 100);
    assert_eq!(off_stats.index_probes, 0);

    let (_, full) = db
        .execute_sql("SELECT a, b FROM t", &[])
        .expect("full scan");
    assert_eq!(full.segments_pruned, 0);
    assert_eq!(full.segments_read, 10);
    assert!(
        stats.bytes_scanned < full.bytes_scanned / 5,
        "pruned scan read {} bytes, full scan {}",
        stats.bytes_scanned,
        full.bytes_scanned
    );

    // An equality probe on the clustered key touches exactly one segment.
    let (rs_eq, eq_stats) = db
        .execute_sql("SELECT b FROM t WHERE a = 555", &[])
        .expect("point query");
    assert_eq!(rs_eq.rows, vec![vec![Value::Int(555 % 13)]]);
    assert_eq!(eq_stats.segments_read, 1);
    assert_eq!(eq_stats.segments_pruned, 9);

    // A predicate no row satisfies prunes everything — zero bytes read.
    let (rs_none, none_stats) = db
        .execute_sql("SELECT a FROM t WHERE a > 5000", &[])
        .expect("empty scan");
    assert!(rs_none.is_empty());
    assert_eq!(none_stats.segments_pruned, 10);
    assert_eq!(none_stats.bytes_scanned, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cache_serves_repeat_scans_without_rereading() {
    let dir = fresh_dir("cache");
    let db = clustered_disk_db(&dir, 400, 50);
    let store = Arc::clone(db.store().expect("disk backed"));
    let (_, _) = db.execute_sql("SELECT a FROM t", &[]).expect("cold scan");
    let (_, misses_cold) = store.cache().stats();
    assert_eq!(misses_cold, 8, "cold scan decodes every segment once");
    let (_, _) = db.execute_sql("SELECT a FROM t", &[]).expect("warm scan");
    let (hits, misses_warm) = store.cache().stats();
    assert_eq!(misses_warm, misses_cold, "warm scan must not re-decode");
    assert!(hits >= 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopen_serves_persisted_rows_and_insert_tail_needs_persist() {
    let dir = fresh_dir("reopen");
    {
        let mut db = Database::open(&dir).expect("fresh open");
        db.create_table(lineitem_like_schema());
        db.bulk_load("t", rows_from(&[(1, 10, 0, 5), (2, 20, 1, 6)]))
            .expect("bulk load");
        // Single-row inserts sit in the in-memory tail until persisted.
        db.insert("t", rows_from(&[(3, 30, 2, 7)]).remove(0))
            .expect("insert");
        db.persist().expect("flush tail");
    }
    let db = Database::open(&dir).expect("reopen");
    let (rs, _) = db
        .execute_sql("SELECT b FROM t ORDER BY b", &[])
        .expect("query after reopen");
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(10)],
            vec![Value::Int(20)],
            vec![Value::Int(30)]
        ]
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_bulk_load_is_invisible_after_reopen() {
    let dir = fresh_dir("crash");
    let store = open_small_store(&dir, 4);
    {
        let mut db = Database::with_store(Arc::clone(&store));
        db.create_table(lineitem_like_schema());
        db.bulk_load("t", rows_from(&[(1, 1, 0, 1), (2, 2, 1, 2)]))
            .expect("pre-crash load");
    }
    // Simulated kill mid-load: segments hit the disk, the commit never runs.
    {
        let mut load = store.begin_load("t");
        let rows = rows_from(&[(8, 8, 0, 8), (9, 9, 1, 9)]);
        let columns: Vec<Vec<Value>> = (0..4)
            .map(|c| rows.iter().map(|r| r[c].clone()).collect())
            .collect();
        load.add_segment(&columns).expect("segment written");
        std::mem::forget(load); // a kill runs no destructors
    }
    drop(store);

    let db = Database::open(&dir).expect("reopen after crash");
    let (rs, stats) = db
        .execute_sql("SELECT b FROM t ORDER BY b", &[])
        .expect("query");
    // Exactly the pre-load state: the torn load contributed nothing.
    assert_eq!(rs.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    assert_eq!(stats.rows_scanned, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_segment_fails_the_query_not_the_results() {
    let dir = fresh_dir("corrupt");
    let db = clustered_disk_db(&dir, 120, 40);
    // Flip one byte in one committed segment file.
    let seg_file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("a segment file exists");
    let mut bytes = std::fs::read(&seg_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg_file, bytes).unwrap();

    let err = db
        .execute_sql("SELECT a FROM t", &[])
        .expect_err("corruption must fail the scan");
    assert!(
        err.message.contains("checksum"),
        "error should name the checksum: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_index_file_falls_back_to_full_scan() {
    let dir = fresh_dir("idxcorrupt");
    let sql = "SELECT b FROM t WHERE a BETWEEN 5 AND 8";
    let (expected, idx_path) = {
        let db = clustered_disk_db(&dir, 30, 30); // one segment, one .idx
        let (rs, stats) = db.execute_sql(sql, &[]).expect("indexed query");
        assert!(stats.index_probes >= 1, "the pristine index must be probed");
        let idx = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "idx"))
            .expect("an index file exists");
        (format!("{:?}", rs.rows), idx)
    };
    let pristine = std::fs::read(&idx_path).unwrap();
    // Every possible single-byte corruption: the store reports a typed error,
    // and the engine silently degrades to the full scan — same rows, no
    // panic, no probe against poisoned postings.
    for i in 0..pristine.len() {
        let mut corrupted = pristine.clone();
        corrupted[i] ^= 0xFF;
        std::fs::write(&idx_path, &corrupted).unwrap();
        // Fresh open per flip so no decoded index lingers in a cache.
        let db = Database::open(&dir).expect("reopen");
        let store = Arc::clone(db.store().expect("disk backed"));
        let meta = store.with_table_meta("t", |m| {
            m.expect("table exists").segments[0]
                .index
                .clone()
                .expect("segment is indexed")
        });
        let err = store
            .read_indexes(&meta)
            .expect_err("corruption must surface as a typed error");
        assert!(!err.message.is_empty(), "byte {i}");
        let (rs, stats) = db.execute_sql(sql, &[]).expect("query survives corruption");
        assert_eq!(format!("{:?}", rs.rows), expected, "byte {i}");
        assert_eq!(
            stats.index_probes, 0,
            "byte {i}: corrupt index must not seed"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn env_selected_disk_databases_clean_up_their_temp_dir() {
    // `Database::new()` honors MONOMI_STORAGE, which this test cannot mutate
    // safely; exercise the same path through the explicit constructors.
    let dir = fresh_dir("tmpclean");
    {
        let store = open_small_store(&dir, 8);
        let mut db = Database::with_store(store);
        db.create_table(lineitem_like_schema());
        assert!(db.is_disk_backed());
        assert_eq!(db.table("t").unwrap().backing_name(), "disk");
    }
    // `with_store` does not own the directory — it must still exist...
    assert!(dir.exists());
    std::fs::remove_dir_all(&dir).ok();
    // ...while `Database::new()` under the default env stays in memory.
    let db = Database::new();
    assert!(!db.is_disk_backed() || std::env::var("MONOMI_STORAGE").is_ok());
}

/// Persisted artifacts are deterministic: two databases built by the same
/// sequence of operations — tables created in non-alphabetical order so a
/// hash-ordered table map would flush them in random order — produce
/// byte-identical MANIFESTs (which embed every segment file name, checksum,
/// and zone map). Regression test for `Database::tables` being an ordered
/// map; see `Database::persist`.
#[test]
fn persist_produces_byte_identical_manifests() {
    fn build(dir: &PathBuf) -> Vec<u8> {
        let store = open_small_store(dir, 4);
        let mut db = Database::with_store(store);
        for name in ["zulu", "mike", "alpha", "quebec", "victor", "echo"] {
            db.create_table(TableSchema::new(
                name,
                vec![
                    ColumnDef::new("k", ColumnType::Int),
                    ColumnDef::new("v", ColumnType::Str),
                ],
            ));
            let rows: Vec<Vec<Value>> = (0..10)
                .map(|i| vec![Value::Int(i), Value::Str(format!("{name}-{i}"))])
                .collect();
            db.bulk_load(name, rows).unwrap();
        }
        db.persist().unwrap();
        std::fs::read(dir.join("MANIFEST")).expect("manifest exists after persist")
    }

    let (d1, d2) = (fresh_dir("det1"), fresh_dir("det2"));
    let (m1, m2) = (build(&d1), build(&d2));
    assert_eq!(
        m1, m2,
        "identical build sequences must persist byte-identical manifests"
    );
    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}
