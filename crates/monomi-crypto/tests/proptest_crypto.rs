//! Property-based tests for the encryption schemes: roundtrips, determinism,
//! order preservation, and homomorphic correctness.

use monomi_crypto::{
    i64_to_ordered_u64, DetBytes, FormatPreservingCipher, MasterKey, OpeCipher, PackedEncryptor,
    PackingLayout, PaillierKey, PaillierSum, RndCipher,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fpe_roundtrip(v in any::<u64>(), key in any::<[u8; 16]>()) {
        let fpe = FormatPreservingCipher::new(&key, 64);
        prop_assert_eq!(fpe.decrypt(fpe.encrypt(v)), v);
    }

    #[test]
    fn fpe_32bit_stays_in_domain(v in 0u64..(1 << 32), key in any::<[u8; 16]>()) {
        let fpe = FormatPreservingCipher::new(&key, 32);
        let c = fpe.encrypt(v);
        prop_assert!(c < (1 << 32));
        prop_assert_eq!(fpe.decrypt(c), v);
    }

    #[test]
    fn det_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let det = DetBytes::from_master(b"proptest-master", "t.c");
        prop_assert_eq!(det.decrypt(&det.encrypt(&data)), data);
    }

    #[test]
    fn rnd_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rnd = RndCipher::from_master(b"proptest-master", "t.c");
        prop_assert_eq!(rnd.decrypt(&rnd.encrypt(&mut rng, &data)), data);
    }

    #[test]
    fn ope_preserves_order(a in any::<u64>(), b in any::<u64>()) {
        let ope = OpeCipher::from_master(b"proptest-master", "t.c");
        let (ca, cb) = (ope.encrypt(a), ope.encrypt(b));
        prop_assert_eq!(a.cmp(&b), ca.cmp(&cb));
    }

    #[test]
    fn ope_signed_bias_preserves_order(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(
            a.cmp(&b),
            i64_to_ordered_u64(a).cmp(&i64_to_ordered_u64(b))
        );
    }

    #[test]
    fn master_key_det_is_deterministic(v in 0u64..(1 << 40)) {
        let mk = MasterKey::from_bytes([3u8; 32]);
        let c1 = mk.det_int("t", "c", 40).encrypt(v);
        let c2 = mk.det_int("t", "c", 40).encrypt(v);
        prop_assert_eq!(c1, c2);
    }
}

// Paillier proptests use a single shared key because key generation is the
// expensive part; correctness of the homomorphism is what we are testing.
fn shared_key() -> &'static PaillierKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<PaillierKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(2024);
        PaillierKey::generate(&mut rng, 256)
    })
}

// Keys at several modulus sizes (and thus CRT limb geometries) for the
// CRT-vs-classic decryption equivalence tests.
fn sized_keys() -> &'static [PaillierKey] {
    use std::sync::OnceLock;
    static KEYS: OnceLock<Vec<PaillierKey>> = OnceLock::new();
    KEYS.get_or_init(|| {
        [128usize, 192, 320]
            .iter()
            .enumerate()
            .map(|(i, &bits)| {
                let mut rng = StdRng::seed_from_u64(7000 + i as u64);
                PaillierKey::generate(&mut rng, bits)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn paillier_roundtrip(m in any::<u64>(), seed in any::<u64>()) {
        let key = shared_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let c = key.encrypt_u64(&mut rng, m);
        prop_assert_eq!(key.decrypt_u64(&c), m);
    }

    #[test]
    fn paillier_homomorphic_sum(values in proptest::collection::vec(0u64..1_000_000, 1..20), seed in any::<u64>()) {
        let key = shared_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = values.iter().map(|&v| key.encrypt_u64(&mut rng, v)).collect();
        let sum = key.sum_ciphertexts(&cts);
        prop_assert_eq!(key.decrypt_u64(&sum), values.iter().sum::<u64>());
    }

    #[test]
    fn crt_decrypt_matches_classic_across_key_sizes(m_bits in 0usize..110, lo in any::<u64>(), seed in any::<u64>()) {
        // A random plaintext of up to m_bits bits (capped below every key's
        // capacity), decrypted by both the CRT and the classic path.
        let mut rng = StdRng::seed_from_u64(seed);
        for key in sized_keys() {
            let bits = m_bits.min(key.plaintext_bits() - 1);
            let m = monomi_math::BigUint::from_u64(lo)
                .rem(&monomi_math::BigUint::one().shl(bits.max(1)));
            let c = key.encrypt(&mut rng, &m);
            prop_assert_eq!(key.decrypt(&c), key.decrypt_classic(&c));
            prop_assert_eq!(key.decrypt(&c), m);
        }
    }

    #[test]
    fn mont_resident_sum_matches_fold_of_adds(values in proptest::collection::vec(0u64..1_000_000, 0..16), seed in any::<u64>()) {
        let key = shared_key();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = values.iter().map(|&v| key.encrypt_u64(&mut rng, v)).collect();
        let summed = key.sum_ciphertexts(&cts);
        let folded = cts
            .iter()
            .fold(key.one_ciphertext(), |acc, c| key.add_ciphertexts(&acc, c));
        // Ciphertexts are equal as group elements (identical products mod n²),
        // not just equal after decryption.
        prop_assert_eq!(summed, folded);
    }

    /// The morsel-parallel aggregation contract: splitting a row range into
    /// arbitrary chunks, folding each into its own drifting accumulator, and
    /// merging the partials in order yields the byte-identical group element
    /// (and plaintext sum) of the single-threaded fold.
    #[test]
    fn paillier_sum_merge_of_split_ranges_matches_serial_fold(
        values in proptest::collection::vec(0u64..1_000_000, 0..48),
        chunk in 1usize..9,
        seed in any::<u64>())
    {
        let key = shared_key();
        let ctx = key.ctx_n_squared();
        let mut rng = StdRng::seed_from_u64(seed);
        let cts: Vec<_> = values.iter().map(|&v| key.encrypt_u64(&mut rng, v)).collect();

        let mut serial = PaillierSum::new(ctx);
        for c in &cts {
            serial.add(ctx, c);
        }

        let mut merged = PaillierSum::new(ctx);
        for range in cts.chunks(chunk) {
            let mut partial = PaillierSum::new(ctx);
            for c in range {
                partial.add(ctx, c);
            }
            merged.merge(ctx, &partial);
        }

        prop_assert_eq!(serial.count(), merged.count());
        // Byte-identical ciphertexts, not just decrypt-equal.
        prop_assert_eq!(serial.finish(ctx), merged.finish(ctx));
        prop_assert_eq!(merged.finish(ctx), key.sum_ciphertexts(&cts));
        prop_assert_eq!(
            key.decrypt_u64(&merged.finish(ctx)),
            values.iter().sum::<u64>()
        );
    }

    #[test]
    fn packed_column_sums_match(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..0xffff, 3..=3), 1..40),
        seed in any::<u64>())
    {
        let key = shared_key();
        let layout = PackingLayout::plan(key, 3, 16, 16);
        let enc = PackedEncryptor::new(key, layout);
        let mut rng = StdRng::seed_from_u64(seed);
        let cts = enc.encrypt_rows(&mut rng, &rows);
        let sums = enc.decrypt_column_sums(&enc.aggregate(&cts));
        for col in 0..3 {
            let expected: u128 = rows.iter().map(|r| r[col] as u128).sum();
            prop_assert_eq!(sums[col], expected);
        }
    }
}
