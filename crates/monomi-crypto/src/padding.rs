//! PKCS#7 padding for the AES-block-based ciphers (DET bytes and RND),
//! shared so the pad/unpad pair cannot diverge between schemes.

/// Pads `data` to a multiple of 16 bytes; always adds at least one byte.
pub(crate) fn pkcs7_pad(data: &[u8]) -> Vec<u8> {
    let pad_len = 16 - (data.len() % 16);
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad_len as u8, pad_len));
    out
}

/// Strips PKCS#7 padding; panics on malformed input (these ciphers only ever
/// unpad data they produced themselves, so malformed padding is a logic bug,
/// not an input error).
pub(crate) fn pkcs7_unpad(data: &[u8]) -> Vec<u8> {
    let pad_len = *data.last().expect("empty padded data") as usize;
    assert!(
        (1..=16).contains(&pad_len) && pad_len <= data.len(),
        "invalid padding"
    );
    data[..data.len() - pad_len].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_all_lengths() {
        for len in 0..=48 {
            let data: Vec<u8> = (0..len as u8).collect();
            let padded = pkcs7_pad(&data);
            assert_eq!(padded.len() % 16, 0);
            assert!(padded.len() > data.len(), "padding must always add bytes");
            assert_eq!(pkcs7_unpad(&padded), data);
        }
    }

    #[test]
    #[should_panic(expected = "invalid padding")]
    fn rejects_invalid_padding() {
        pkcs7_unpad(&[0u8; 16]);
    }
}
