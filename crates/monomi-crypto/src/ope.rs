//! Order-preserving encryption (OPE).
//!
//! MONOMI uses OPE for server-side range predicates, MAX/MIN, and ORDER BY
//! (Table 1). The paper uses the Boldyreva et al. construction; this crate
//! substitutes a keyed recursive range-splitting construction with the same
//! interface and the same leakage class (order, plus partial plaintext
//! information): the 64-bit plaintext domain is mapped into a 127-bit
//! ciphertext range by descending a binary tree whose split points are chosen
//! by a PRF, so the mapping is deterministic, strictly monotone, and keyed.
//!
//! Signed values are supported through an order-preserving bias
//! ([`i64_to_ordered_u64`]) so that negative numbers sort before positive ones.

use crate::aes::Aes128;
use crate::sha256::derive_key;

/// Width of the ciphertext range in bits. Chosen so ciphertexts fit in `u128`
/// with headroom for the expansion the recursive splitting needs.
const RANGE_BITS: u32 = 100;
/// Width of the plaintext domain in bits.
const DOMAIN_BITS: u32 = 64;

/// Keyed order-preserving encryption over `u64` plaintexts.
pub struct OpeCipher {
    aes: Aes128,
}

impl OpeCipher {
    /// Creates the cipher from 16 bytes of key material.
    pub fn new(key: &[u8; 16]) -> Self {
        OpeCipher {
            aes: Aes128::new(key),
        }
    }

    /// Creates the cipher keyed by `master` and `label`.
    pub fn from_master(master: &[u8], label: &str) -> Self {
        let material = derive_key(master, label);
        let mut key = [0u8; 16];
        key.copy_from_slice(&material[..16]);
        Self::new(&key)
    }

    /// Encrypts a plaintext, producing a ciphertext whose numeric order equals
    /// the plaintext order.
    pub fn encrypt(&self, value: u64) -> u128 {
        // Domain [d_lo, d_hi), range [r_lo, r_hi); both half-open.
        let mut d_lo: u128 = 0;
        let mut d_hi: u128 = 1u128 << DOMAIN_BITS;
        let mut r_lo: u128 = 0;
        let mut r_hi: u128 = 1u128 << RANGE_BITS;
        let v = value as u128;
        let mut depth: u32 = 0;
        while d_hi - d_lo > 1 {
            let d_mid = d_lo + (d_hi - d_lo) / 2;
            // The range split must leave at least as much room on each side as
            // the corresponding domain half needs.
            let left_need = d_mid - d_lo;
            let right_need = d_hi - d_mid;
            let r_mid_min = r_lo + left_need;
            let r_mid_max = r_hi - right_need;
            debug_assert!(r_mid_min <= r_mid_max);
            let window = r_mid_max - r_mid_min + 1;
            // PRF on the current domain interval (which identifies the tree
            // node independent of the plaintext path taken).
            let prf_in = ((depth as u128) << 96) ^ (d_lo << 32) ^ d_hi;
            let r = self.aes.prf_u128(prf_in);
            let r_mid = r_mid_min + (r % window);
            if v < d_mid {
                d_hi = d_mid;
                r_hi = r_mid;
            } else {
                d_lo = d_mid;
                r_lo = r_mid;
            }
            depth += 1;
        }
        // Single-value domain interval: its range interval start is the
        // deterministic ciphertext.
        r_lo
    }

    /// Encrypts a signed value order-preservingly.
    pub fn encrypt_i64(&self, value: i64) -> u128 {
        self.encrypt(i64_to_ordered_u64(value))
    }
}

/// Maps `i64` to `u64` such that the unsigned order of outputs equals the
/// signed order of inputs.
pub fn i64_to_ordered_u64(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Inverse of [`i64_to_ordered_u64`].
pub fn ordered_u64_to_i64(v: u64) -> i64 {
    (v ^ (1u64 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved_on_sorted_samples() {
        let ope = OpeCipher::from_master(b"master", "lineitem.l_shipdate.OPE");
        let values: Vec<u64> = vec![
            0,
            1,
            2,
            10,
            100,
            1000,
            12345,
            1 << 20,
            1 << 32,
            (1 << 40) + 7,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let cts: Vec<u128> = values.iter().map(|&v| ope.encrypt(v)).collect();
        for i in 1..cts.len() {
            assert!(cts[i - 1] < cts[i], "order violated at index {i}");
        }
    }

    #[test]
    fn deterministic_and_keyed() {
        let a = OpeCipher::from_master(b"master", "col.OPE");
        let b = OpeCipher::from_master(b"other-master", "col.OPE");
        assert_eq!(a.encrypt(777), a.encrypt(777));
        assert_ne!(a.encrypt(777), b.encrypt(777));
    }

    #[test]
    fn dense_range_strictly_increasing() {
        let ope = OpeCipher::from_master(b"master", "col.OPE");
        let mut prev = None;
        for v in 1_000_000u64..1_000_300 {
            let c = ope.encrypt(v);
            if let Some(p) = prev {
                assert!(c > p, "v={v}");
            }
            prev = Some(c);
        }
    }

    #[test]
    fn signed_bias_preserves_order() {
        let vals = [i64::MIN, -1_000_000, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            assert!(i64_to_ordered_u64(w[0]) < i64_to_ordered_u64(w[1]));
        }
        for &v in &vals {
            assert_eq!(ordered_u64_to_i64(i64_to_ordered_u64(v)), v);
        }
    }

    #[test]
    fn signed_encryption_order() {
        let ope = OpeCipher::from_master(b"master", "col.OPE");
        let vals = [-5000i64, -1, 0, 3, 10_000];
        let cts: Vec<u128> = vals.iter().map(|&v| ope.encrypt_i64(v)).collect();
        for i in 1..cts.len() {
            assert!(cts[i - 1] < cts[i]);
        }
    }
}
