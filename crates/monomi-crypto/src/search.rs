//! SEARCH: keyword search over encrypted text (Song–Wagner–Perrig style).
//!
//! MONOMI uses SEARCH to evaluate `column LIKE '%keyword%'` predicates on the
//! untrusted server without revealing the column contents. Each text value is
//! stored as a set of keyed keyword tokens; a query reveals only the token of
//! the searched keyword, and the server learns which rows match that token
//! (the leakage described in §3 of the paper).

use crate::sha256::{derive_key, hmac_sha256};

/// Per-column searchable-encryption context.
pub struct SearchScheme {
    key: [u8; 32],
}

/// The server-side representation of a searchable text value: the set of
/// keyword tokens, sorted for deterministic storage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SearchCiphertext {
    tokens: Vec<[u8; 16]>,
}

/// A search trapdoor for one keyword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchToken(pub [u8; 16]);

impl SearchScheme {
    /// Creates a scheme keyed by `master` and `label`.
    pub fn from_master(master: &[u8], label: &str) -> Self {
        SearchScheme {
            key: derive_key(master, label),
        }
    }

    fn token_for(&self, word: &str) -> [u8; 16] {
        let mac = hmac_sha256(&self.key, word.to_lowercase().as_bytes());
        let mut out = [0u8; 16];
        out.copy_from_slice(&mac[..16]);
        out
    }

    /// Encrypts a text value into its searchable form (the set of word tokens).
    /// Words are split on non-alphanumeric characters, matching the paper's
    /// single-pattern `LIKE '%word%'` support.
    pub fn encrypt(&self, text: &str) -> SearchCiphertext {
        let mut tokens: Vec<[u8; 16]> = text
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(|w| self.token_for(w))
            .collect();
        tokens.sort_unstable();
        tokens.dedup();
        SearchCiphertext { tokens }
    }

    /// Produces the trapdoor the client sends to the server for a keyword.
    pub fn trapdoor(&self, keyword: &str) -> SearchToken {
        SearchToken(self.token_for(keyword.trim_matches('%')))
    }
}

impl SearchCiphertext {
    /// Server-side matching: does this ciphertext contain the token?
    pub fn matches(&self, token: &SearchToken) -> bool {
        self.tokens.binary_search(&token.0).is_ok()
    }

    /// Serialized size in bytes (for space accounting).
    pub fn size_bytes(&self) -> usize {
        self.tokens.len() * 16
    }

    /// Serializes to bytes for storage in the encrypted database.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.tokens.iter().flatten().copied().collect()
    }

    /// Deserializes from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len().is_multiple_of(16),
            "malformed search ciphertext"
        );
        let tokens = bytes
            .chunks_exact(16)
            .map(|c| {
                let mut t = [0u8; 16];
                t.copy_from_slice(c);
                t
            })
            .collect();
        SearchCiphertext { tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_match_and_mismatch() {
        let scheme = SearchScheme::from_master(b"master", "part.p_comment.SEARCH");
        let ct = scheme.encrypt("Customer complained about slow express delivery");
        assert!(ct.matches(&scheme.trapdoor("express")));
        assert!(ct.matches(&scheme.trapdoor("%slow%")));
        assert!(!ct.matches(&scheme.trapdoor("refund")));
    }

    #[test]
    fn matching_is_case_insensitive() {
        let scheme = SearchScheme::from_master(b"master", "c.SEARCH");
        let ct = scheme.encrypt("Special Requests PENDING");
        assert!(ct.matches(&scheme.trapdoor("pending")));
        assert!(ct.matches(&scheme.trapdoor("SPECIAL")));
    }

    #[test]
    fn tokens_are_keyed() {
        let a = SearchScheme::from_master(b"master-a", "c.SEARCH");
        let b = SearchScheme::from_master(b"master-b", "c.SEARCH");
        let ct = a.encrypt("unusual accounts");
        assert!(!ct.matches(&b.trapdoor("unusual")));
    }

    #[test]
    fn serialization_roundtrip() {
        let scheme = SearchScheme::from_master(b"master", "c.SEARCH");
        let ct = scheme.encrypt("packages wake quickly");
        let restored = SearchCiphertext::from_bytes(&ct.to_bytes());
        assert_eq!(restored, ct);
        assert!(restored.matches(&scheme.trapdoor("wake")));
        assert_eq!(ct.size_bytes(), ct.to_bytes().len());
    }

    #[test]
    fn duplicate_words_deduplicated() {
        let scheme = SearchScheme::from_master(b"master", "c.SEARCH");
        let ct = scheme.encrypt("red red red green");
        assert_eq!(ct.size_bytes(), 2 * 16);
    }
}
