//! Master key management and per-column key derivation.
//!
//! The trusted client holds a single master key; every (table, column,
//! encryption scheme) combination gets an independent sub-key derived with
//! HMAC-SHA-256, so compromising one column's key (e.g. by an OPE attack)
//! does not affect the others.

use crate::det::{DetBytes, FormatPreservingCipher};
use crate::ope::OpeCipher;
use crate::rnd::RndCipher;
use crate::search::SearchScheme;
use crate::sha256::derive_key;
use rand::Rng;

/// The client's master secret.
#[derive(Clone)]
pub struct MasterKey {
    material: [u8; 32],
}

impl MasterKey {
    /// Creates a master key from explicit material (e.g. loaded from a vault).
    pub fn from_bytes(material: [u8; 32]) -> Self {
        MasterKey { material }
    }

    /// Generates a fresh random master key.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut material = [0u8; 32];
        rng.fill(&mut material);
        MasterKey { material }
    }

    /// Raw key material (used only by the client library's persistence layer).
    pub fn material(&self) -> &[u8; 32] {
        &self.material
    }

    fn label(table: &str, column: &str, scheme: &str) -> String {
        format!("{table}.{column}.{scheme}")
    }

    /// Randomized (RND) cipher for a column.
    pub fn rnd(&self, table: &str, column: &str) -> RndCipher {
        RndCipher::from_master(&self.material, &Self::label(table, column, "RND"))
    }

    /// Deterministic format-preserving cipher for an integer column of the
    /// given bit width.
    pub fn det_int(&self, table: &str, column: &str, bits: u32) -> FormatPreservingCipher {
        let material = derive_key(&self.material, &Self::label(table, column, "DET"));
        FormatPreservingCipher::from_key_material(&material, bits)
    }

    /// Deterministic wide-block cipher for a string column.
    pub fn det_bytes(&self, table: &str, column: &str) -> DetBytes {
        DetBytes::from_master(&self.material, &Self::label(table, column, "DET"))
    }

    /// Order-preserving cipher for a column.
    pub fn ope(&self, table: &str, column: &str) -> OpeCipher {
        OpeCipher::from_master(&self.material, &Self::label(table, column, "OPE"))
    }

    /// Keyword-search scheme for a text column.
    pub fn search(&self, table: &str, column: &str) -> SearchScheme {
        SearchScheme::from_master(&self.material, &Self::label(table, column, "SEARCH"))
    }
}

impl std::fmt::Debug for MasterKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "MasterKey(****)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn per_column_keys_are_independent() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let a = mk.det_int("lineitem", "l_quantity", 32);
        let b = mk.det_int("lineitem", "l_discount", 32);
        assert_ne!(a.encrypt(5), b.encrypt(5));
    }

    #[test]
    fn same_column_key_is_stable() {
        let mk = MasterKey::from_bytes([7u8; 32]);
        let a = mk.ope("orders", "o_orderdate");
        let b = mk.ope("orders", "o_orderdate");
        assert_eq!(a.encrypt(123456), b.encrypt(123456));
    }

    #[test]
    fn generated_keys_differ() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = MasterKey::generate(&mut rng);
        let b = MasterKey::generate(&mut rng);
        assert_ne!(a.material(), b.material());
    }

    #[test]
    fn debug_does_not_leak_material() {
        let mk = MasterKey::from_bytes([9u8; 32]);
        assert_eq!(format!("{mk:?}"), "MasterKey(****)");
    }
}
