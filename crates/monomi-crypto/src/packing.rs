//! Paillier plaintext packing and grouped homomorphic addition (§5.2–§5.3 of
//! the paper).
//!
//! A Paillier plaintext is large (the paper uses 1,024 bits) while the values
//! MONOMI aggregates are 32–64 bit integers. Following Ge & Zdonik, MONOMI
//! packs multiple values into one plaintext:
//!
//! * **Grouped homomorphic addition** (one row, many columns): all columns that
//!   a query aggregates together occupy fixed slots of the same plaintext, so a
//!   single ciphertext multiplication per row advances *all* SUM() aggregates
//!   at once.
//! * **Multi-row packing** (many rows, same columns): consecutive rows share a
//!   ciphertext, reducing ciphertext expansion on disk by roughly the number of
//!   rows per ciphertext.
//!
//! Each slot is padded with `log2(max_rows)` zero bits so sums cannot overflow
//! into the neighbouring slot (the paper assumes ~2^27 rows).

use crate::paillier::PaillierKey;
use monomi_math::BigUint;
use rand::Rng;

/// Describes how values are laid out inside a Paillier plaintext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackingLayout {
    /// Bit width of each packed column's value.
    pub value_bits: u32,
    /// Extra zero padding per slot to absorb carries from summing many rows.
    pub overflow_bits: u32,
    /// Number of columns packed side by side for one row (grouped addition).
    pub columns: usize,
    /// Number of rows packed into a single ciphertext.
    pub rows_per_ciphertext: usize,
}

impl PackingLayout {
    /// Computes a layout for `columns` aggregated columns of `value_bits` wide
    /// values, assuming at most `2^overflow_bits` rows will ever be summed,
    /// fitting as many rows per ciphertext as the key's plaintext allows.
    pub fn plan(key: &PaillierKey, columns: usize, value_bits: u32, overflow_bits: u32) -> Self {
        assert!(columns >= 1, "need at least one column");
        let slot_bits = (value_bits + overflow_bits) as usize;
        let row_bits = slot_bits * columns;
        let capacity = key.plaintext_bits();
        assert!(
            row_bits <= capacity,
            "one row of {columns} columns ({row_bits} bits) exceeds plaintext capacity ({capacity} bits)"
        );
        // The paper does not split a row across ciphertexts (§5.3), so rows per
        // ciphertext is the floor of capacity / row width.
        let rows_per_ciphertext = (capacity / row_bits).max(1);
        PackingLayout {
            value_bits,
            overflow_bits,
            columns,
            rows_per_ciphertext,
        }
    }

    /// Bits occupied by a single slot (value + overflow padding).
    pub fn slot_bits(&self) -> u32 {
        self.value_bits + self.overflow_bits
    }

    /// Bits occupied by one packed row.
    pub fn row_bits(&self) -> u32 {
        self.slot_bits() * self.columns as u32
    }

    /// Bit offset of column `col` of row `row_in_ct` within the plaintext.
    pub fn slot_offset(&self, row_in_ct: usize, col: usize) -> u32 {
        assert!(col < self.columns && row_in_ct < self.rows_per_ciphertext);
        self.row_bits() * row_in_ct as u32 + self.slot_bits() * col as u32
    }

    /// Number of ciphertexts required for `rows` rows.
    pub fn ciphertexts_for(&self, rows: usize) -> usize {
        rows.div_ceil(self.rows_per_ciphertext)
    }
}

/// Packs and encrypts a table of per-row column values into Paillier
/// ciphertexts according to a layout, and unpacks decrypted aggregate sums.
pub struct PackedEncryptor<'a> {
    key: &'a PaillierKey,
    layout: PackingLayout,
}

impl<'a> PackedEncryptor<'a> {
    /// Creates an encryptor over `key` with the given layout.
    pub fn new(key: &'a PaillierKey, layout: PackingLayout) -> Self {
        PackedEncryptor { key, layout }
    }

    /// The layout being used.
    pub fn layout(&self) -> &PackingLayout {
        &self.layout
    }

    /// Packs the given rows (each a slice of `columns` u64 values) into a
    /// sequence of ciphertexts. The final ciphertext is zero-padded if the row
    /// count is not a multiple of `rows_per_ciphertext`.
    pub fn encrypt_rows<R: Rng + ?Sized>(&self, rng: &mut R, rows: &[Vec<u64>]) -> Vec<BigUint> {
        let max_value = if self.layout.value_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.layout.value_bits) - 1
        };
        // One scratch-carrying encryption session for the whole bulk load;
        // each packed plaintext is encrypted as soon as its chunk is built,
        // so peak memory stays at ciphertexts + one plaintext.
        let mut session = self.key.encryptor();
        let mut out = Vec::with_capacity(self.layout.ciphertexts_for(rows.len()));
        for chunk in rows.chunks(self.layout.rows_per_ciphertext) {
            let mut plaintext = BigUint::zero();
            for (row_idx, row) in chunk.iter().enumerate() {
                assert_eq!(row.len(), self.layout.columns, "row has wrong arity");
                for (col_idx, &value) in row.iter().enumerate() {
                    assert!(
                        value <= max_value,
                        "value {value} exceeds {} bit slot",
                        self.layout.value_bits
                    );
                    let offset = self.layout.slot_offset(row_idx, col_idx) as usize;
                    plaintext = plaintext.add(&BigUint::from_u64(value).shl(offset));
                }
            }
            out.push(session.encrypt(rng, &plaintext));
        }
        out
    }

    /// Homomorphically sums a set of packed ciphertexts (e.g. all ciphertexts
    /// covering the rows of one GROUP BY group) into a single ciphertext.
    pub fn aggregate(&self, ciphertexts: &[BigUint]) -> BigUint {
        self.key.sum_ciphertexts(ciphertexts.iter())
    }

    /// Decrypts an aggregated ciphertext and extracts the per-column sums.
    ///
    /// Because the aggregate is a sum over both the packed rows and the
    /// homomorphically combined ciphertexts, the per-column total is the sum of
    /// that column's slot across every packed row position.
    pub fn decrypt_column_sums(&self, aggregated: &BigUint) -> Vec<u128> {
        let plaintext = self.key.decrypt(aggregated);
        let slot_bits = self.layout.slot_bits() as usize;
        let mut sums = vec![0u128; self.layout.columns];
        for row_idx in 0..self.layout.rows_per_ciphertext {
            for (col_idx, sum) in sums.iter_mut().enumerate() {
                let offset = self.layout.slot_offset(row_idx, col_idx) as usize;
                let slot = plaintext.shr(offset).low_bits(slot_bits);
                *sum += slot.to_u128().expect("slot exceeds 128 bits");
            }
        }
        sums
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key() -> PaillierKey {
        let mut rng = StdRng::seed_from_u64(99);
        PaillierKey::generate(&mut rng, 384)
    }

    #[test]
    fn layout_planning_respects_capacity() {
        let key = test_key();
        let layout = PackingLayout::plan(&key, 2, 32, 20);
        assert_eq!(layout.columns, 2);
        assert_eq!(layout.slot_bits(), 52);
        assert_eq!(layout.row_bits(), 104);
        assert!(layout.rows_per_ciphertext >= 3);
        assert!(layout.row_bits() as usize * layout.rows_per_ciphertext <= key.plaintext_bits());
    }

    #[test]
    #[should_panic]
    fn layout_rejects_oversized_rows() {
        let key = test_key();
        // 8 columns of 60-bit slots will not fit in a 384-bit plaintext.
        PackingLayout::plan(&key, 8, 40, 20);
    }

    #[test]
    fn grouped_addition_single_ciphertext() {
        let key = test_key();
        let layout = PackingLayout::plan(&key, 3, 24, 16);
        let enc = PackedEncryptor::new(&key, layout);
        let mut rng = StdRng::seed_from_u64(5);
        let rows = vec![
            vec![100u64, 200, 300],
            vec![1, 2, 3],
            vec![40, 50, 60],
            vec![7, 8, 9],
            vec![1000, 2000, 3000],
        ];
        let cts = enc.encrypt_rows(&mut rng, &rows);
        let agg = enc.aggregate(&cts);
        let sums = enc.decrypt_column_sums(&agg);
        assert_eq!(sums, vec![1148u128, 2260, 3372]);
    }

    #[test]
    fn multi_row_packing_reduces_ciphertext_count() {
        let key = test_key();
        let layout = PackingLayout::plan(&key, 1, 20, 16);
        let enc = PackedEncryptor::new(&key, layout.clone());
        let mut rng = StdRng::seed_from_u64(6);
        let rows: Vec<Vec<u64>> = (0..50).map(|i| vec![i as u64]).collect();
        let cts = enc.encrypt_rows(&mut rng, &rows);
        assert_eq!(cts.len(), layout.ciphertexts_for(50));
        assert!(cts.len() < 50, "packing should reduce ciphertext count");
        let sums = enc.decrypt_column_sums(&enc.aggregate(&cts));
        assert_eq!(sums[0], (0..50u128).sum());
    }

    #[test]
    fn overflow_padding_absorbs_many_rows() {
        let key = test_key();
        // 16-bit values with 12 bits of padding: up to 4096 rows of max values.
        let layout = PackingLayout::plan(&key, 1, 16, 12);
        let enc = PackedEncryptor::new(&key, layout);
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<u64>> = (0..1000).map(|_| vec![0xffff]).collect();
        let cts = enc.encrypt_rows(&mut rng, &rows);
        let sums = enc.decrypt_column_sums(&enc.aggregate(&cts));
        assert_eq!(sums[0], 1000 * 0xffffu128);
    }

    #[test]
    fn ciphertext_expansion_is_amortized() {
        // The paper reports ~90% reduction in per-row Paillier space overhead
        // for a single 64-bit column thanks to packing. Verify the ratio
        // direction: packed bytes per row << one ciphertext per row.
        let key = test_key();
        let layout = PackingLayout::plan(&key, 1, 32, 16);
        let per_row_unpacked = key.ciphertext_bytes();
        let per_row_packed = key.ciphertext_bytes() / layout.rows_per_ciphertext;
        assert!(per_row_packed * 2 < per_row_unpacked);
    }
}
