#![forbid(unsafe_code)]
//! # monomi-crypto
//!
//! The encryption schemes used by MONOMI (Tu et al., VLDB 2013) to execute
//! analytical SQL over encrypted data on an untrusted server, implemented from
//! scratch on top of [`monomi_math`].
//!
//! The schemes mirror Table 1 of the paper:
//!
//! | Scheme | Module | Server-side operations enabled | Leakage |
//! |--------|--------|-------------------------------|---------|
//! | Randomized (RND) | [`rnd`] | none | none |
//! | Deterministic (DET) | [`det`] | equality, `IN`, `GROUP BY`, equi-join | duplicates |
//! | Order-preserving (OPE) | [`ope`] | comparisons, `MAX`/`MIN`, `ORDER BY` | order (+ partial plaintext) |
//! | Paillier (HOM) | [`paillier`], [`packing`] | `SUM`, `AVG` | none |
//! | SEARCH | [`search`] | `LIKE '%kw%'` | which rows match a searched keyword |
//!
//! Key management (one derived key per table/column/scheme) lives in [`keys`].

pub mod aes;
pub mod det;
pub mod keys;
pub mod ope;
pub mod packing;
pub(crate) mod padding;
pub mod paillier;
pub mod rnd;
pub mod search;
pub mod sha256;

pub use aes::Aes128;
pub use det::{DetBytes, FormatPreservingCipher};
pub use keys::MasterKey;
pub use ope::{i64_to_ordered_u64, ordered_u64_to_i64, OpeCipher};
pub use packing::{PackedEncryptor, PackingLayout};
pub use paillier::{PaillierEncryptSession, PaillierKey, PaillierSum};
pub use rnd::RndCipher;
pub use search::{SearchCiphertext, SearchScheme, SearchToken};
