//! Randomized (semantically secure) encryption: AES in CBC mode with a random
//! IV. This is MONOMI's strongest scheme — ciphertexts reveal nothing but their
//! length — and is used for columns that never need server-side computation.

use crate::aes::Aes128;
use crate::padding::{pkcs7_pad, pkcs7_unpad};
use crate::sha256::derive_key;
use rand::Rng;

/// AES-128-CBC with a random IV prepended to the ciphertext.
pub struct RndCipher {
    aes: Aes128,
}

impl RndCipher {
    /// Creates the cipher from 16 bytes of key material.
    pub fn new(key: &[u8; 16]) -> Self {
        RndCipher {
            aes: Aes128::new(key),
        }
    }

    /// Creates the cipher keyed by `master` and `label`.
    pub fn from_master(master: &[u8], label: &str) -> Self {
        let material = derive_key(master, label);
        let mut key = [0u8; 16];
        key.copy_from_slice(&material[..16]);
        Self::new(&key)
    }

    /// Encrypts `plaintext` with a fresh random IV. Output layout is
    /// `IV (16 bytes) || CBC ciphertext`.
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, plaintext: &[u8]) -> Vec<u8> {
        let mut iv = [0u8; 16];
        rng.fill(&mut iv);
        self.encrypt_with_iv(&iv, plaintext)
    }

    /// Encrypts with a caller-supplied IV. Exposed for deterministic tests.
    pub fn encrypt_with_iv(&self, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
        let mut data = pkcs7_pad(plaintext);
        let mut prev = *iv;
        for chunk in data.chunks_exact_mut(16) {
            for i in 0..16 {
                chunk[i] ^= prev[i];
            }
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.aes.encrypt_block(&mut block);
            chunk.copy_from_slice(&block);
            prev = block;
        }
        let mut out = iv.to_vec();
        out.extend_from_slice(&data);
        out
    }

    /// Decrypts a ciphertext produced by [`encrypt`](Self::encrypt).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Vec<u8> {
        assert!(
            ciphertext.len() >= 32 && ciphertext.len().is_multiple_of(16),
            "RND ciphertext must be IV + at least one block"
        );
        let iv: [u8; 16] = ciphertext[..16].try_into().unwrap();
        let body = &ciphertext[16..];
        let mut out = Vec::with_capacity(body.len());
        let mut prev = iv;
        for chunk in body.chunks_exact(16) {
            let cblock: [u8; 16] = chunk.try_into().unwrap();
            let mut block = cblock;
            self.aes.decrypt_block(&mut block);
            for i in 0..16 {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = cblock;
        }
        pkcs7_unpad(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip() {
        let mut rng = StdRng::seed_from_u64(42);
        let rnd = RndCipher::from_master(b"master", "orders.o_comment.RND");
        for msg in [
            b"".as_slice(),
            b"x",
            b"sensitive comment about a customer order",
        ] {
            let ct = rnd.encrypt(&mut rng, msg);
            assert_eq!(rnd.decrypt(&ct), msg);
        }
    }

    #[test]
    fn randomized_ciphertexts_differ() {
        let mut rng = StdRng::seed_from_u64(43);
        let rnd = RndCipher::from_master(b"master", "c");
        let a = rnd.encrypt(&mut rng, b"same plaintext");
        let b = rnd.encrypt(&mut rng, b"same plaintext");
        assert_ne!(a, b);
        assert_eq!(rnd.decrypt(&a), rnd.decrypt(&b));
    }

    #[test]
    fn ciphertext_length_is_iv_plus_padded_blocks() {
        let mut rng = StdRng::seed_from_u64(44);
        let rnd = RndCipher::from_master(b"master", "c");
        assert_eq!(rnd.encrypt(&mut rng, b"").len(), 32);
        assert_eq!(rnd.encrypt(&mut rng, &[0u8; 15]).len(), 32);
        assert_eq!(rnd.encrypt(&mut rng, &[0u8; 16]).len(), 48);
    }
}
