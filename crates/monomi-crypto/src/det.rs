//! Deterministic encryption.
//!
//! MONOMI uses deterministic encryption (DET) for equality predicates, GROUP BY
//! keys, and equi-joins: equal plaintexts map to equal ciphertexts, revealing
//! duplicates but nothing else (Table 1 of the paper).
//!
//! Two constructions are provided, mirroring the paper's space-efficient
//! encryption (§5.2):
//!
//! * [`FormatPreservingCipher`] — an FFX-style balanced Feistel network over an
//!   `n`-bit integer domain, producing `n`-bit ciphertexts for `n ≤ 64`. This is
//!   what keeps small integer columns (dates, flags, extracted years) from
//!   blowing up to a full AES block.
//! * [`DetBytes`] — a CMC-style two-pass deterministic wide-block mode for byte
//!   strings (used for VARCHAR columns), padded to the AES block size.

use crate::aes::Aes128;
use crate::padding::{pkcs7_pad, pkcs7_unpad};
use crate::sha256::derive_key;

/// Number of Feistel rounds for the format-preserving cipher. NIST recommends
/// at least 8 for FFX-like constructions; we use 10.
const FEISTEL_ROUNDS: usize = 10;

/// FFX-style format-preserving deterministic cipher over `[0, 2^bits)`.
pub struct FormatPreservingCipher {
    aes: Aes128,
    bits: u32,
    left_bits: u32,
    right_bits: u32,
}

impl FormatPreservingCipher {
    /// Creates a cipher over a `bits`-wide binary domain (2 ≤ bits ≤ 64).
    pub fn new(key: &[u8; 16], bits: u32) -> Self {
        assert!((2..=64).contains(&bits), "domain width must be in [2, 64]");
        let left_bits = bits / 2;
        let right_bits = bits - left_bits;
        FormatPreservingCipher {
            aes: Aes128::new(key),
            bits,
            left_bits,
            right_bits,
        }
    }

    /// Creates a cipher keyed by a label derived from 32-byte key material.
    pub fn from_key_material(material: &[u8; 32], bits: u32) -> Self {
        let mut key = [0u8; 16];
        key.copy_from_slice(&material[..16]);
        Self::new(&key, bits)
    }

    /// The domain width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    fn round_fn(&self, round: u32, half: u64, out_bits: u32) -> u64 {
        let input = ((round as u128) << 64) | half as u128;
        let prf = self.aes.prf_u128(input);
        if out_bits == 64 {
            prf as u64
        } else {
            (prf as u64) & ((1u64 << out_bits) - 1)
        }
    }

    /// Deterministically encrypts `value`, which must be `< 2^bits`.
    pub fn encrypt(&self, value: u64) -> u64 {
        self.check_domain(value);
        let right_mask = mask(self.right_bits);
        let left_mask = mask(self.left_bits);
        let mut left = value >> self.right_bits;
        let mut right = value & right_mask;
        for round in 0..FEISTEL_ROUNDS as u32 {
            if round % 2 == 0 {
                // Modify left using right.
                left = (left ^ self.round_fn(round, right, self.left_bits)) & left_mask;
            } else {
                right = (right ^ self.round_fn(round, left, self.right_bits)) & right_mask;
            }
        }
        (left << self.right_bits) | right
    }

    /// Inverts [`encrypt`](Self::encrypt).
    pub fn decrypt(&self, value: u64) -> u64 {
        self.check_domain(value);
        let right_mask = mask(self.right_bits);
        let left_mask = mask(self.left_bits);
        let mut left = value >> self.right_bits;
        let mut right = value & right_mask;
        for round in (0..FEISTEL_ROUNDS as u32).rev() {
            if round % 2 == 0 {
                left = (left ^ self.round_fn(round, right, self.left_bits)) & left_mask;
            } else {
                right = (right ^ self.round_fn(round, left, self.right_bits)) & right_mask;
            }
        }
        (left << self.right_bits) | right
    }

    fn check_domain(&self, value: u64) {
        if self.bits < 64 {
            assert!(
                value < (1u64 << self.bits),
                "value {value} out of domain for {}-bit FPE",
                self.bits
            );
        }
    }
}

fn mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// CMC-style deterministic encryption of byte strings.
///
/// Two CBC passes (forward with a zero IV, then backward) make every output
/// byte depend on every input byte, so the construction behaves like a wide
/// tweakable block cipher: deterministic, equal inputs give equal outputs, and
/// no per-row IV is stored. Inputs are padded (PKCS#7) to the 16-byte block
/// size, so a ciphertext is `ceil((len+1)/16) * 16` bytes.
pub struct DetBytes {
    aes1: Aes128,
    aes2: Aes128,
}

impl DetBytes {
    /// Creates the cipher from 32 bytes of key material (two AES keys).
    pub fn new(material: &[u8; 32]) -> Self {
        let mut k1 = [0u8; 16];
        let mut k2 = [0u8; 16];
        k1.copy_from_slice(&material[..16]);
        k2.copy_from_slice(&material[16..]);
        DetBytes {
            aes1: Aes128::new(&k1),
            aes2: Aes128::new(&k2),
        }
    }

    /// Creates the cipher keyed by `master` and `label`.
    pub fn from_master(master: &[u8], label: &str) -> Self {
        Self::new(&derive_key(master, label))
    }

    /// Deterministically encrypts `plaintext`.
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut data = pkcs7_pad(plaintext);
        // Pass 1: CBC forward with zero IV under key 1.
        let mut prev = [0u8; 16];
        for chunk in data.chunks_exact_mut(16) {
            for i in 0..16 {
                chunk[i] ^= prev[i];
            }
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.aes1.encrypt_block(&mut block);
            chunk.copy_from_slice(&block);
            prev = block;
        }
        // Pass 2: CBC backward under key 2.
        let nblocks = data.len() / 16;
        let mut prev = [0u8; 16];
        for b in (0..nblocks).rev() {
            let chunk = &mut data[b * 16..(b + 1) * 16];
            for i in 0..16 {
                chunk[i] ^= prev[i];
            }
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.aes2.encrypt_block(&mut block);
            chunk.copy_from_slice(&block);
            prev = block;
        }
        data
    }

    /// Decrypts a ciphertext produced by [`encrypt`](Self::encrypt).
    pub fn decrypt(&self, ciphertext: &[u8]) -> Vec<u8> {
        assert!(
            !ciphertext.is_empty() && ciphertext.len().is_multiple_of(16),
            "DET ciphertext must be a positive multiple of 16 bytes"
        );
        let mut data = ciphertext.to_vec();
        let nblocks = data.len() / 16;
        // Undo pass 2 (backward CBC under key 2).
        for b in 0..nblocks {
            let prev: [u8; 16] = if b + 1 < nblocks {
                data[(b + 1) * 16..(b + 2) * 16].try_into().unwrap()
            } else {
                [0u8; 16]
            };
            let chunk = &mut data[b * 16..(b + 1) * 16];
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            self.aes2.decrypt_block(&mut block);
            for i in 0..16 {
                block[i] ^= prev[i];
            }
            chunk.copy_from_slice(&block);
        }
        // Undo pass 1 (forward CBC under key 1): decrypt from last to first so
        // the previous ciphertext block is still available.
        let mut ciphertext_blocks: Vec<[u8; 16]> = data
            .chunks_exact(16)
            .map(|c| c.try_into().unwrap())
            .collect();
        for b in (0..nblocks).rev() {
            let prev = if b == 0 {
                [0u8; 16]
            } else {
                ciphertext_blocks[b - 1]
            };
            let mut block = ciphertext_blocks[b];
            self.aes1.decrypt_block(&mut block);
            for i in 0..16 {
                block[i] ^= prev[i];
            }
            ciphertext_blocks[b] = block;
        }
        let flat: Vec<u8> = ciphertext_blocks.into_iter().flatten().collect();
        pkcs7_unpad(&flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpe_roundtrip_various_widths() {
        for bits in [2u32, 8, 13, 16, 31, 32, 33, 48, 63, 64] {
            let fpe = FormatPreservingCipher::new(b"fpe-test-key-016", bits);
            let max = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            for v in [0u64, 1, 2, max / 3, max / 2, max] {
                let c = fpe.encrypt(v);
                if bits < 64 {
                    assert!(c < (1u64 << bits), "ciphertext escapes domain");
                }
                assert_eq!(fpe.decrypt(c), v, "bits={bits} v={v}");
            }
        }
    }

    #[test]
    fn fpe_is_deterministic_and_keyed() {
        let a = FormatPreservingCipher::new(b"fpe-test-key-01A", 32);
        let b = FormatPreservingCipher::new(b"fpe-test-key-01B", 32);
        assert_eq!(a.encrypt(12345), a.encrypt(12345));
        assert_ne!(a.encrypt(12345), b.encrypt(12345));
    }

    #[test]
    fn fpe_no_trivial_collisions() {
        let fpe = FormatPreservingCipher::new(b"fpe-test-key-016", 24);
        let mut seen = std::collections::HashSet::new();
        for v in 0u64..2000 {
            assert!(seen.insert(fpe.encrypt(v)), "collision at {v}");
        }
    }

    #[test]
    #[should_panic]
    fn fpe_rejects_out_of_domain() {
        let fpe = FormatPreservingCipher::new(b"fpe-test-key-016", 8);
        fpe.encrypt(256);
    }

    #[test]
    fn det_bytes_roundtrip() {
        let det = DetBytes::from_master(b"master", "t.c.DET");
        for msg in [
            b"".as_slice(),
            b"a",
            b"hello world",
            b"exactly sixteen!",
            b"this is a longer string spanning multiple aes blocks for cmc mode",
        ] {
            let ct = det.encrypt(msg);
            assert_eq!(ct.len() % 16, 0);
            assert_eq!(det.decrypt(&ct), msg);
        }
    }

    #[test]
    fn det_bytes_deterministic_and_all_blocks_depend_on_input() {
        let det = DetBytes::from_master(b"master", "t.c.DET");
        let a = det.encrypt(b"shipping mode AIR and some filler text..........");
        let b = det.encrypt(b"shipping mode AIR and some filler text..........");
        assert_eq!(a, b);
        // Flipping the last byte must change the first ciphertext block
        // (wide-block property), unlike plain CBC.
        let c = det.encrypt(b"shipping mode AIR and some filler text.........!");
        assert_ne!(a[..16], c[..16]);
    }

    #[test]
    fn det_bytes_equal_inputs_only() {
        let det = DetBytes::from_master(b"master", "t.c.DET");
        assert_ne!(det.encrypt(b"AIR"), det.encrypt(b"RAIL"));
    }
}
