//! The Paillier additively homomorphic cryptosystem.
//!
//! MONOMI uses Paillier (HOM) to let the untrusted server compute SUM() and
//! AVG() aggregates over encrypted values: the product of two ciphertexts
//! decrypts to the sum of their plaintexts. Key generation draws two primes
//! from [`monomi_math::prime`], and all modular arithmetic uses the Montgomery
//! contexts from `monomi-math`.
//!
//! The hot paths are Montgomery-resident end to end:
//!
//! * **Decryption** uses the classic CRT split: exponentiate modulo p² and q²
//!   (half-width moduli, per-prime exponents p−1 and q−1) and recombine, which
//!   replaces one full-width n² exponentiation with two at a quarter of the
//!   per-multiplication cost each.
//! * **Encryption** keeps the obfuscator pool in Montgomery form, so each
//!   encryption is two CIOS multiplications (pool-pair product, then blinding
//!   of the `g^m` shortcut) with no conversions.
//! * **Homomorphic summation** chains in-place CIOS multiplications over an
//!   accumulator and cancels the accumulated `R^{-k}` drift with a single
//!   `R^k` fixup at the end — one modular multiplication per row, as §5.3 of
//!   the paper promises.
//!
//! The paper uses 1,024-bit plaintexts (2,048-bit ciphertexts). Key size is
//! configurable here so unit tests and laptop-scale benchmarks stay fast; the
//! packing layer ([`crate::packing`]) adapts to whatever plaintext width the
//! key provides.

use monomi_math::modular::{lcm, mod_inverse};
use monomi_math::{prime, random, BigUint, MontScratch, MontgomeryCtx};
use rand::Rng;

/// A Paillier key pair (the private portion is only ever held by the trusted
/// client).
#[derive(Clone)]
pub struct PaillierKey {
    /// Public modulus n = p·q.
    n: BigUint,
    /// n².
    n_squared: BigUint,
    /// Private exponent λ = lcm(p-1, q-1) (kept for the classic decrypt path).
    lambda: BigUint,
    /// Private decryption factor µ = λ⁻¹ mod n (valid because g = n+1).
    mu: BigUint,
    /// Montgomery context modulo n².
    ctx_n2: MontgomeryCtx,
    /// CRT decryption state (the private factorization of n).
    crt: CrtState,
    /// Pool of precomputed obfuscators rⁿ mod n² *in Montgomery form*,
    /// refreshed by multiplying two random pool entries per encryption. This
    /// trades a small amount of randomness quality for a large speedup during
    /// bulk loading; the paper's prototype similarly amortizes encryption cost
    /// during setup.
    obfuscator_pool: Vec<BigUint>,
}

/// Precomputed CRT material: decryption exponentiates modulo p² and q²
/// (half the width of n², so ~4x cheaper per exponentiation) with the
/// per-prime exponents p−1 / q−1, then recombines via Garner's formula.
#[derive(Clone)]
struct CrtState {
    p: BigUint,
    q: BigUint,
    /// p − 1 and q − 1, the per-prime decryption exponents.
    p1: BigUint,
    q1: BigUint,
    /// Montgomery contexts modulo p² and q².
    ctx_p2: MontgomeryCtx,
    ctx_q2: MontgomeryCtx,
    /// hp = L_p(g^(p-1) mod p²)⁻¹ mod p, hq analogously.
    hp: BigUint,
    hq: BigUint,
    /// q⁻¹ mod p, for the CRT recombination.
    q_inv_p: BigUint,
}

impl CrtState {
    /// `L_p(x) = (x - 1) / p`, the Paillier L function over a prime-square
    /// residue.
    fn l_function(x: &BigUint, prime: &BigUint) -> BigUint {
        x.sub(&BigUint::one()).div_rem(prime).0
    }

    /// Decrypts `c` via the CRT split. `c` must be < n².
    fn decrypt(&self, c: &BigUint) -> BigUint {
        let cp = c.rem(self.ctx_p2.modulus());
        let cq = c.rem(self.ctx_q2.modulus());
        let mp = Self::l_function(&self.ctx_p2.mod_pow(&cp, &self.p1), &self.p)
            .mul(&self.hp)
            .rem(&self.p);
        let mq = Self::l_function(&self.ctx_q2.mod_pow(&cq, &self.q1), &self.q)
            .mul(&self.hq)
            .rem(&self.q);
        // Garner: m = mq + q · ((mp − mq) · q⁻¹ mod p).
        let diff = mp.sub_mod(&mq.rem(&self.p), &self.p);
        let u = diff.mul(&self.q_inv_p).rem(&self.p);
        mq.add(&self.q.mul(&u))
    }
}

/// Size of the precomputed obfuscator pool.
const OBFUSCATOR_POOL_SIZE: usize = 16;

impl PaillierKey {
    /// Generates a key pair with an n of approximately `modulus_bits` bits.
    ///
    /// `modulus_bits` must be at least 64. The paper uses 1,024-bit moduli;
    /// tests use smaller keys for speed.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        assert!(modulus_bits >= 64, "modulus must be at least 64 bits");
        let half = modulus_bits / 2;
        loop {
            let p = prime::generate_prime(rng, half);
            let q = prime::generate_prime(rng, modulus_bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.sub(&BigUint::one());
            let q1 = q.sub(&BigUint::one());
            let lambda = lcm(&p1, &q1);
            // µ = λ⁻¹ mod n requires gcd(λ, n) = 1, which holds except with
            // negligible probability; retry otherwise.
            let mu = match mod_inverse(&lambda, &n) {
                Some(m) => m,
                None => continue,
            };
            let q_inv_p = match mod_inverse(&q, &p) {
                Some(v) => v,
                None => continue, // p == q excluded above, but stay defensive
            };
            let n_squared = n.mul(&n);
            let ctx_n2 = MontgomeryCtx::new(n_squared.clone());
            let ctx_p2 = MontgomeryCtx::new(p.mul(&p));
            let ctx_q2 = MontgomeryCtx::new(q.mul(&q));
            // hp = L_p(g^(p-1) mod p²)⁻¹ mod p with g = n + 1; since
            // g^(p-1) ≡ 1 + (p-1)·n (mod p²), L_p of it is (p-1)·q mod p.
            let g = n.add(&BigUint::one());
            let hp_base =
                CrtState::l_function(&ctx_p2.mod_pow(&g.rem(ctx_p2.modulus()), &p1), &p).rem(&p);
            let hq_base =
                CrtState::l_function(&ctx_q2.mod_pow(&g.rem(ctx_q2.modulus()), &q1), &q).rem(&q);
            let (hp, hq) = match (mod_inverse(&hp_base, &p), mod_inverse(&hq_base, &q)) {
                (Some(hp), Some(hq)) => (hp, hq),
                _ => continue,
            };
            let crt = CrtState {
                p,
                q,
                p1,
                q1,
                ctx_p2,
                ctx_q2,
                hp,
                hq,
                q_inv_p,
            };
            let mut key = PaillierKey {
                n,
                n_squared,
                lambda,
                mu,
                ctx_n2,
                crt,
                obfuscator_pool: Vec::new(),
            };
            key.refill_obfuscator_pool(rng);
            return key;
        }
    }

    fn refill_obfuscator_pool<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.obfuscator_pool = (0..OBFUSCATOR_POOL_SIZE)
            .map(|_| {
                let r = loop {
                    let candidate = random::random_below(rng, &self.n);
                    if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                        break candidate;
                    }
                };
                // Stored in Montgomery form so each encryption is pure CIOS.
                self.ctx_n2.to_mont(&self.ctx_n2.mod_pow(&r, &self.n))
            })
            .collect();
    }

    /// The public modulus n.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// n², the ciphertext modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// The Montgomery context for the ciphertext modulus n², shared with
    /// callers that run their own ciphertext-multiplication loops.
    pub fn ctx_n_squared(&self) -> &MontgomeryCtx {
        &self.ctx_n2
    }

    /// Number of plaintext bits that can safely be packed into one ciphertext.
    /// We leave 8 bits of headroom below the modulus size.
    pub fn plaintext_bits(&self) -> usize {
        self.n.bits().saturating_sub(8)
    }

    /// Ciphertext size in bytes (fixed-width encoding).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Encrypts a plaintext (must be `< n`).
    ///
    /// Uses the `g = n + 1` shortcut: `g^m = 1 + m·n (mod n²)`, so the only
    /// expensive operations are two Montgomery multiplications: one combining
    /// two random pool entries into a fresh obfuscator (still in Montgomery
    /// form), and one blinding `g^m` with it (a Montgomery-by-plain multiply,
    /// which lands back in ordinary form).
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, m: &BigUint) -> BigUint {
        self.encryptor().encrypt(rng, m)
    }

    /// Creates an encryption session that carries the Montgomery scratch and
    /// obfuscator buffer across calls, so bulk loaders can encrypt streams of
    /// values (chunk by chunk, without materializing them all) while paying
    /// for the buffers once.
    pub fn encryptor(&self) -> PaillierEncryptSession<'_> {
        PaillierEncryptSession {
            key: self,
            obf: BigUint::zero(),
            scratch: self.ctx_n2.scratch(),
        }
    }

    /// Encrypts a batch of plaintexts, sharing one scratch buffer across the
    /// whole run. Used by bulk loading, where millions of values are
    /// encrypted back to back; for streaming loads that should not hold all
    /// plaintexts at once, use [`encryptor`](Self::encryptor) directly.
    pub fn batch_encrypt<R: Rng + ?Sized>(&self, rng: &mut R, ms: &[BigUint]) -> Vec<BigUint> {
        let mut session = self.encryptor();
        ms.iter().map(|m| session.encrypt(rng, m)).collect()
    }

    /// Encrypts a `u64` plaintext.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, rng: &mut R, m: u64) -> BigUint {
        self.encrypt(rng, &BigUint::from_u64(m))
    }

    /// Decrypts a ciphertext via the CRT split (two half-width
    /// exponentiations instead of one full-width one, ~4x faster).
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        assert!(c < &self.n_squared, "ciphertext must be smaller than n²");
        self.crt.decrypt(c)
    }

    /// Decrypts a ciphertext with the classic single-exponentiation formula
    /// `L(c^λ mod n²) · µ mod n`. Kept as the reference implementation for
    /// equivalence tests and the decrypt benchmarks; [`decrypt`](Self::decrypt)
    /// is the fast path.
    pub fn decrypt_classic(&self, c: &BigUint) -> BigUint {
        assert!(c < &self.n_squared, "ciphertext must be smaller than n²");
        let u = self.ctx_n2.mod_pow(c, &self.lambda);
        // L(u) = (u - 1) / n
        let l = u.sub(&BigUint::one()).div_rem(&self.n).0;
        l.mul(&self.mu).rem(&self.n)
    }

    /// Decrypts a ciphertext to `u64`, panicking if the plaintext does not fit.
    pub fn decrypt_u64(&self, c: &BigUint) -> u64 {
        self.decrypt(c)
            .to_u64()
            .expect("decrypted plaintext does not fit in u64")
    }

    /// Homomorphic addition: returns a ciphertext of `m1 + m2 (mod n)` given
    /// ciphertexts of `m1` and `m2`. This is the single modular multiplication
    /// per row that the paper's grouped homomorphic addition (§5.3) relies on;
    /// for long chains use [`sum_ciphertexts`](Self::sum_ciphertexts), which
    /// amortizes the Montgomery conversions across the whole sum.
    pub fn add_ciphertexts(&self, c1: &BigUint, c2: &BigUint) -> BigUint {
        self.ctx_n2.mul_mod(c1, c2)
    }

    /// Homomorphic addition of a plaintext constant.
    pub fn add_plaintext(&self, c: &BigUint, k: &BigUint) -> BigUint {
        let g_k = BigUint::one().add(&k.rem(&self.n).mul(&self.n));
        self.ctx_n2.mul_mod(c, &g_k)
    }

    /// Homomorphic multiplication by a plaintext constant: ciphertext of `k·m`.
    pub fn mul_plaintext(&self, c: &BigUint, k: &BigUint) -> BigUint {
        self.ctx_n2.mod_pow(c, k)
    }

    /// The ciphertext of zero with no obfuscation, useful as the identity for
    /// homomorphic summation.
    pub fn one_ciphertext(&self) -> BigUint {
        BigUint::one()
    }

    /// Homomorphically sums an iterator of ciphertexts.
    ///
    /// Montgomery-resident: the accumulator starts at `R` (the Montgomery form
    /// of 1) and each ciphertext costs exactly one in-place CIOS multiply; the
    /// accumulated `R^{-k}` drift is cancelled by a single `R^k` multiplication
    /// at the end (one conversion in, one out). Implemented on [`PaillierSum`],
    /// the streaming accumulator parallel aggregation splits across workers.
    pub fn sum_ciphertexts<'a, I: IntoIterator<Item = &'a BigUint>>(&self, iter: I) -> BigUint {
        let mut sum = PaillierSum::new(&self.ctx_n2);
        for c in iter {
            sum.add(&self.ctx_n2, c);
        }
        sum.finish(&self.ctx_n2)
    }
}

/// A streaming homomorphic sum: a Montgomery-resident "drifting" accumulator.
///
/// The accumulator starts at `R` (the Montgomery form of 1); every
/// [`add`](Self::add) is one in-place CIOS multiply by an ordinary-form
/// ciphertext, so after `k` additions it holds `R · (∏ cᵢ) · R^{-k}` — the
/// true product times an `R^{-k}` drift that [`finish`](Self::finish) cancels
/// with a single `R^k` multiplication.
///
/// Two accumulators over disjoint row ranges can be combined with
/// [`merge`](Self::merge) at the cost of **one** CIOS multiply: multiplying
/// the two drifting values yields `R · (∏ all cᵢ) · R^{-(k₁+k₂)}`, the exact
/// state a single accumulator would hold after folding both ranges. Because
/// multiplication modulo n² is exact and commutative, a merge tree over any
/// partitioning finishes to the byte-identical ciphertext of the serial fold —
/// the property morsel-parallel `paillier_sum` relies on.
///
/// The type is independent of the private key: it needs only the public
/// Montgomery context for n², so the untrusted server can run it.
#[derive(Clone, Debug)]
pub struct PaillierSum {
    /// Montgomery-domain product carrying an `R^{-count}` drift.
    acc: BigUint,
    count: u64,
    /// Reusable CIOS scratch (allocated once per accumulator).
    scratch: MontScratch,
}

impl PaillierSum {
    /// An empty sum (the multiplicative identity, `R`) for the given n²
    /// context.
    pub fn new(ctx: &MontgomeryCtx) -> Self {
        PaillierSum {
            acc: ctx.one_mont(),
            count: 0,
            scratch: ctx.scratch(),
        }
    }

    /// Number of ciphertexts folded in so far (merges included).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds one ciphertext into the sum: a single allocation-free CIOS
    /// multiply. Well-formed ciphertexts are already < n²; oversized operands
    /// are reduced first so malformed input cannot break the CIOS
    /// precondition (matching [`PaillierKey::add_ciphertexts`] semantics).
    pub fn add(&mut self, ctx: &MontgomeryCtx, c: &BigUint) {
        if c < ctx.modulus() {
            ctx.mont_mul_assign(&mut self.acc, c, &mut self.scratch);
        } else {
            ctx.mont_mul_assign(&mut self.acc, &c.rem(ctx.modulus()), &mut self.scratch);
        }
        self.count += 1;
    }

    /// Combines another accumulator (over a disjoint row range) into this one
    /// with one CIOS multiply; the drifts compose additively, so no fixup is
    /// needed until [`finish`](Self::finish).
    pub fn merge(&mut self, ctx: &MontgomeryCtx, other: &PaillierSum) {
        if other.count == 0 {
            // A fresh accumulator is the Montgomery identity; skip the CIOS.
            return;
        }
        ctx.mont_mul_assign(&mut self.acc, &other.acc, &mut self.scratch);
        self.count += other.count;
    }

    /// Cancels the accumulated `R^{-count}` drift and returns the ordinary
    /// form product — the ciphertext of the sum. An empty accumulator yields
    /// 1, the unobfuscated ciphertext of zero.
    pub fn finish(&self, ctx: &MontgomeryCtx) -> BigUint {
        ctx.mont_mul(&self.acc, &ctx.r_to_the(self.count))
    }
}

/// A scratch-carrying Paillier encryption session (see
/// [`PaillierKey::encryptor`]): each `encrypt` call costs two CIOS
/// multiplications with no per-call buffer allocation.
pub struct PaillierEncryptSession<'k> {
    key: &'k PaillierKey,
    obf: BigUint,
    scratch: MontScratch,
}

impl PaillierEncryptSession<'_> {
    /// Encrypts a plaintext (must be `< n`).
    ///
    /// Uses the `g = n + 1` shortcut: `g^m = 1 + m·n (mod n²)`, so the only
    /// expensive operations are two Montgomery multiplications: one combining
    /// two random pool entries into a fresh obfuscator (still in Montgomery
    /// form), and one blinding `g^m` with it (a Montgomery-by-plain multiply,
    /// which lands back in ordinary form).
    pub fn encrypt<R: Rng + ?Sized>(&mut self, rng: &mut R, m: &BigUint) -> BigUint {
        let key = self.key;
        assert!(m < &key.n, "plaintext must be smaller than n");
        // g^m mod n² = 1 + m*n (strictly less than n² since m < n).
        let g_m = BigUint::one().add(&m.mul(&key.n));
        let i = rng.gen_range(0..key.obfuscator_pool.len());
        let j = rng.gen_range(0..key.obfuscator_pool.len());
        // mont(r1ⁿ) · mont(r2ⁿ) → mont(r1ⁿ·r2ⁿ); multiplying the plain g^m by
        // a Montgomery-form value cancels the R factor, yielding the ordinary
        // form ciphertext g^m · rⁿ mod n².
        key.ctx_n2.mont_mul_into(
            &key.obfuscator_pool[i],
            &key.obfuscator_pool[j],
            &mut self.obf,
            &mut self.scratch,
        );
        let mut ct = BigUint::zero();
        key.ctx_n2
            .mont_mul_into(&g_m, &self.obf, &mut ct, &mut self.scratch);
        ct
    }
}

impl std::fmt::Debug for PaillierKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaillierKey")
            .field("modulus_bits", &self.n.bits())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key() -> PaillierKey {
        let mut rng = StdRng::seed_from_u64(1234);
        PaillierKey::generate(&mut rng, 256)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(1);
        for m in [0u64, 1, 42, 1_000_000, u64::MAX / 3] {
            let c = key.encrypt_u64(&mut rng, m);
            assert_eq!(key.decrypt_u64(&c), m);
        }
    }

    #[test]
    fn crt_decrypt_matches_classic() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(11);
        for m in [0u64, 1, 2, 999_999_937, u64::MAX] {
            let c = key.encrypt_u64(&mut rng, m);
            assert_eq!(key.decrypt(&c), key.decrypt_classic(&c), "m={m}");
        }
        // Also on a large multi-limb plaintext near capacity.
        let big = BigUint::one().shl(key.plaintext_bits() - 1).add_u64(77);
        let c = key.encrypt(&mut rng, &big);
        assert_eq!(key.decrypt(&c), key.decrypt_classic(&c));
        assert_eq!(key.decrypt(&c), big);
    }

    #[test]
    fn batch_encrypt_matches_single() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(12);
        let ms: Vec<BigUint> = (0..20u64).map(|i| BigUint::from_u64(i * 31 + 7)).collect();
        let cts = key.batch_encrypt(&mut rng, &ms);
        assert_eq!(cts.len(), ms.len());
        for (m, c) in ms.iter().zip(&cts) {
            assert_eq!(&key.decrypt(c), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(2);
        let a = key.encrypt_u64(&mut rng, 77);
        let b = key.encrypt_u64(&mut rng, 77);
        assert_ne!(a, b);
        assert_eq!(key.decrypt_u64(&a), key.decrypt_u64(&b));
    }

    #[test]
    fn homomorphic_addition() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(3);
        let c1 = key.encrypt_u64(&mut rng, 1000);
        let c2 = key.encrypt_u64(&mut rng, 234);
        let sum = key.add_ciphertexts(&c1, &c2);
        assert_eq!(key.decrypt_u64(&sum), 1234);
    }

    #[test]
    fn homomorphic_sum_of_many() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<u64> = (1..=50).collect();
        let cts: Vec<BigUint> = values
            .iter()
            .map(|&v| key.encrypt_u64(&mut rng, v))
            .collect();
        let sum_ct = key.sum_ciphertexts(&cts);
        assert_eq!(key.decrypt_u64(&sum_ct), values.iter().sum::<u64>());
    }

    #[test]
    fn sum_of_empty_and_single() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(key.decrypt_u64(&key.sum_ciphertexts([])), 0);
        let c = key.encrypt_u64(&mut rng, 4242);
        assert_eq!(key.decrypt_u64(&key.sum_ciphertexts([&c])), 4242);
    }

    #[test]
    fn plaintext_operations() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(5);
        let c = key.encrypt_u64(&mut rng, 10);
        let plus = key.add_plaintext(&c, &BigUint::from_u64(5));
        assert_eq!(key.decrypt_u64(&plus), 15);
        let times = key.mul_plaintext(&c, &BigUint::from_u64(7));
        assert_eq!(key.decrypt_u64(&times), 70);
    }

    #[test]
    fn large_plaintexts_near_capacity() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(6);
        let bits = key.plaintext_bits();
        let m = BigUint::one().shl(bits - 1).add_u64(12345);
        let c = key.encrypt(&mut rng, &m);
        assert_eq!(key.decrypt(&c), m);
    }

    #[test]
    fn ciphertext_size_reported() {
        let key = test_key();
        // 256-bit n => 512-bit n² => 64-byte ciphertexts.
        assert_eq!(key.ciphertext_bytes(), 64);
        assert!(key.plaintext_bits() >= 240);
    }
}
