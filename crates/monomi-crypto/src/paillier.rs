//! The Paillier additively homomorphic cryptosystem.
//!
//! MONOMI uses Paillier (HOM) to let the untrusted server compute SUM() and
//! AVG() aggregates over encrypted values: the product of two ciphertexts
//! decrypts to the sum of their plaintexts. Key generation draws two primes
//! from [`monomi_math::prime`], and all modular arithmetic uses the Montgomery
//! contexts from `monomi-math`.
//!
//! The paper uses 1,024-bit plaintexts (2,048-bit ciphertexts). Key size is
//! configurable here so unit tests and laptop-scale benchmarks stay fast; the
//! packing layer ([`crate::packing`]) adapts to whatever plaintext width the
//! key provides.

use monomi_math::modular::{lcm, mod_inverse};
use monomi_math::{prime, random, BigUint, MontgomeryCtx};
use rand::Rng;

/// A Paillier key pair (the private portion is only ever held by the trusted
/// client).
#[derive(Clone)]
pub struct PaillierKey {
    /// Public modulus n = p·q.
    n: BigUint,
    /// n².
    n_squared: BigUint,
    /// Private exponent λ = lcm(p-1, q-1).
    lambda: BigUint,
    /// Private decryption factor µ = λ⁻¹ mod n (valid because g = n+1).
    mu: BigUint,
    /// Montgomery context modulo n².
    ctx_n2: MontgomeryCtx,
    /// Pool of precomputed obfuscators rⁿ mod n², refreshed by multiplying two
    /// random pool entries per encryption. This trades a small amount of
    /// randomness quality for a large speedup during bulk loading; the paper's
    /// prototype similarly amortizes encryption cost during setup.
    obfuscator_pool: Vec<BigUint>,
}

/// Size of the precomputed obfuscator pool.
const OBFUSCATOR_POOL_SIZE: usize = 16;

impl PaillierKey {
    /// Generates a key pair with an n of approximately `modulus_bits` bits.
    ///
    /// `modulus_bits` must be at least 64. The paper uses 1,024-bit moduli;
    /// tests use smaller keys for speed.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, modulus_bits: usize) -> Self {
        assert!(modulus_bits >= 64, "modulus must be at least 64 bits");
        let half = modulus_bits / 2;
        loop {
            let p = prime::generate_prime(rng, half);
            let q = prime::generate_prime(rng, modulus_bits - half);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p1 = p.sub(&BigUint::one());
            let q1 = q.sub(&BigUint::one());
            let lambda = lcm(&p1, &q1);
            // µ = λ⁻¹ mod n requires gcd(λ, n) = 1, which holds except with
            // negligible probability; retry otherwise.
            let mu = match mod_inverse(&lambda, &n) {
                Some(m) => m,
                None => continue,
            };
            let n_squared = n.mul(&n);
            let ctx_n2 = MontgomeryCtx::new(n_squared.clone());
            let mut key = PaillierKey {
                n,
                n_squared,
                lambda,
                mu,
                ctx_n2,
                obfuscator_pool: Vec::new(),
            };
            key.refill_obfuscator_pool(rng);
            return key;
        }
    }

    fn refill_obfuscator_pool<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.obfuscator_pool = (0..OBFUSCATOR_POOL_SIZE)
            .map(|_| {
                let r = loop {
                    let candidate = random::random_below(rng, &self.n);
                    if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                        break candidate;
                    }
                };
                self.ctx_n2.mod_pow(&r, &self.n)
            })
            .collect();
    }

    /// The public modulus n.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// n², the ciphertext modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// Number of plaintext bits that can safely be packed into one ciphertext.
    /// We leave 8 bits of headroom below the modulus size.
    pub fn plaintext_bits(&self) -> usize {
        self.n.bits().saturating_sub(8)
    }

    /// Ciphertext size in bytes (fixed-width encoding).
    pub fn ciphertext_bytes(&self) -> usize {
        self.n_squared.bits().div_ceil(8)
    }

    /// Encrypts a plaintext (must be `< n`).
    ///
    /// Uses the `g = n + 1` shortcut: `g^m = 1 + m·n (mod n²)`, so the only
    /// expensive operation is the obfuscation factor, which is drawn from the
    /// precomputed pool (two random entries multiplied together).
    pub fn encrypt<R: Rng + ?Sized>(&self, rng: &mut R, m: &BigUint) -> BigUint {
        assert!(m < &self.n, "plaintext must be smaller than n");
        // g^m mod n² = 1 + m*n  (strictly less than n² since m < n).
        let g_m = BigUint::one().add(&m.mul(&self.n)).rem(&self.n_squared);
        let i = rng.gen_range(0..self.obfuscator_pool.len());
        let j = rng.gen_range(0..self.obfuscator_pool.len());
        let obf = self
            .ctx_n2
            .mul_mod(&self.obfuscator_pool[i], &self.obfuscator_pool[j]);
        self.ctx_n2.mul_mod(&g_m, &obf)
    }

    /// Encrypts a `u64` plaintext.
    pub fn encrypt_u64<R: Rng + ?Sized>(&self, rng: &mut R, m: u64) -> BigUint {
        self.encrypt(rng, &BigUint::from_u64(m))
    }

    /// Decrypts a ciphertext.
    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        assert!(c < &self.n_squared, "ciphertext must be smaller than n²");
        let u = self.ctx_n2.mod_pow(c, &self.lambda);
        // L(u) = (u - 1) / n
        let l = u.sub(&BigUint::one()).div_rem(&self.n).0;
        l.mul(&self.mu).rem(&self.n)
    }

    /// Decrypts a ciphertext to `u64`, panicking if the plaintext does not fit.
    pub fn decrypt_u64(&self, c: &BigUint) -> u64 {
        self.decrypt(c)
            .to_u64()
            .expect("decrypted plaintext does not fit in u64")
    }

    /// Homomorphic addition: returns a ciphertext of `m1 + m2 (mod n)` given
    /// ciphertexts of `m1` and `m2`. This is the single modular multiplication
    /// per row that the paper's grouped homomorphic addition (§5.3) relies on.
    pub fn add_ciphertexts(&self, c1: &BigUint, c2: &BigUint) -> BigUint {
        self.ctx_n2.mul_mod(c1, c2)
    }

    /// Homomorphic addition of a plaintext constant.
    pub fn add_plaintext(&self, c: &BigUint, k: &BigUint) -> BigUint {
        let g_k = BigUint::one()
            .add(&k.rem(&self.n).mul(&self.n))
            .rem(&self.n_squared);
        self.ctx_n2.mul_mod(c, &g_k)
    }

    /// Homomorphic multiplication by a plaintext constant: ciphertext of `k·m`.
    pub fn mul_plaintext(&self, c: &BigUint, k: &BigUint) -> BigUint {
        self.ctx_n2.mod_pow(c, k)
    }

    /// The ciphertext of zero with no obfuscation, useful as the identity for
    /// homomorphic summation.
    pub fn one_ciphertext(&self) -> BigUint {
        BigUint::one()
    }

    /// Homomorphically sums an iterator of ciphertexts.
    pub fn sum_ciphertexts<'a, I: IntoIterator<Item = &'a BigUint>>(&self, iter: I) -> BigUint {
        let mut acc = self.one_ciphertext();
        for c in iter {
            acc = self.add_ciphertexts(&acc, c);
        }
        acc
    }
}

impl std::fmt::Debug for PaillierKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaillierKey")
            .field("modulus_bits", &self.n.bits())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_key() -> PaillierKey {
        let mut rng = StdRng::seed_from_u64(1234);
        PaillierKey::generate(&mut rng, 256)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(1);
        for m in [0u64, 1, 42, 1_000_000, u64::MAX / 3] {
            let c = key.encrypt_u64(&mut rng, m);
            assert_eq!(key.decrypt_u64(&c), m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(2);
        let a = key.encrypt_u64(&mut rng, 77);
        let b = key.encrypt_u64(&mut rng, 77);
        assert_ne!(a, b);
        assert_eq!(key.decrypt_u64(&a), key.decrypt_u64(&b));
    }

    #[test]
    fn homomorphic_addition() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(3);
        let c1 = key.encrypt_u64(&mut rng, 1000);
        let c2 = key.encrypt_u64(&mut rng, 234);
        let sum = key.add_ciphertexts(&c1, &c2);
        assert_eq!(key.decrypt_u64(&sum), 1234);
    }

    #[test]
    fn homomorphic_sum_of_many() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<u64> = (1..=50).collect();
        let cts: Vec<BigUint> = values
            .iter()
            .map(|&v| key.encrypt_u64(&mut rng, v))
            .collect();
        let sum_ct = key.sum_ciphertexts(&cts);
        assert_eq!(key.decrypt_u64(&sum_ct), values.iter().sum::<u64>());
    }

    #[test]
    fn plaintext_operations() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(5);
        let c = key.encrypt_u64(&mut rng, 10);
        let plus = key.add_plaintext(&c, &BigUint::from_u64(5));
        assert_eq!(key.decrypt_u64(&plus), 15);
        let times = key.mul_plaintext(&c, &BigUint::from_u64(7));
        assert_eq!(key.decrypt_u64(&times), 70);
    }

    #[test]
    fn large_plaintexts_near_capacity() {
        let key = test_key();
        let mut rng = StdRng::seed_from_u64(6);
        let bits = key.plaintext_bits();
        let m = BigUint::one().shl(bits - 1).add_u64(12345);
        let c = key.encrypt(&mut rng, &m);
        assert_eq!(key.decrypt(&c), m);
    }

    #[test]
    fn ciphertext_size_reported() {
        let key = test_key();
        // 256-bit n => 512-bit n² => 64-byte ciphertexts.
        assert_eq!(key.ciphertext_bytes(), 64);
        assert!(key.plaintext_bits() >= 240);
    }
}
