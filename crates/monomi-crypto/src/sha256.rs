//! SHA-256 and HMAC-SHA-256, used for key derivation, the OPE PRF, and the
//! SEARCH scheme's keyword tokens.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = H0;
    let bit_len = (data.len() as u64) * 8;

    // Padded message: data || 0x80 || zeros || 64-bit length.
    let mut padded = data.to_vec();
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in padded.chunks_exact(64) {
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                chunk[4 * i],
                chunk[4 * i + 1],
                chunk[4 * i + 2],
                chunk[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for i in 0..8 {
        out[4 * i..4 * i + 4].copy_from_slice(&h[i].to_be_bytes());
    }
    out
}

/// Computes HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; 64];
    let mut opad = [0x5cu8; 64];
    for i in 0..64 {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = ipad.to_vec();
    inner.extend_from_slice(data);
    let inner_hash = sha256(&inner);
    let mut outer = opad.to_vec();
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Derives a sub-key from a master key and a textual label (HKDF-like single
/// expansion step). Used to give every (table, column, scheme) its own key.
pub fn derive_key(master: &[u8], label: &str) -> [u8; 32] {
    hmac_sha256(master, label.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn sha256_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn sha256_longer_message() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn hmac_rfc4231_case2() {
        // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?"
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn derived_keys_differ_by_label() {
        let master = b"master key material";
        let a = derive_key(master, "lineitem.l_quantity.DET");
        let b = derive_key(master, "lineitem.l_quantity.OPE");
        assert_ne!(a, b);
        // Deterministic.
        assert_eq!(a, derive_key(master, "lineitem.l_quantity.DET"));
    }
}
