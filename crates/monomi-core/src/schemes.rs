//! Encryption scheme metadata: what each scheme can compute on the server and
//! what it leaks (Table 1 of the paper).

use serde::{Deserialize, Serialize};

/// The encryption schemes MONOMI materializes on the untrusted server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EncScheme {
    /// Randomized AES-CBC: no server-side computation, no leakage.
    Rnd,
    /// Deterministic encryption: equality, IN, GROUP BY, equi-join; leaks duplicates.
    Det,
    /// Order-preserving encryption: comparisons, MAX/MIN, ORDER BY; leaks order.
    Ope,
    /// Paillier: SUM/AVG via homomorphic addition; no leakage.
    Hom,
    /// Keyword search: LIKE '%kw%'; leaks which rows match a searched keyword.
    Search,
}

impl EncScheme {
    /// All schemes, weakest-leakage first ordering is *not* implied here; see
    /// [`strength_rank`](Self::strength_rank).
    pub const ALL: [EncScheme; 5] = [
        EncScheme::Rnd,
        EncScheme::Det,
        EncScheme::Ope,
        EncScheme::Hom,
        EncScheme::Search,
    ];

    /// Human-readable leakage description (Table 1).
    pub fn leakage(&self) -> &'static str {
        match self {
            EncScheme::Rnd => "none",
            EncScheme::Det => "duplicates",
            EncScheme::Ope => "order + partial plaintext",
            EncScheme::Hom => "none",
            EncScheme::Search => "rows matching searched keywords",
        }
    }

    /// True if the scheme lets the server evaluate equality predicates,
    /// GROUP BY, and equi-joins.
    pub fn supports_equality(&self) -> bool {
        matches!(self, EncScheme::Det)
    }

    /// True if the scheme lets the server evaluate order comparisons,
    /// MIN/MAX, and ORDER BY.
    pub fn supports_order(&self) -> bool {
        matches!(self, EncScheme::Ope)
    }

    /// True if the scheme lets the server compute SUM/AVG.
    pub fn supports_sum(&self) -> bool {
        matches!(self, EncScheme::Hom)
    }

    /// True if the scheme lets the server evaluate `LIKE '%kw%'`.
    pub fn supports_like(&self) -> bool {
        matches!(self, EncScheme::Search)
    }

    /// True if the client can recover the plaintext from this scheme's
    /// ciphertext. OPE in this reproduction is a one-way order-preserving map,
    /// so values fetched for client-side processing use DET/RND/HOM instead.
    pub fn decryptable(&self) -> bool {
        matches!(self, EncScheme::Rnd | EncScheme::Det | EncScheme::Hom)
    }

    /// Rank by information revealed to the server, from strongest (reveals
    /// least) to weakest. Used for Table 3 ("weakest scheme per column") and
    /// for the security summary.
    pub fn strength_rank(&self) -> u8 {
        match self {
            EncScheme::Rnd => 0,
            EncScheme::Hom => 0,
            EncScheme::Search => 1,
            EncScheme::Det => 2,
            EncScheme::Ope => 3,
        }
    }

    /// Column-name suffix used in the encrypted physical schema.
    pub fn suffix(&self) -> &'static str {
        match self {
            EncScheme::Rnd => "rnd",
            EncScheme::Det => "det",
            EncScheme::Ope => "ope",
            EncScheme::Hom => "hom",
            EncScheme::Search => "search",
        }
    }
}

impl std::fmt::Display for EncScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EncScheme::Rnd => "RND",
            EncScheme::Det => "DET",
            EncScheme::Ope => "OPE",
            EncScheme::Hom => "HOM",
            EncScheme::Search => "SEARCH",
        };
        write!(f, "{s}")
    }
}

/// The encryption "type" REWRITESERVER is asked to produce (§4 of the paper):
/// a plaintext-valued expression (for predicates the server must evaluate), a
/// specific scheme's ciphertext, or any ciphertext the client can decrypt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncRequest {
    /// The rewritten expression must evaluate to the same (plaintext) value —
    /// used for WHERE / HAVING predicates evaluated by the server.
    Plain,
    /// The rewritten expression must evaluate to the DET ciphertext of the
    /// original expression — used for GROUP BY keys and join columns.
    Det,
    /// The rewritten expression must evaluate to an OPE ciphertext.
    Ope,
    /// Any decryptable ciphertext of the original expression — used for
    /// projections fetched to the client.
    AnyDecryptable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_table1() {
        assert!(EncScheme::Det.supports_equality());
        assert!(!EncScheme::Det.supports_order());
        assert!(EncScheme::Ope.supports_order());
        assert!(!EncScheme::Ope.supports_sum());
        assert!(EncScheme::Hom.supports_sum());
        assert!(EncScheme::Search.supports_like());
        assert!(!EncScheme::Rnd.supports_equality());
        assert!(!EncScheme::Rnd.supports_order());
        assert!(!EncScheme::Rnd.supports_sum());
        assert!(!EncScheme::Rnd.supports_like());
    }

    #[test]
    fn leakage_ordering() {
        assert!(EncScheme::Rnd.strength_rank() < EncScheme::Det.strength_rank());
        assert!(EncScheme::Det.strength_rank() < EncScheme::Ope.strength_rank());
        assert_eq!(
            EncScheme::Hom.strength_rank(),
            EncScheme::Rnd.strength_rank()
        );
    }

    #[test]
    fn decryptability() {
        assert!(EncScheme::Det.decryptable());
        assert!(EncScheme::Rnd.decryptable());
        assert!(EncScheme::Hom.decryptable());
        assert!(!EncScheme::Ope.decryptable());
        assert!(!EncScheme::Search.decryptable());
    }

    #[test]
    fn suffixes_are_distinct() {
        let mut set = std::collections::HashSet::new();
        for s in EncScheme::ALL {
            assert!(set.insert(s.suffix()));
        }
    }
}
