//! The planner's cost model (§6.4 of the paper): server execution time,
//! network transfer time, and client post-processing (decryption) time, plus
//! the startup micro-profiler that measures per-scheme decryption costs.

use crate::design::Encryptor;
use crate::network::NetworkModel;
use crate::plan::{DecryptSpec, RemotePlan, SplitPlan};
use crate::schemes::EncScheme;
use monomi_engine::{Database, Value};
use monomi_sql::ast::{Expr, Query, TableRef};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Per-value decryption costs in seconds, measured at client startup (§6.4:
/// "running a profiler that decrypts a small amount of data when MONOMI is
/// first launched").
#[derive(Clone, Copy, Debug)]
pub struct DecryptProfile {
    pub det_int_seconds: f64,
    pub det_str_seconds: f64,
    pub rnd_seconds: f64,
    pub hom_seconds: f64,
    /// Per-operation cost of one server-side homomorphic addition (one
    /// Montgomery ciphertext multiplication modulo n²). Server-side HOM
    /// aggregation pays this once per input row (§5.3), so it is measured
    /// alongside the per-value decrypt costs and used to price
    /// `paillier_sum` in candidate plans.
    pub hom_add_seconds: f64,
    /// Observed speedup of the server's morsel-parallel execution at the
    /// client's configured worker count (wall-clock of one thread doing W
    /// work over wall-clock of N threads sharing W·N work, on an
    /// embarrassingly parallel homomorphic fold — an upper bound). The
    /// planner prices server compute by wall-clock, discounting this factor
    /// through Amdahl's law for the serial phases real queries have. 1.0
    /// when profiling is skipped or a single thread is configured; never
    /// below 1.0 and never above the thread count.
    pub effective_parallelism: f64,
}

impl Default for DecryptProfile {
    fn default() -> Self {
        // Conservative defaults used when profiling is skipped.
        DecryptProfile {
            det_int_seconds: 2e-6,
            det_str_seconds: 4e-6,
            rnd_seconds: 4e-6,
            hom_seconds: 3e-4,
            hom_add_seconds: 2e-6,
            effective_parallelism: 1.0,
        }
    }
}

impl DecryptProfile {
    /// Measures decryption costs with the client's actual keys. `threads` is
    /// the worker count the client will actually execute server queries with
    /// (`ClientConfig::exec_options`, falling back to the environment) — the
    /// effective-parallelism probe must measure that configuration, not an
    /// unrelated one.
    pub fn measure(encryptor: &Encryptor, threads: usize) -> DecryptProfile {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let master = encryptor.master_key();
        let fpe = master.det_int("profile", "col", 64);
        let det_str = master.det_bytes("profile", "col");
        let rnd = master.rnd("profile", "col");
        let paillier = encryptor.paillier();

        let det_ct: Vec<u64> = (0..64u64).map(|i| fpe.encrypt(i * 977)).collect();
        let start = Instant::now();
        for &c in &det_ct {
            std::hint::black_box(fpe.decrypt(c));
        }
        let det_int_seconds = start.elapsed().as_secs_f64() / det_ct.len() as f64;

        let str_ct: Vec<Vec<u8>> = (0..32)
            .map(|i| det_str.encrypt(format!("profiled string value {i}").as_bytes()))
            .collect();
        let start = Instant::now();
        for c in &str_ct {
            std::hint::black_box(det_str.decrypt(c));
        }
        let det_str_seconds = start.elapsed().as_secs_f64() / str_ct.len() as f64;

        let rnd_ct: Vec<Vec<u8>> = (0..32)
            .map(|i| rnd.encrypt(&mut rng, format!("profiled string value {i}").as_bytes()))
            .collect();
        let start = Instant::now();
        for c in &rnd_ct {
            std::hint::black_box(rnd.decrypt(c));
        }
        let rnd_seconds = start.elapsed().as_secs_f64() / rnd_ct.len() as f64;

        let hom_ct: Vec<_> = (0..8u64)
            .map(|i| paillier.encrypt_u64(&mut rng, i))
            .collect();
        let start = Instant::now();
        for c in &hom_ct {
            std::hint::black_box(paillier.decrypt(c));
        }
        let hom_seconds = start.elapsed().as_secs_f64() / hom_ct.len() as f64;

        // Per-op homomorphic-add cost: one long chained sum amortizes the
        // Montgomery conversions exactly like the server's aggregation loop.
        const HOM_ADD_OPS: usize = 256;
        let start = Instant::now();
        let chain: Vec<_> = std::iter::repeat_with(|| hom_ct.iter())
            .take((HOM_ADD_OPS / hom_ct.len()).max(1))
            .flatten()
            .collect();
        std::hint::black_box(paillier.sum_ciphertexts(chain.iter().copied()));
        let hom_add_seconds = start.elapsed().as_secs_f64() / chain.len() as f64;

        // Effective parallelism of the server's morsel workers: time one
        // thread folding the chain FOLDS times, then N threads each doing the
        // same work (N× total). Perfect scaling keeps the wall-clock equal;
        // the ratio is the factor the planner divides server compute terms
        // by. The region is long enough (FOLDS repeats) that thread
        // spawn/join overhead is amortized, and both sides take the best of
        // REPS runs so one scheduler hiccup cannot skew the factor that
        // scales every server cost term.
        let effective_parallelism = if threads <= 1 {
            1.0
        } else {
            const FOLDS: usize = 8;
            const REPS: usize = 3;
            let fold_chain = || {
                for _ in 0..FOLDS {
                    std::hint::black_box(paillier.sum_ciphertexts(chain.iter().copied()));
                }
            };
            let best_of = |f: &mut dyn FnMut()| {
                let mut best = f64::INFINITY;
                for _ in 0..REPS {
                    let start = Instant::now();
                    f();
                    best = best.min(start.elapsed().as_secs_f64());
                }
                best
            };
            let serial = best_of(&mut || fold_chain());
            let parallel = best_of(&mut || {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        scope.spawn(fold_chain);
                    }
                });
            });
            if parallel > 0.0 && serial > 0.0 {
                (serial * threads as f64 / parallel).clamp(1.0, threads as f64)
            } else {
                1.0
            }
        };

        DecryptProfile {
            det_int_seconds,
            det_str_seconds,
            rnd_seconds,
            hom_seconds,
            hom_add_seconds,
            effective_parallelism,
        }
    }
}

/// Estimated cost of one candidate plan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    pub server_seconds: f64,
    pub network_seconds: f64,
    pub decrypt_seconds: f64,
    pub client_seconds: f64,
}

impl CostBreakdown {
    /// Total cost in estimated seconds.
    pub fn total(&self) -> f64 {
        self.server_seconds + self.network_seconds + self.decrypt_seconds + self.client_seconds
    }
}

/// Conversion factor from the engine's abstract cost units into seconds. Both
/// the plaintext baseline and MONOMI go through the same conversion, so the
/// comparisons the planner makes are unaffected by its absolute value.
const COST_UNIT_SECONDS: f64 = 5e-5;
/// Client-side per-row processing cost for residual operators.
const CLIENT_ROW_SECONDS: f64 = 2e-6;
/// Server-side cost per byte the vectorized scan materializes *after*
/// filtering (selection-vector survivors only). Encrypted ciphertexts widen
/// post-filter rows just like they widen the scan, so this term is scaled by
/// the same expansion factor; selective queries pay proportionally less.
const MATERIALIZE_BYTE_SECONDS: f64 = 1e-9;
/// Selectivity above which the engine's runtime planner keeps the full
/// vectorized scan instead of probing secondary indexes — the same crossover
/// `monomi-engine` applies, mirrored here so estimates and execution pick the
/// same access path.
pub const INDEX_SELECTIVITY_CROSSOVER: f64 = 0.25;
/// Fixed overhead of one index probe: the per-segment binary searches over
/// the sorted key blocks plus reading the posting headers.
const INDEX_PROBE_BASE_SECONDS: f64 = 2e-6;
/// Per fetched row: posting-list read plus the late-materializing gather's
/// random access, priced at 3× the sequential per-tuple scan cost.
const INDEX_PROBE_ROW_SECONDS: f64 = 3.0 * SCAN_ROW_SECONDS;
/// Sequential scan cost per tuple in seconds: the engine estimator's
/// `CPU_TUPLE_COST` through the same abstract-unit conversion, so the probe
/// vs scan comparison is made in the scan term's own currency.
const SCAN_ROW_SECONDS: f64 = monomi_engine::stats::CPU_TUPLE_COST * COST_UNIT_SECONDS;

/// Assumed serial fraction of server-side query execution (hash-join builds,
/// partial-aggregate merges, sorts, result assembly, morsel dispatch). The
/// profiler's `effective_parallelism` is measured on an embarrassingly
/// parallel homomorphic fold — an upper bound only the fully parallel portion
/// of a query attains — so server terms are discounted through Amdahl's law
/// with this fraction instead of being divided by the raw factor.
const SERVER_SERIAL_FRACTION: f64 = 0.2;

/// Cost model for split plans.
pub struct CostModel<'a> {
    /// Plaintext database (used only for statistics/cardinalities; its
    /// contents stay on the trusted side).
    pub plain: &'a Database,
    pub profile: DecryptProfile,
    pub network: NetworkModel,
}

impl<'a> CostModel<'a> {
    /// Estimates the cost of a split plan for a query whose *plaintext* form
    /// is `original` (used for cardinality estimation).
    pub fn plan_cost(&self, plan: &SplitPlan, original: &Query) -> CostBreakdown {
        match plan {
            SplitPlan::Remote(rp) => self.remote_cost(rp, original),
            SplitPlan::Client { query, children } => {
                let mut total = CostBreakdown::default();
                let mut child_rows = 0.0;
                for (_, child) in children {
                    let child_query = match child {
                        SplitPlan::Remote(r) => r.server_query.clone(),
                        SplitPlan::Client { query, .. } => query.clone(),
                    };
                    let c = self.plan_cost(child, &child_query);
                    total.server_seconds += c.server_seconds;
                    total.network_seconds += c.network_seconds;
                    total.decrypt_seconds += c.decrypt_seconds;
                    total.client_seconds += c.client_seconds;
                    child_rows += self.plain.estimate(&child_query).result_rows;
                }
                // Client-side evaluation of the original query over the
                // materialized children.
                let est = self.plain.estimate(query);
                total.client_seconds +=
                    child_rows * CLIENT_ROW_SECONDS * 4.0 + est.result_rows * CLIENT_ROW_SECONDS;
                total
            }
        }
    }

    fn remote_cost(&self, rp: &RemotePlan, original: &Query) -> CostBreakdown {
        let mut cost = CostBreakdown::default();

        // Children (sub-selects executed in separate rounds).
        for (sub, child) in &rp.subquery_children {
            let c = self.plan_cost(child, sub);
            cost.server_seconds += c.server_seconds;
            cost.network_seconds += c.network_seconds;
            cost.decrypt_seconds += c.decrypt_seconds;
            cost.client_seconds += c.client_seconds;
        }

        // Server execution: the original query's cost estimate scaled by the
        // width expansion of the encrypted tables it scans, plus a
        // selectivity-aware materialization term — the vectorized scan only
        // materializes post-filter bytes, so selective predicates shrink this
        // component instead of paying for every scanned row. Server compute
        // is priced by wall-clock: morsel-parallel execution spreads it over
        // the profiled effective-parallelism factor, Amdahl-discounted for
        // the serial phases real queries have and the probe does not.
        let measured = self.profile.effective_parallelism.max(1.0);
        let parallelism =
            1.0 / (SERVER_SERIAL_FRACTION + (1.0 - SERVER_SERIAL_FRACTION) / measured);
        let est_original = self.plain.estimate(original);
        let expansion = self.scan_expansion(original);
        cost.server_seconds +=
            est_original.server_cost * COST_UNIT_SECONDS * expansion / parallelism;
        // Access-path refinement: when the WHERE is selective enough that the
        // engine probes secondary indexes instead of scanning, credit the
        // difference between the full per-tuple scan term and the probe
        // price over the base-table rows. Unselective queries clear nothing
        // — the crossover keeps the scan term intact.
        let base_rows: f64 = original
            .from
            .iter()
            .map(|t| match t {
                TableRef::Table { name, .. } => self
                    .plain
                    .table(name)
                    .map(|t| t.row_count() as f64)
                    .unwrap_or(0.0),
                TableRef::Subquery { .. } => 0.0,
            })
            .sum();
        let (path, probe_seconds) = self.access_path(base_rows, est_original.scan_selectivity);
        if path == AccessPath::IndexProbe {
            let scan_seconds = base_rows * SCAN_ROW_SECONDS;
            cost.server_seconds -=
                (scan_seconds - probe_seconds).max(0.0) * expansion / parallelism;
        }
        cost.server_seconds +=
            est_original.post_filter_bytes * MATERIALIZE_BYTE_SECONDS * expansion / parallelism;

        // Result cardinality of the server query.
        let grouped = rp.server_grouped && original.is_aggregate_query();
        let result_rows = if grouped {
            est_original.result_rows.max(1.0)
        } else {
            // Without server grouping the server ships (filtered) rows.
            let mut ungrouped = original.clone();
            ungrouped.group_by = Vec::new();
            ungrouped.having = None;
            ungrouped.projections = original.projections.clone();
            ungrouped.limit = None;
            self.plain.estimate(&ungrouped).result_rows.max(1.0)
        };
        let rows_per_group = if grouped {
            let mut ungrouped = original.clone();
            ungrouped.group_by = Vec::new();
            ungrouped.having = None;
            ungrouped.limit = None;
            (self.plain.estimate(&ungrouped).result_rows / result_rows).max(1.0)
        } else {
            1.0
        };

        // Transfer and decrypt per output column.
        let mut row_bytes = 0.0;
        let mut decrypt_per_row = 0.0;
        let mut hom_agg_columns = 0.0;
        for out in &rp.outputs {
            match &out.decrypt {
                DecryptSpec::Plain => {
                    row_bytes += 8.0;
                }
                DecryptSpec::Column { scheme, ty, .. } => {
                    let (bytes, secs) = match (scheme, ty) {
                        (EncScheme::Det, monomi_engine::ColumnType::Str) => {
                            (32.0, self.profile.det_str_seconds)
                        }
                        (EncScheme::Det, _) => (8.0, self.profile.det_int_seconds),
                        (EncScheme::Rnd, _) => (48.0, self.profile.rnd_seconds),
                        _ => (16.0, self.profile.det_int_seconds),
                    };
                    row_bytes += bytes;
                    decrypt_per_row += secs;
                }
                DecryptSpec::HomGroupSum { .. } | DecryptSpec::HomSum { .. } => {
                    row_bytes += 256.0;
                    decrypt_per_row += self.profile.hom_seconds;
                    hom_agg_columns += 1.0;
                }
                DecryptSpec::GroupValues { ty, .. } => {
                    let per_value = match ty {
                        monomi_engine::ColumnType::Str => (32.0, self.profile.det_str_seconds),
                        _ => (8.0, self.profile.det_int_seconds),
                    };
                    row_bytes += per_value.0 * rows_per_group;
                    decrypt_per_row += per_value.1 * rows_per_group;
                }
            }
        }
        let transfer_bytes = row_bytes * result_rows;
        cost.network_seconds += self.network.transfer_seconds(transfer_bytes as u64);
        cost.decrypt_seconds += decrypt_per_row * result_rows;

        // Server-side HOM aggregation: every `paillier_sum` output costs one
        // ciphertext multiplication per input row of its group (§5.3), priced
        // with the profiler-measured per-op homomorphic-add cost and spread
        // over the morsel workers like every other server compute term.
        if hom_agg_columns > 0.0 {
            cost.server_seconds +=
                hom_agg_columns * self.profile.hom_add_seconds * rows_per_group * result_rows
                    / parallelism;
        }

        // Residual client computation.
        let mut client_rows = result_rows;
        if rp.local_group_by.is_some() {
            client_rows *= 2.0;
        }
        client_rows *= 1.0 + rp.local_filters.len() as f64 * 0.5;
        cost.client_seconds += client_rows * CLIENT_ROW_SECONDS;

        cost
    }

    /// Ratio between the encrypted width of the tables scanned by a query and
    /// their plaintext width. Approximated from the design's storage
    /// accounting at client construction time; here we use a fixed factor per
    /// scheme mix, so the value only depends on what the server must read.
    fn scan_expansion(&self, original: &Query) -> f64 {
        // Without a loaded encrypted database at design time we approximate
        // expansion with the design-independent constant the paper reports
        // (1.7–2×). The ordering of candidate plans is unaffected because all
        // candidates scan the same tables.
        let tables = original
            .from
            .iter()
            .filter(|t| matches!(t, TableRef::Table { .. }))
            .count()
            .max(1);
        1.7 + 0.05 * (tables as f64 - 1.0)
    }

    /// Prices both access paths for a scan of `rows` rows whose indexable
    /// WHERE conjuncts keep `selectivity` of them, and picks the cheaper:
    /// a secondary-index probe costs its fixed overhead plus the fetched
    /// rows' posting reads and random-access gathers, a full scan costs every
    /// row sequentially. With the constants above the break-even sits at the
    /// engine's [`INDEX_SELECTIVITY_CROSSOVER`] (plus the vanishing base
    /// term), so the model picks the path the executor will actually take —
    /// a crossover, not index-always.
    pub fn access_path(&self, rows: f64, selectivity: f64) -> (AccessPath, f64) {
        let scan = rows * SCAN_ROW_SECONDS;
        let probe = INDEX_PROBE_BASE_SECONDS
            + rows * selectivity.clamp(0.0, 1.0) * (INDEX_PROBE_ROW_SECONDS + SCAN_ROW_SECONDS);
        if probe < scan {
            (AccessPath::IndexProbe, probe)
        } else {
            (AccessPath::FullScan, scan)
        }
    }
}

/// The access path the server's scan is expected to take for a predicate,
/// as chosen by [`CostModel::access_path`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Seed the scan from DET/OPE index postings; touch only fetched rows.
    IndexProbe,
    /// Vectorized full scan (zone-map pruning still applies).
    FullScan,
}

/// Helper used by the planner to bind parameters before planning: replaces
/// `:n` placeholders with literal values.
pub fn bind_params(query: &Query, params: &[Value]) -> Query {
    let mut q = query.clone();
    let bind_expr = |e: &Expr| -> Expr { bind_expr_params(e, params) };
    for p in &mut q.projections {
        p.expr = bind_expr(&p.expr);
    }
    if let Some(w) = &q.where_clause {
        q.where_clause = Some(bind_expr(w));
    }
    q.group_by = q.group_by.iter().map(&bind_expr).collect();
    if let Some(h) = &q.having {
        q.having = Some(bind_expr(h));
    }
    for o in &mut q.order_by {
        o.expr = bind_expr(&o.expr);
    }
    for t in &mut q.from {
        if let TableRef::Subquery { query: sub, .. } = t {
            **sub = bind_params(sub, params);
        }
    }
    q
}

fn bind_expr_params(expr: &Expr, params: &[Value]) -> Expr {
    match expr {
        Expr::Param(n) => {
            let v = params.get(n - 1).cloned().unwrap_or(Value::Null);
            value_to_literal_expr(&v)
        }
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(bind_expr_params(left, params)),
            op: *op,
            right: Box::new(bind_expr_params(right, params)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(bind_expr_params(expr, params)),
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(bind_expr_params(a, params))),
            distinct: *distinct,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| bind_expr_params(a, params)).collect(),
        },
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(bind_expr_params(o, params))),
            when_then: when_then
                .iter()
                .map(|(w, t)| (bind_expr_params(w, params), bind_expr_params(t, params)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(bind_expr_params(e, params))),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr_params(expr, params)),
            pattern: Box::new(bind_expr_params(pattern, params)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr_params(expr, params)),
            list: list.iter().map(|e| bind_expr_params(e, params)).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(bind_expr_params(expr, params)),
            subquery: Box::new(bind_params(subquery, params)),
            negated: *negated,
        },
        Expr::Exists { subquery, negated } => Expr::Exists {
            subquery: Box::new(bind_params(subquery, params)),
            negated: *negated,
        },
        Expr::ScalarSubquery(subquery) => {
            Expr::ScalarSubquery(Box::new(bind_params(subquery, params)))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr_params(expr, params)),
            low: Box::new(bind_expr_params(low, params)),
            high: Box::new(bind_expr_params(high, params)),
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: Box::new(bind_expr_params(expr, params)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr_params(expr, params)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn value_to_literal_expr(v: &Value) -> Expr {
    use monomi_sql::ast::Literal;
    match v {
        Value::Int(i) => Expr::Literal(Literal::Number(i.to_string())),
        Value::Float(f) => Expr::Literal(Literal::Number(format!("{f}"))),
        Value::Str(s) => Expr::Literal(Literal::String(s.clone())),
        Value::Date(d) => Expr::Literal(Literal::Date(monomi_engine::date::format_date(*d))),
        _ => Expr::Literal(Literal::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_path_crossover_matches_the_engine() {
        let plain = Database::in_memory();
        let model = CostModel {
            plain: &plain,
            profile: DecryptProfile::default(),
            network: NetworkModel::paper_default(),
        };
        let rows = 1_000_000.0;
        // Selective predicates probe, unselective ones keep the scan.
        let (path, cost) = model.access_path(rows, 0.001);
        assert_eq!(path, AccessPath::IndexProbe);
        assert!(cost < rows * SCAN_ROW_SECONDS);
        let (path, cost) = model.access_path(rows, 0.9);
        assert_eq!(path, AccessPath::FullScan);
        assert!((cost - rows * SCAN_ROW_SECONDS).abs() < 1e-12);
        // The break-even sits at the engine's published crossover (the fixed
        // probe base vanishes against a million rows).
        let (lo, _) = model.access_path(rows, INDEX_SELECTIVITY_CROSSOVER - 0.01);
        let (hi, _) = model.access_path(rows, INDEX_SELECTIVITY_CROSSOVER + 0.01);
        assert_eq!(lo, AccessPath::IndexProbe);
        assert_eq!(hi, AccessPath::FullScan);
        // Out-of-range selectivities clamp instead of extrapolating.
        assert_eq!(model.access_path(rows, -3.0).0, AccessPath::IndexProbe);
        assert_eq!(model.access_path(rows, 7.0).0, AccessPath::FullScan);
        // A tiny table never pays the probe's fixed overhead.
        assert_eq!(model.access_path(1.0, 0.0).0, AccessPath::FullScan);
    }
}
