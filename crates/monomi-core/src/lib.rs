#![forbid(unsafe_code)]
//! # monomi-core
//!
//! A from-scratch Rust reproduction of **MONOMI** (Tu, Kaashoek, Madden,
//! Zeldovich — *Processing Analytical Queries over Encrypted Data*, VLDB 2013):
//! a system for executing analytical SQL workloads over an encrypted database
//! hosted on an untrusted server.
//!
//! The crate implements the paper's contributions:
//!
//! * **Split client/server execution** ([`plan`], [`localexec`]) — Algorithm 1:
//!   as much of each query as possible runs on the untrusted server over
//!   encrypted columns; the trusted client decrypts intermediate results and
//!   finishes the computation.
//! * **Optimization techniques** (§5): per-row precomputation, space-efficient
//!   encryption, grouped homomorphic addition, and conservative pre-filtering.
//! * **Designer** ([`designer`]) — chooses the physical design (which
//!   encryptions of which expressions to materialize), optionally under a
//!   space budget via an ILP solved by branch-and-bound.
//! * **Planner** ([`planner`], [`cost`]) — chooses the best split execution
//!   plan for each query using a cost model over server cost estimates,
//!   network transfer, and client decryption.
//! * **Client library** ([`client::MonomiClient`]) — the only component that
//!   holds decryption keys.
//!
//! ```no_run
//! use monomi_core::client::{ClientConfig, DesignStrategy, MonomiClient};
//! use monomi_engine::Database;
//! use monomi_sql::parse_query;
//!
//! # fn example(plain: Database) -> Result<(), monomi_core::CoreError> {
//! let workload = vec![parse_query("SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey").unwrap()];
//! let (client, outcome) = MonomiClient::setup(
//!     &plain, &workload, DesignStrategy::Designer, &ClientConfig::default())?;
//! println!("designer took {:.1}s", outcome.setup_seconds);
//! let (rows, timings) = client.execute(
//!     "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey", &[])?;
//! println!("{} groups in {:.3}s", rows.len(), timings.total_seconds());
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod cost;
pub mod design;
pub mod designer;
pub mod localexec;
pub mod network;
pub mod plan;
pub mod planner;
pub mod rewrite;
pub mod schemes;
pub mod transport;

pub use client::{ClientConfig, DesignStrategy, MonomiClient};
pub use design::{ColumnDesign, Encryptor, PhysicalDesign, TableDesign};
pub use designer::{DesignOutcome, Designer};
pub use localexec::{QueryTimings, SplitExecutor};
pub use network::NetworkModel;
pub use plan::{PlanOptions, SplitPlan};
pub use planner::{EncPair, EncUnit, Planner};
pub use schemes::{EncRequest, EncScheme};
pub use transport::{
    InProcessTransport, RemoteExecution, ServerErrorCode, ServerTransport, TcpTransport,
    TransportOptions, WireMetrics,
};

/// Observability vocabulary, re-exported so callers consuming traced results
/// need not depend on `monomi-obs` directly.
pub use monomi_obs::{Span, TraceId};

/// The class of a transport failure, attached to [`CoreError`] so callers and
/// tests can assert on *what kind* of failure occurred instead of matching
/// message strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// The server actively refused the TCP connection.
    Refused,
    /// A connect attempt or a request exceeded its deadline.
    Timeout,
    /// The connection dropped (reset, EOF, broken pipe) and reconnection
    /// within the retry budget did not succeed.
    Disconnected,
    /// Bytes arrived but were not a valid frame (bad magic, checksum
    /// mismatch, malformed payload) or the response was cut mid-frame.
    /// Never retried: the transport cannot know what the peer applied.
    Corrupt,
    /// Client and server speak different wire versions.
    HandshakeVersionMismatch,
    /// The server answered with a typed error response.
    Server(monomi_proto::ErrorCode),
}

/// Error type for MONOMI client-side operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreError {
    /// Human-readable description.
    pub message: String,
    /// The transport failure class, when this error crossed the wire layer.
    pub transport: Option<TransportErrorKind>,
}

impl CoreError {
    /// Creates an error from anything stringifiable.
    pub fn new(message: impl Into<String>) -> Self {
        CoreError {
            message: message.into(),
            transport: None,
        }
    }

    /// Creates a typed transport error.
    pub fn transport(kind: TransportErrorKind, message: impl Into<String>) -> Self {
        CoreError {
            message: message.into(),
            transport: Some(kind),
        }
    }

    /// The transport failure class, if any.
    pub fn transport_kind(&self) -> Option<TransportErrorKind> {
        self.transport
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "monomi error: {}", self.message)
    }
}

impl std::error::Error for CoreError {}

impl From<monomi_engine::EngineError> for CoreError {
    fn from(e: monomi_engine::EngineError) -> Self {
        CoreError::new(e.to_string())
    }
}
