//! The MONOMI physical designer (§6): chooses which encryptions of which
//! expressions to materialize on the server, optionally under a space budget,
//! using the planner's cost model.
//!
//! Three strategies are provided, matching the paper's evaluation:
//!
//! * [`Designer::unconstrained`] — §6.2: per-query best sets, unioned.
//! * [`Designer::with_space_budget`] — §6.5: the ILP formulation, solved with
//!   the branch-and-bound solver in [`ilp`].
//! * [`Designer::space_greedy`] — the Space-Greedy baseline of §8.6 (drop the
//!   largest column until the budget is met).

use crate::cost::DecryptProfile;
use crate::design::PhysicalDesign;
use crate::network::NetworkModel;
use crate::plan::PlanOptions;
use crate::planner::{extract_enc_units, EncPair, Planner};
use crate::schemes::EncScheme;
use monomi_crypto::{MasterKey, PaillierKey};
use monomi_engine::{ColumnType, Database};
use monomi_sql::ast::Query;
use std::collections::BTreeSet;

/// The designer.
pub struct Designer<'a> {
    pub plain: &'a Database,
    pub master: MasterKey,
    pub paillier: PaillierKey,
    pub paillier_bits: usize,
    pub network: NetworkModel,
    pub profile: DecryptProfile,
    pub options: PlanOptions,
}

/// Outcome of a designer run.
#[derive(Clone, Debug)]
pub struct DesignOutcome {
    pub design: PhysicalDesign,
    /// Estimated total workload cost (seconds) under the chosen design.
    pub estimated_cost: f64,
    /// Designer wall-clock time in seconds (the paper reports 52 s for TPC-H).
    pub setup_seconds: f64,
}

impl<'a> Designer<'a> {
    fn planner(&self) -> Planner<'a> {
        Planner {
            plain: self.plain,
            master: self.master.clone(),
            paillier: self.paillier.clone(),
            profile: self.profile,
            network: self.network,
            options: self.options,
            paillier_bits: self.paillier_bits,
            max_subsets: 64,
        }
    }

    /// §6.2: for each query choose the cheapest plan over the pruned power set
    /// of its EncSet; the design is the union of the chosen pairs.
    pub fn unconstrained(&self, workload: &[Query]) -> DesignOutcome {
        let started = std::time::Instant::now();
        let planner = self.planner();
        let mut chosen: BTreeSet<EncPair> = BTreeSet::new();
        let mut total_cost = 0.0;
        for query in workload {
            let units = extract_enc_units(query, self.plain);
            let candidates = planner.candidate_plans(query, &units);
            if let Some(best) = candidates.first() {
                total_cost += best.cost.total();
                for &ui in &best.enabled_units {
                    for p in &units[ui].pairs {
                        chosen.insert(p.clone());
                    }
                }
            }
        }
        let design = self.design_from_pairs(&chosen);
        DesignOutcome {
            design,
            estimated_cost: total_cost,
            setup_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// §6.5: minimize total workload cost subject to the server space budget
    /// `space_factor × plaintext size`, via the ILP formulation.
    pub fn with_space_budget(&self, workload: &[Query], space_factor: f64) -> DesignOutcome {
        let started = std::time::Instant::now();
        let planner = self.planner();
        let plain_bytes = self.plain.total_size_bytes() as f64;
        let budget = space_factor * plain_bytes;

        // Baseline (DET/RND coverage of every column) is mandatory; its size is
        // the floor every candidate pays.
        let baseline = self.design_from_pairs(&BTreeSet::new());
        let baseline_bytes = baseline.storage_bytes(self.plain, &self.paillier) as f64;

        // Per query: candidate plans (cheapest-first), each with the pairs it
        // needs. This is the cost(i, j) matrix of the ILP.
        let mut all_pairs: Vec<EncPair> = Vec::new();
        let mut per_query: Vec<Vec<(f64, Vec<usize>)>> = Vec::new();
        for query in workload {
            let units = extract_enc_units(query, self.plain);
            let candidates = planner.candidate_plans(query, &units);
            let mut rows = Vec::new();
            for cand in candidates.iter().take(8) {
                let mut pair_idx = Vec::new();
                for &ui in &cand.enabled_units {
                    for p in &units[ui].pairs {
                        let idx = match all_pairs.iter().position(|q| q == p) {
                            Some(i) => i,
                            None => {
                                all_pairs.push(p.clone());
                                all_pairs.len() - 1
                            }
                        };
                        if !pair_idx.contains(&idx) {
                            pair_idx.push(idx);
                        }
                    }
                }
                rows.push((cand.cost.total(), pair_idx));
            }
            if rows.is_empty() {
                rows.push((f64::INFINITY, Vec::new()));
            }
            per_query.push(rows);
        }

        // Incremental size of each pair beyond the baseline.
        let pair_sizes: Vec<f64> = all_pairs.iter().map(|p| self.pair_size_bytes(p)).collect();

        let problem = ilp::DesignProblem {
            per_query,
            pair_sizes,
            budget: (budget - baseline_bytes).max(0.0),
        };
        let solution = ilp::solve(&problem);
        let mut chosen: BTreeSet<EncPair> = BTreeSet::new();
        for (i, enabled) in solution.enabled_pairs.iter().enumerate() {
            if *enabled {
                chosen.insert(all_pairs[i].clone());
            }
        }
        let design = self.design_from_pairs(&chosen);
        DesignOutcome {
            design,
            estimated_cost: solution.cost,
            setup_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Space-Greedy baseline (§8.6): start from the unconstrained design and
    /// drop the largest optional column until the budget is met.
    pub fn space_greedy(&self, workload: &[Query], space_factor: f64) -> DesignOutcome {
        let started = std::time::Instant::now();
        let unconstrained = self.unconstrained(workload);
        let mut design = unconstrained.design;
        let budget = space_factor * self.plain.total_size_bytes() as f64;
        loop {
            let current = design.storage_bytes(self.plain, &self.paillier) as f64;
            if current <= budget {
                break;
            }
            // Find the largest droppable ⟨column, scheme⟩ (never drop the last
            // scheme of a base column — every column must stay encrypted).
            let mut best: Option<(String, String, EncScheme, f64)> = None;
            for td in design.tables.values() {
                let rows = self
                    .plain
                    .table(&td.table)
                    .map(|t| t.row_count())
                    .unwrap_or(0) as f64;
                for cd in &td.columns {
                    for scheme in &cd.schemes {
                        if cd.schemes.len() == 1 && !cd.is_precomputed() {
                            continue;
                        }
                        let width = match scheme {
                            EncScheme::Hom => 256.0,
                            EncScheme::Ope => 16.0,
                            EncScheme::Rnd => 48.0,
                            EncScheme::Search => 48.0,
                            EncScheme::Det => 8.0,
                        };
                        let size = width * rows;
                        if best.as_ref().is_none_or(|(_, _, _, s)| size > *s) {
                            best = Some((td.table.clone(), cd.base_name.clone(), *scheme, size));
                        }
                    }
                }
            }
            match best {
                Some((table, base, scheme, _)) => {
                    let td = design.table_mut(&table);
                    if let Some(cd) = td.columns.iter_mut().find(|c| c.base_name == base) {
                        cd.schemes.remove(&scheme);
                    }
                    td.columns.retain(|c| !c.schemes.is_empty());
                }
                None => break,
            }
        }
        DesignOutcome {
            design,
            estimated_cost: unconstrained.estimated_cost,
            setup_seconds: started.elapsed().as_secs_f64(),
        }
    }

    fn design_from_pairs(&self, pairs: &BTreeSet<EncPair>) -> PhysicalDesign {
        let mut design = PhysicalDesign::new(self.paillier_bits);
        for p in pairs {
            let td = design.table_mut(&p.table);
            td.add(p.source.clone(), p.ty(), p.scheme);
        }
        design.add_baseline_coverage(self.plain);
        for td in design.tables.values_mut() {
            td.col_packing = true;
            td.multirow_packing = true;
        }
        design
    }

    fn pair_size_bytes(&self, pair: &EncPair) -> f64 {
        let rows = self
            .plain
            .table(&pair.table)
            .map(|t| t.row_count())
            .unwrap_or(0) as f64;
        let width = match pair.scheme {
            EncScheme::Det => match pair.ty() {
                ColumnType::Str => 32.0,
                _ => 8.0,
            },
            EncScheme::Ope => 16.0,
            EncScheme::Rnd => 48.0,
            EncScheme::Search => 64.0,
            EncScheme::Hom => 64.0, // amortized by packing
        };
        rows * width
    }
}

/// A small exact solver for the designer's constrained formulation.
pub mod ilp {
    /// The ILP instance: for each query a list of candidate plans (cost and
    /// the indexes of the encryption pairs they require), the incremental size
    /// of each pair, and the space budget for those increments.
    #[derive(Clone, Debug)]
    pub struct DesignProblem {
        pub per_query: Vec<Vec<(f64, Vec<usize>)>>,
        pub pair_sizes: Vec<f64>,
        pub budget: f64,
    }

    /// Solution: which pairs are materialized and the resulting total cost.
    #[derive(Clone, Debug)]
    pub struct DesignSolution {
        pub enabled_pairs: Vec<bool>,
        pub cost: f64,
    }

    /// Branch-and-bound over the pair variables (the `e_k` of §6.5). For a
    /// fixed assignment of pairs, the optimal plan choice per query is simply
    /// the cheapest candidate whose pairs are all enabled, which makes the
    /// bound exact on fully assigned nodes and optimistic (all undecided pairs
    /// enabled) on partial nodes.
    pub fn solve(problem: &DesignProblem) -> DesignSolution {
        let n = problem.pair_sizes.len();
        // Candidate ordering: pairs that appear in cheap plans first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| problem.pair_sizes[a].total_cmp(&problem.pair_sizes[b]));

        let mut best = DesignSolution {
            enabled_pairs: vec![false; n],
            cost: evaluate(problem, &vec![false; n]),
        };
        // Greedy warm start: enable pairs in size order while they fit.
        let mut greedy = vec![false; n];
        let mut used = 0.0;
        for &i in &order {
            if used + problem.pair_sizes[i] <= problem.budget {
                greedy[i] = true;
                used += problem.pair_sizes[i];
            }
        }
        let greedy_cost = evaluate(problem, &greedy);
        if greedy_cost < best.cost {
            best = DesignSolution {
                enabled_pairs: greedy,
                cost: greedy_cost,
            };
        }

        let mut assignment: Vec<Option<bool>> = vec![None; n];
        branch(problem, &order, 0, &mut assignment, 0.0, &mut best);
        best
    }

    fn branch(
        problem: &DesignProblem,
        order: &[usize],
        depth: usize,
        assignment: &mut Vec<Option<bool>>,
        used_space: f64,
        best: &mut DesignSolution,
    ) {
        // Bound: cost assuming every undecided pair is enabled (ignores space,
        // so it is a valid lower bound on achievable cost).
        let optimistic = evaluate_partial(problem, assignment);
        if optimistic >= best.cost {
            return;
        }
        if depth == order.len() {
            let enabled: Vec<bool> = assignment.iter().map(|a| a.unwrap_or(false)).collect();
            let cost = evaluate(problem, &enabled);
            if cost < best.cost {
                *best = DesignSolution {
                    enabled_pairs: enabled,
                    cost,
                };
            }
            return;
        }
        let var = order[depth];
        // Try enabling first (cheaper plans), then disabling.
        if used_space + problem.pair_sizes[var] <= problem.budget {
            assignment[var] = Some(true);
            branch(
                problem,
                order,
                depth + 1,
                assignment,
                used_space + problem.pair_sizes[var],
                best,
            );
        }
        assignment[var] = Some(false);
        branch(problem, order, depth + 1, assignment, used_space, best);
        assignment[var] = None;
    }

    fn evaluate(problem: &DesignProblem, enabled: &[bool]) -> f64 {
        let mut total = 0.0;
        for candidates in &problem.per_query {
            let mut best = f64::INFINITY;
            for (cost, pairs) in candidates {
                if pairs.iter().all(|&p| enabled[p]) {
                    best = best.min(*cost);
                }
            }
            total += best;
        }
        total
    }

    fn evaluate_partial(problem: &DesignProblem, assignment: &[Option<bool>]) -> f64 {
        let mut total = 0.0;
        for candidates in &problem.per_query {
            let mut best = f64::INFINITY;
            for (cost, pairs) in candidates {
                if pairs.iter().all(|&p| assignment[p] != Some(false)) {
                    best = best.min(*cost);
                }
            }
            total += best;
        }
        total
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn picks_cheapest_feasible_combination() {
            // Two queries, two pairs. Pair 0 is cheap to store and helps Q1;
            // pair 1 is huge and helps Q2 slightly.
            let problem = DesignProblem {
                per_query: vec![
                    vec![(1.0, vec![0]), (10.0, vec![])],
                    vec![(4.0, vec![1]), (5.0, vec![])],
                ],
                pair_sizes: vec![10.0, 1000.0],
                budget: 100.0,
            };
            let sol = solve(&problem);
            assert!(sol.enabled_pairs[0]);
            assert!(!sol.enabled_pairs[1]);
            assert!((sol.cost - 6.0).abs() < 1e-9);
        }

        #[test]
        fn unlimited_budget_enables_everything_useful() {
            let problem = DesignProblem {
                per_query: vec![vec![(1.0, vec![0, 1]), (50.0, vec![])]],
                pair_sizes: vec![10.0, 10.0],
                budget: 1e12,
            };
            let sol = solve(&problem);
            assert!((sol.cost - 1.0).abs() < 1e-9);
        }

        #[test]
        fn infeasible_pairs_fall_back_to_no_pair_plan() {
            let problem = DesignProblem {
                per_query: vec![vec![(1.0, vec![0]), (7.0, vec![])]],
                pair_sizes: vec![1000.0],
                budget: 10.0,
            };
            let sol = solve(&problem);
            assert!(!sol.enabled_pairs[0]);
            assert!((sol.cost - 7.0).abs() < 1e-9);
        }
    }
}
