//! The trusted client library: the only component holding decryption keys.
//!
//! [`MonomiClient`] wraps the full MONOMI pipeline: run the designer over a
//! representative workload, encrypt and load the database onto the (untrusted)
//! server, and at query time plan, execute, decrypt, and post-process queries,
//! returning plaintext results together with a timing breakdown.

use crate::cost::{bind_params, CostModel, DecryptProfile};
use crate::design::{Encryptor, PhysicalDesign};
use crate::designer::{DesignOutcome, Designer};
use crate::localexec::{QueryTimings, SplitExecutor};
use crate::network::NetworkModel;
use crate::plan::{PlanOptions, SplitPlan};
use crate::planner::Planner;
use crate::transport::{
    load_database_with, InProcessTransport, ServerTransport, TcpTransport, TransportOptions,
    WireMetrics,
};
use crate::CoreError;
use monomi_crypto::{MasterKey, PaillierKey};
use monomi_engine::{Database, ExecOptions, ResultSet, Value};
use monomi_obs::{Span, TraceId, TraceIdGen};
use monomi_sql::{parse_query, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for building a MONOMI deployment.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Paillier modulus size in bits (the paper uses 1,024; tests use less).
    pub paillier_bits: usize,
    /// Server space budget as a multiple of the plaintext size (paper: S = 2).
    pub space_budget: Option<f64>,
    /// Link / storage simulation parameters.
    pub network: NetworkModel,
    /// Which optimizations the planner may use.
    pub plan_options: PlanOptions,
    /// Deterministic seed for key generation and encryption randomness.
    pub seed: u64,
    /// Skip the startup decryption profiler (use defaults) for fast tests.
    pub skip_profiling: bool,
    /// Execution options for the engine (server-side morsel workers and the
    /// client's residual plaintext execution). `None` reads `MONOMI_THREADS`
    /// / `MONOMI_MORSEL_ROWS` from the environment once, at setup time;
    /// results are bit-identical at every thread count either way.
    pub exec_options: Option<ExecOptions>,
    /// Address of a running `monomi-server` (e.g. `127.0.0.1:7433`). `None`
    /// keeps the server in-process (the historical zero-copy path). With an
    /// address, setup ships the encrypted database over the wire and every
    /// server query runs through the TCP transport; results are
    /// byte-identical between the two.
    pub server_addr: Option<String>,
    /// Resilience knobs for the TCP transport (deadlines, retry budget,
    /// backoff). `None` reads `MONOMI_CONNECT_TIMEOUT_MS` /
    /// `MONOMI_DEADLINE_MS` / `MONOMI_RETRIES` / `MONOMI_BACKOFF_MS` from
    /// the environment at setup time. Ignored for in-process servers.
    pub transport: Option<TransportOptions>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            paillier_bits: 512,
            space_budget: Some(2.0),
            network: NetworkModel::paper_default(),
            plan_options: PlanOptions::default(),
            seed: 42,
            skip_profiling: false,
            exec_options: None,
            server_addr: None,
            transport: None,
        }
    }
}

/// How the physical design is chosen during setup.
#[derive(Clone, Debug)]
pub enum DesignStrategy {
    /// Run the designer (ILP when a space budget is configured).
    Designer,
    /// Space-Greedy baseline: drop largest columns until within budget.
    SpaceGreedy,
    /// Use an explicitly provided design (e.g. the CryptDB-style baseline).
    Manual(PhysicalDesign),
}

/// The trusted MONOMI client.
pub struct MonomiClient {
    plain_stats_db: Database,
    encryptor: Encryptor,
    /// Every server interaction goes through here: in-process for `None`
    /// [`ClientConfig::server_addr`], framed TCP otherwise.
    server: Box<dyn ServerTransport>,
    network: NetworkModel,
    profile: DecryptProfile,
    plan_options: PlanOptions,
    /// Resolved once at setup (config override or environment), so the
    /// profiled effective-parallelism and every executed query describe the
    /// same configuration.
    exec_options: ExecOptions,
    design_outcome: Option<DesignOutcome>,
    /// Mints the per-query trace ids the traced execution paths carry across
    /// the wire. Seeded from the client seed, so a pinned-seed run produces
    /// the same id sequence every time.
    trace_ids: TraceIdGen,
}

impl MonomiClient {
    /// Sets up a MONOMI deployment: designs the encrypted schema for the given
    /// representative workload, encrypts `plain` and loads it as the untrusted
    /// server's database.
    ///
    /// `plain` plays two roles, matching the paper: it is the data to outsource
    /// and the statistics sample the designer uses.
    pub fn setup(
        plain: &Database,
        workload: &[Query],
        strategy: DesignStrategy,
        config: &ClientConfig,
    ) -> Result<(Self, DesignOutcome), CoreError> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let master = MasterKey::generate(&mut rng);
        let paillier = PaillierKey::generate(&mut rng, config.paillier_bits.max(128));

        let profile = DecryptProfile::default();
        let designer = Designer {
            plain,
            master: master.clone(),
            paillier: paillier.clone(),
            paillier_bits: config.paillier_bits,
            network: config.network,
            profile,
            options: config.plan_options,
        };
        let outcome = match strategy {
            DesignStrategy::Designer => match config.space_budget {
                Some(s) => designer.with_space_budget(workload, s),
                None => designer.unconstrained(workload),
            },
            DesignStrategy::SpaceGreedy => {
                designer.space_greedy(workload, config.space_budget.unwrap_or(2.0))
            }
            DesignStrategy::Manual(design) => DesignOutcome {
                design,
                estimated_cost: 0.0,
                setup_seconds: 0.0,
            },
        };

        let client = Self::from_design(plain, outcome.design.clone(), master, paillier, config)?;
        let mut client = client;
        client.design_outcome = Some(outcome.clone());
        Ok((client, outcome))
    }

    /// Builds a client from an explicit design and keys (used by the baselines
    /// and the design-sensitivity experiments).
    pub fn from_design(
        plain: &Database,
        design: PhysicalDesign,
        master: MasterKey,
        paillier: PaillierKey,
        config: &ClientConfig,
    ) -> Result<Self, CoreError> {
        let encryptor = Encryptor::with_keys(master, paillier, design);
        let encrypted_db = encryptor.encrypt_database(plain, config.seed ^ 0x5eed)?;
        // Stand up the server: keep the encrypted database in-process, or
        // ship it (schemas, Paillier modulus, ciphertext rows) to a remote
        // monomi-server and drop the local copy — the trusted client then
        // holds only keys and statistics, matching the paper's deployment.
        let server: Box<dyn ServerTransport> = match &config.server_addr {
            None => Box::new(InProcessTransport::new(encrypted_db)),
            Some(addr) => {
                let opts = config.transport.unwrap_or_else(TransportOptions::from_env);
                let mut transport = TcpTransport::connect_with(addr, opts)?;
                load_database_with(
                    &mut transport,
                    &encrypted_db,
                    &encryptor.design().unindexed_by_table(),
                )?;
                Box::new(transport)
            }
        };
        // Resolve the execution options once: the profiler below and every
        // later query must describe the same configuration.
        let exec_options = config.exec_options.unwrap_or_else(ExecOptions::from_env);
        let profile = if config.skip_profiling {
            DecryptProfile::default()
        } else {
            DecryptProfile::measure(&encryptor, exec_options.threads)
        };
        // Keep a statistics-only copy of the plaintext database on the client
        // for the planner's cardinality estimates (the paper's client keeps
        // schema + statistics, not data; we reuse the same object for both
        // since it lives on the trusted side anyway).
        let plain_stats_db = clone_database(plain);
        Ok(MonomiClient {
            plain_stats_db,
            encryptor,
            server,
            network: config.network,
            profile,
            plan_options: config.plan_options,
            exec_options,
            design_outcome: None,
            trace_ids: TraceIdGen::new(config.seed),
        })
    }

    /// The physical design in use.
    pub fn design(&self) -> &PhysicalDesign {
        self.encryptor.design()
    }

    /// The outcome of the designer run, if the client was built via `setup`.
    pub fn design_outcome(&self) -> Option<&DesignOutcome> {
        self.design_outcome.as_ref()
    }

    /// The encrypted server database, when it lives in this process (tests
    /// and space accounting reach through this; with a remote server the
    /// client holds no copy and this returns `None`).
    pub fn encrypted_database(&self) -> Option<&Database> {
        self.server.in_process_database()
    }

    /// The transport every server interaction goes through.
    pub fn server_transport(&self) -> &dyn ServerTransport {
        self.server.as_ref()
    }

    /// Replaces the server transport with `wrap(current)`. This is the
    /// fault-injection seam: `monomi-faults` wraps the live transport in a
    /// `FaultyTransport` without the client knowing, so the chaos suite can
    /// drive every failure mode through the real execution pipeline.
    pub fn wrap_transport(
        &mut self,
        wrap: impl FnOnce(Box<dyn ServerTransport>) -> Box<dyn ServerTransport>,
    ) {
        let placeholder: Box<dyn ServerTransport> =
            Box::new(InProcessTransport::new(Database::in_memory()));
        let current = std::mem::replace(&mut self.server, placeholder);
        self.server = wrap(current);
    }

    /// Cumulative measured wire traffic (all zeros for in-process servers).
    pub fn wire_totals(&self) -> WireMetrics {
        self.server.wire_totals()
    }

    /// Actual bytes stored on the untrusted server (asked of the server
    /// itself when remote).
    pub fn server_size_bytes(&self) -> usize {
        self.server.server_size_bytes().unwrap_or(0) as usize
    }

    /// Analytic server size under the design (reflects multi-row packing).
    pub fn designed_size_bytes(&self) -> usize {
        self.design()
            .storage_bytes(&self.plain_stats_db, self.encryptor.paillier())
    }

    fn planner(&self) -> Planner<'_> {
        Planner {
            plain: &self.plain_stats_db,
            master: self.encryptor.master_key().clone(),
            paillier: self.encryptor.paillier().clone(),
            profile: self.profile,
            network: self.network,
            options: self.plan_options,
            paillier_bits: self.design().paillier_bits,
            max_subsets: 64,
        }
    }

    fn executor(&self) -> SplitExecutor<'_> {
        SplitExecutor {
            server: self.server.as_ref(),
            encryptor: &self.encryptor,
            network: &self.network,
            exec_options: self.exec_options,
        }
    }

    /// Plans a query without executing it (EXPLAIN).
    pub fn plan(&self, sql: &str, params: &[Value]) -> Result<SplitPlan, CoreError> {
        let query = parse_query(sql).map_err(|e| CoreError::new(e.to_string()))?;
        let bound = bind_params(&query, params);
        let (plan, _) = self.planner().best_plan(&bound, &self.encryptor);
        Ok(plan)
    }

    /// Executes a query end to end: plan, run remote parts on the encrypted
    /// server, decrypt, finish locally. Returns plaintext rows and timings.
    pub fn execute(
        &self,
        sql: &str,
        params: &[Value],
    ) -> Result<(ResultSet, QueryTimings), CoreError> {
        let query = parse_query(sql).map_err(|e| CoreError::new(e.to_string()))?;
        self.execute_query(&query, params)
    }

    /// Executes an already parsed query.
    pub fn execute_query(
        &self,
        query: &Query,
        params: &[Value],
    ) -> Result<(ResultSet, QueryTimings), CoreError> {
        let bound = bind_params(query, params);
        let (plan, _) = self.planner().best_plan(&bound, &self.encryptor);
        let executor = self.executor();
        executor.execute(&plan)
    }

    /// Executes a specific plan (used by the optimization-ablation harnesses).
    pub fn execute_plan(&self, plan: &SplitPlan) -> Result<(ResultSet, QueryTimings), CoreError> {
        let executor = self.executor();
        executor.execute(plan)
    }

    /// Executes a query under a freshly minted trace id. On top of what
    /// [`MonomiClient::execute`] returns, this yields the trace id (carried
    /// in every server request frame this query issued and echoed back) and
    /// the span tree: client plan/decrypt/residual spans with the server's
    /// per-operator spans nested under each RemoteSQL step.
    ///
    /// Tracing never changes results — the parity tests pin traced and
    /// untraced execution byte-identical at every thread count.
    pub fn execute_traced(
        &self,
        sql: &str,
        params: &[Value],
    ) -> Result<(ResultSet, QueryTimings, TraceId, Vec<Span>), CoreError> {
        let query = parse_query(sql).map_err(|e| CoreError::new(e.to_string()))?;
        let trace = self.trace_ids.next_id();
        let bound = bind_params(&query, params);
        let (plan, _) = self.planner().best_plan(&bound, &self.encryptor);
        let (result, timings, mut spans) = self.executor().execute_traced(&plan, trace)?;
        // One Plan leaf up front keeps the tree honest about where client
        // time went; planning reruns here are cheap (statistics only).
        spans.insert(0, Span::leaf("Plan", 0.0, 0));
        Ok((result, timings, trace, spans))
    }

    /// EXPLAIN ANALYZE: executes `sql` traced and renders a report — the
    /// chosen split plan, the measured span tree (per-operator wall seconds
    /// and row counts, server operators included), and the cost model's
    /// predicted per-phase seconds next to the measured ones, so drift
    /// between the model and reality is visible at a glance.
    pub fn explain_analyze(&self, sql: &str, params: &[Value]) -> Result<String, CoreError> {
        let query = parse_query(sql).map_err(|e| CoreError::new(e.to_string()))?;
        let bound = bind_params(&query, params);
        let (plan, _) = self.planner().best_plan(&bound, &self.encryptor);
        let predicted = CostModel {
            plain: &self.plain_stats_db,
            profile: self.profile,
            network: self.network,
        }
        .plan_cost(&plan, &bound);

        let trace = self.trace_ids.next_id();
        let (result, timings, spans) = self.executor().execute_traced(&plan, trace)?;

        let mut out = String::new();
        out.push_str(&format!("EXPLAIN ANALYZE  trace={trace}\n"));
        out.push_str(&format!("plan: {}\n", plan.describe()));
        out.push_str("spans:\n");
        for span in &spans {
            out.push_str(&span.render());
        }
        out.push_str(&format!(
            "{} rows in {:.6}s\n",
            result.rows.len(),
            timings.total_seconds()
        ));
        out.push_str("phase        predicted_s    actual_s\n");
        for (phase, pred, actual) in [
            ("server", predicted.server_seconds, timings.server_seconds),
            (
                "network",
                predicted.network_seconds,
                timings.network_seconds,
            ),
            (
                "decrypt",
                predicted.decrypt_seconds,
                timings.decrypt_seconds,
            ),
            ("client", predicted.client_seconds, timings.client_seconds),
            ("total", predicted.total(), timings.total_seconds()),
        ] {
            out.push_str(&format!("{phase:<12} {pred:>11.6} {actual:>11.6}\n"));
        }
        Ok(out)
    }

    /// Generates a plan with explicit options (bypassing the cost-based choice).
    pub fn plan_with_options(
        &self,
        sql: &str,
        params: &[Value],
        options: &PlanOptions,
        force_greedy: bool,
    ) -> Result<SplitPlan, CoreError> {
        let query = parse_query(sql).map_err(|e| CoreError::new(e.to_string()))?;
        let bound = bind_params(&query, params);
        if force_greedy {
            // Greedy execution: always push as much as possible to the server,
            // regardless of cost (the Execution-Greedy baseline).
            Ok(crate::plan::generate_query_plan(
                &bound,
                &self.plain_stats_db,
                &self.encryptor,
                options,
            ))
        } else {
            let mut planner = self.planner();
            planner.options = *options;
            Ok(planner.best_plan(&bound, &self.encryptor).0)
        }
    }
}

/// Deep-copies a database (schema + rows). The engine intentionally has no
/// `Clone` on `Database` because real deployments would not copy servers; the
/// trusted client here only needs it for statistics, so the copy is always
/// in-memory — under `MONOMI_STORAGE=disk` only the *server* database (the
/// encrypted one built by the encryptor) lives in the segment store; the
/// client's statistics sample should not pay for a second store.
fn clone_database(db: &Database) -> Database {
    let mut out = Database::in_memory();
    for schema in db.catalog().tables() {
        out.create_table(schema.clone());
    }
    for name in db.table_names() {
        let table = db.table(&name).expect("listed table exists");
        out.bulk_load(&name, table.rows())
            .expect("row shapes match schema");
    }
    if let Some(m) = db.paillier_modulus() {
        out.register_paillier_modulus(m.clone());
    }
    out
}
