//! The client's view of the untrusted server: every server interaction —
//! loading ciphertext tables, registering the public Paillier modulus,
//! executing the server half of a split plan — goes through
//! [`ServerTransport`] instead of touching a [`Database`] directly.
//!
//! Two implementations:
//!
//! * [`InProcessTransport`] — owns the encrypted `Database` and calls the
//!   engine directly. Zero-copy, zero wire bytes; this is the historical
//!   behavior and what single-process experiments use.
//! * [`TcpTransport`] — speaks `monomi-proto`'s framed protocol to a
//!   `monomi-server` over a blocking TCP socket, and *measures* the wire:
//!   every call counts the frame bytes it sent and received, and wire time is
//!   the round-trip wall-clock minus the server-reported execution seconds.
//!
//! The two are interchangeable by construction: the wire format round-trips
//! `Value`s exactly (variant and bit pattern), so a split plan executed over
//! TCP must return byte-identical results to the in-process path — the
//! transport-parity tests hold both implementations to that.
//!
//! ## Fault tolerance
//!
//! [`TcpTransport`] assumes the wire fails — the paper's deployment is a
//! long-running cloud service, where resets, stalls, and restarts are normal
//! operation. Every request runs under a deadline ([`TransportOptions`]);
//! failures are *classified*: a refused connect, a reset, or a timeout before
//! any response byte is **retryable**, while a typed server error, a corrupt
//! frame, or a response cut off midway is **not** (the transport cannot know
//! what the peer applied, and corrupt framing state is unrecoverable). On a
//! retryable failure the transport reconnects with seeded-jitter exponential
//! backoff and re-establishes the session idempotently: it re-runs the
//! `Hello` handshake (carrying a stable client id) and replays the session
//! journal — every `CreateTable`/`RegisterModulus`/`BulkLoad` this client has
//! issued, each tagged with its original request id, so a request the server
//! already applied is acknowledged rather than re-executed (a `BulkLoad` is
//! never double-loaded). The chaos suite (`tests/chaos.rs`) drives every
//! failure mode through this machinery and holds it to: byte-identical
//! results or a typed error — never a hang, panic, or silently partial
//! result.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::{CoreError, TransportErrorKind};
use monomi_engine::{Database, ExecOptions, ExecStats, ResultSet, TableSchema, Value};
use monomi_math::BigUint;
use monomi_obs::{unflatten_spans, wire_share, Span, Stopwatch, TraceId};
use monomi_proto::{
    frame, read_response, ErrorCode, ProtoErrorKind, Request, Response, WIRE_VERSION,
};
use monomi_sql::Query;
use monomi_store::env_knob;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Rows per `BulkLoad` frame when shipping a database to a remote server.
/// Bounds peak frame size without drowning the load in round-trips.
const LOAD_CHUNK_ROWS: usize = 4096;

/// Default connect timeout (`MONOMI_CONNECT_TIMEOUT_MS`).
pub const DEFAULT_CONNECT_TIMEOUT_MS: u64 = 5_000;
/// Default per-request deadline (`MONOMI_DEADLINE_MS`): the budget for one
/// logical request including every retry and reconnect it needed.
pub const DEFAULT_DEADLINE_MS: u64 = 30_000;
/// Default retry budget per request (`MONOMI_RETRIES`).
pub const DEFAULT_RETRIES: u32 = 3;
/// Default backoff base (`MONOMI_BACKOFF_MS`): retry `n` sleeps roughly
/// `base * 2^(n-1)`, jittered to 50–100% of nominal.
pub const DEFAULT_BACKOFF_MS: u64 = 50;
/// Ceiling on one backoff sleep regardless of the exponent.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Client-side resilience knobs for [`TcpTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportOptions {
    /// How long one TCP connect attempt may take.
    pub connect_timeout: Duration,
    /// Deadline for one logical request, retries and reconnects included.
    /// The client never hangs: when this elapses, the call returns a typed
    /// [`TransportErrorKind::Timeout`].
    pub request_deadline: Duration,
    /// Retryable failures tolerated per request before giving up.
    pub max_retries: u32,
    /// Base of the exponential backoff between retries.
    pub backoff_base: Duration,
    /// Seed of the deterministic jitter stream (tests pin it; the default is
    /// fine for production — jitter only decorrelates retry storms).
    pub backoff_seed: u64,
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions {
            connect_timeout: Duration::from_millis(DEFAULT_CONNECT_TIMEOUT_MS),
            request_deadline: Duration::from_millis(DEFAULT_DEADLINE_MS),
            max_retries: DEFAULT_RETRIES,
            backoff_base: Duration::from_millis(DEFAULT_BACKOFF_MS),
            backoff_seed: 0x6d6f_6e6f_6d69, // "monomi"
        }
    }
}

impl TransportOptions {
    /// Reads options from the environment: `MONOMI_CONNECT_TIMEOUT_MS`,
    /// `MONOMI_DEADLINE_MS`, `MONOMI_RETRIES`, `MONOMI_BACKOFF_MS` (defaults
    /// as the constants above). Malformed values are rejected with a logged
    /// warning, never silently swallowed.
    pub fn from_env() -> Self {
        let defaults = TransportOptions::default();
        TransportOptions {
            connect_timeout: Duration::from_millis(env_knob(
                "MONOMI_CONNECT_TIMEOUT_MS",
                DEFAULT_CONNECT_TIMEOUT_MS,
                |&ms| ms >= 1,
            )),
            request_deadline: Duration::from_millis(env_knob(
                "MONOMI_DEADLINE_MS",
                DEFAULT_DEADLINE_MS,
                |&ms| ms >= 1,
            )),
            max_retries: env_knob("MONOMI_RETRIES", DEFAULT_RETRIES, |_| true),
            backoff_base: Duration::from_millis(env_knob(
                "MONOMI_BACKOFF_MS",
                DEFAULT_BACKOFF_MS,
                |&ms| ms >= 1,
            )),
            ..defaults
        }
    }
}

/// Measured wire traffic: what actually crossed the client/server boundary,
/// as opposed to the [`NetworkModel`](crate::network::NetworkModel)'s modeled
/// transfer times. All zeros for in-process execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireMetrics {
    /// Wall-clock spent on the wire: round-trip time minus the
    /// server-reported execution time, clamped at zero.
    pub seconds: f64,
    /// Frame bytes written to the socket (requests).
    pub bytes_sent: u64,
    /// Frame bytes read from the socket (responses).
    pub bytes_received: u64,
    /// Request attempts beyond the first (a retry re-sends the request after
    /// a retryable failure; the request ids keep replays idempotent).
    pub retries: u64,
    /// Connections re-established after the initial connect (each replays
    /// the session journal through the Hello handshake).
    pub reconnects: u64,
}

impl WireMetrics {
    fn add(&mut self, other: &WireMetrics) {
        self.seconds += other.seconds;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
    }
}

/// What one remote query execution produced: the (still encrypted) result
/// set, the server's deterministic work counters, the server-measured
/// execution wall seconds, and the measured wire traffic of this call.
#[derive(Clone, Debug)]
pub struct RemoteExecution {
    pub result: ResultSet,
    pub stats: ExecStats,
    /// Execution wall-clock as measured where the query ran (on the server
    /// for TCP, around the engine call for in-process).
    pub exec_seconds: f64,
    /// Wire traffic of this call (zeros in-process).
    pub wire: WireMetrics,
    /// The trace id this execution ran under, echoed back by the server
    /// ([`TraceId::ZERO`] for untraced calls).
    pub trace: TraceId,
    /// Per-operator server spans, present only when a non-zero trace id was
    /// sent. Timing metadata about ciphertext processing — never row values.
    pub spans: Vec<Span>,
}

/// Everything the trusted client is allowed to ask of the untrusted server.
///
/// Nothing in this interface carries plaintext or key material: schemas and
/// rows are the encryptor's output, queries are the planner's rewritten
/// server halves, and results come back as ciphertext for the client to
/// decrypt. Setup-time methods take `&mut self`; query-time methods take
/// `&self` so a transport can be shared behind the executor.
pub trait ServerTransport: Send {
    /// Short transport name for reports ("in-process" / "tcp").
    fn kind(&self) -> &'static str;

    /// Registers an encrypted table schema on the server, with the columns
    /// the design opts out of secondary-index builds.
    fn create_table(&mut self, schema: &TableSchema, unindexed: &[String])
        -> Result<(), CoreError>;

    /// Registers the public Paillier modulus `n²` the server needs for
    /// ciphertext addition.
    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError>;

    /// Appends ciphertext rows to a table created by this client.
    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError>;

    /// Executes the server half of a split query.
    ///
    /// The default forwards to [`ServerTransport::execute_traced`] with
    /// [`TraceId::ZERO`], i.e. no tracing.
    fn execute(&self, query: &Query, opts: &ExecOptions) -> Result<RemoteExecution, CoreError> {
        self.execute_traced(query, opts, TraceId::ZERO)
    }

    /// Executes the server half of a split query under a trace id. A zero id
    /// means untraced: the server collects no spans and pays no timing
    /// overhead. A non-zero id is carried in the request frame, echoed in the
    /// response, and returns per-operator server spans in
    /// [`RemoteExecution::spans`].
    fn execute_traced(
        &self,
        query: &Query,
        opts: &ExecOptions,
        trace: TraceId,
    ) -> Result<RemoteExecution, CoreError>;

    /// Total bytes the server stores.
    fn server_size_bytes(&self) -> Result<u64, CoreError>;

    /// The server's Prometheus-text metrics dump, when this transport can ask
    /// for one. `None` for transports without a metrics endpoint (in-process
    /// execution has no server process to instrument).
    fn metrics_text(&self) -> Result<Option<String>, CoreError> {
        Ok(None)
    }

    /// Cumulative wire traffic over the life of this transport.
    fn wire_totals(&self) -> WireMetrics;

    /// The server database, when it lives in this process (tests and space
    /// accounting reach through this; a remote server returns `None`).
    fn in_process_database(&self) -> Option<&Database> {
        None
    }
}

impl std::fmt::Debug for dyn ServerTransport + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerTransport({})", self.kind())
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// The historical execution path: the encrypted database lives in the client
/// process and the engine is called directly. No serialization, no wire.
pub struct InProcessTransport {
    db: Database,
}

impl std::fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InProcessTransport")
    }
}

impl InProcessTransport {
    /// Wraps an already encrypted database.
    pub fn new(db: Database) -> Self {
        InProcessTransport { db }
    }
}

impl ServerTransport for InProcessTransport {
    fn kind(&self) -> &'static str {
        "in-process"
    }

    fn create_table(
        &mut self,
        schema: &TableSchema,
        unindexed: &[String],
    ) -> Result<(), CoreError> {
        self.db
            .create_table_with(schema.clone(), unindexed.to_vec());
        Ok(())
    }

    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError> {
        self.db.register_paillier_modulus(n_squared.clone());
        Ok(())
    }

    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError> {
        self.db
            .bulk_load(table, rows)
            .map_err(|e| CoreError::new(e.to_string()))
    }

    fn execute_traced(
        &self,
        query: &Query,
        opts: &ExecOptions,
        trace: TraceId,
    ) -> Result<RemoteExecution, CoreError> {
        let watch = Stopwatch::start();
        let (result, stats, spans) = if trace.is_zero() {
            let (result, stats) = self
                .db
                .execute_with(query, &[], opts)
                .map_err(|e| CoreError::new(e.to_string()))?;
            (result, stats, Vec::new())
        } else {
            self.db
                .execute_with_traced(query, &[], opts)
                .map_err(|e| CoreError::new(e.to_string()))?
        };
        Ok(RemoteExecution {
            result,
            stats,
            exec_seconds: watch.seconds(),
            wire: WireMetrics::default(),
            trace,
            spans,
        })
    }

    fn server_size_bytes(&self) -> Result<u64, CoreError> {
        Ok(self.db.total_size_bytes() as u64)
    }

    fn wire_totals(&self) -> WireMetrics {
        WireMetrics::default()
    }

    fn in_process_database(&self) -> Option<&Database> {
        Some(&self.db)
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A client id stable for the life of one transport and unique across
/// processes with overwhelming probability: the server keys table ownership
/// and its idempotency journal by it, so a reconnect regains both.
fn fresh_client_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut h = RandomState::new().build_hasher();
    h.write_u64(std::process::id() as u64);
    h.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
    h.finish()
}

struct TcpInner {
    /// `None` between a failed attempt and the reconnect that replaces it.
    stream: Option<TcpStream>,
    totals: WireMetrics,
    /// Session-establishing requests in issue order, each carrying its
    /// original request id; replayed verbatim after every reconnect.
    journal: Vec<Request>,
    next_request_id: u64,
    /// Deterministic jitter stream for backoff sleeps.
    rng: StdRng,
}

/// One failed attempt, classified.
struct AttemptFail {
    kind: TransportErrorKind,
    retryable: bool,
    message: String,
    /// Frame bytes this attempt still moved before failing.
    bytes_sent: u64,
    bytes_received: u64,
}

impl AttemptFail {
    fn new(kind: TransportErrorKind, retryable: bool, message: impl Into<String>) -> Self {
        AttemptFail {
            kind,
            retryable,
            message: message.into(),
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    fn into_core(self) -> CoreError {
        CoreError::transport(self.kind, self.message)
    }
}

/// Classifies a socket-level error kind.
fn io_error_kind(e: &std::io::Error) -> TransportErrorKind {
    match e.kind() {
        std::io::ErrorKind::ConnectionRefused => TransportErrorKind::Refused,
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
            TransportErrorKind::Timeout
        }
        _ => TransportErrorKind::Disconnected,
    }
}

/// A reader that counts the response bytes seen so far and remembers the
/// kind of the last io error — both feed the retryable/non-retryable
/// classification (a timeout *before any response byte* is retryable; one
/// mid-response is not, because the transport cannot resynchronize framing).
struct CountingReader<'a> {
    inner: &'a TcpStream,
    seen: usize,
    last_io: Option<std::io::ErrorKind>,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.inner.read(buf) {
            Ok(n) => {
                self.seen += n;
                Ok(n)
            }
            Err(e) => {
                self.last_io = Some(e.kind());
                Err(e)
            }
        }
    }
}

/// A connection to a `monomi-server`, speaking `monomi-proto` frames over
/// blocking TCP with deadlines, classified failures, bounded retries, and
/// idempotent session re-establishment (see the module docs). One
/// request/response in flight at a time (the split executor is sequential
/// per query); the mutex makes `&self` execution safe.
pub struct TcpTransport {
    addr: String,
    client_id: u64,
    opts: TransportOptions,
    inner: Mutex<TcpInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .field("client_id", &self.client_id)
            .finish()
    }
}

impl TcpTransport {
    /// Connects with environment-derived [`TransportOptions`] and performs
    /// the version handshake.
    pub fn connect(addr: &str) -> Result<TcpTransport, CoreError> {
        Self::connect_with(addr, TransportOptions::from_env())
    }

    /// Connects with explicit options. The initial connect is a single
    /// attempt — a refused or mismatched server surfaces immediately as a
    /// typed error ([`TransportErrorKind::Refused`] / [`Timeout`] /
    /// [`HandshakeVersionMismatch`] / [`Server`]); the retry machinery only
    /// arms once a session existed.
    ///
    /// [`Timeout`]: TransportErrorKind::Timeout
    /// [`HandshakeVersionMismatch`]: TransportErrorKind::HandshakeVersionMismatch
    /// [`Server`]: TransportErrorKind::Server
    pub fn connect_with(addr: &str, opts: TransportOptions) -> Result<TcpTransport, CoreError> {
        let transport = TcpTransport {
            addr: addr.to_string(),
            client_id: fresh_client_id(),
            opts,
            inner: Mutex::new(TcpInner {
                stream: None,
                totals: WireMetrics::default(),
                journal: Vec::new(),
                next_request_id: 1,
                rng: StdRng::seed_from_u64(opts.backoff_seed),
            }),
        };
        {
            let mut inner = transport.inner.lock().unwrap_or_else(|e| e.into_inner());
            let deadline = Instant::now() + opts.request_deadline;
            let mut wire = WireMetrics::default();
            transport
                .establish(&mut inner, deadline, &mut wire)
                .map_err(|f| {
                    inner.totals.add(&wire);
                    f.into_core()
                })?;
            inner.totals.add(&wire);
        }
        Ok(transport)
    }

    /// The address this transport is connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The stable client id this transport presents in `Hello`.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    fn call(&self, req: &Request) -> Result<(Response, WireMetrics), CoreError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.call_locked(&mut inner, req)
    }

    /// One logical request: attempt, classify, retry within the deadline and
    /// retry budget, reconnecting (with journal replay) as needed.
    fn call_locked(
        &self,
        inner: &mut TcpInner,
        req: &Request,
    ) -> Result<(Response, WireMetrics), CoreError> {
        let started = Instant::now();
        let deadline = started + self.opts.request_deadline;
        let mut wire = WireMetrics::default();
        let mut attempts: u32 = 0;
        loop {
            // Split the remaining deadline across the attempts still in the
            // budget: a stalled response then costs one slice, not the whole
            // deadline, leaving room to reconnect and retry.
            let slices = (self.opts.max_retries + 1).saturating_sub(attempts).max(1);
            let fail = match self.attempt_once(inner, req, deadline, slices, &mut wire) {
                Ok(resp) => {
                    wire.seconds = started.elapsed().as_secs_f64();
                    inner.totals.add(&wire);
                    return Ok((resp, wire));
                }
                Err(f) => f,
            };
            wire.bytes_sent += fail.bytes_sent;
            wire.bytes_received += fail.bytes_received;
            // The connection is in an unknown state past any failure.
            inner.stream = None;
            let out_of_budget = attempts >= self.opts.max_retries || Instant::now() >= deadline;
            if !fail.retryable || out_of_budget {
                wire.seconds = started.elapsed().as_secs_f64();
                inner.totals.add(&wire);
                return Err(fail.into_core());
            }
            attempts += 1;
            wire.retries += 1;
            backoff_sleep(&mut inner.rng, self.opts.backoff_base, attempts, deadline);
        }
    }

    /// One attempt of `req`: ensure a connection (reconnect + replay if
    /// needed), send, receive, classify.
    fn attempt_once(
        &self,
        inner: &mut TcpInner,
        req: &Request,
        deadline: Instant,
        slices: u32,
        wire: &mut WireMetrics,
    ) -> Result<Response, AttemptFail> {
        if inner.stream.is_none() {
            self.establish(inner, deadline, wire)?;
            wire.reconnects += 1;
        }
        let Some(stream) = inner.stream.as_ref() else {
            return Err(AttemptFail::new(
                TransportErrorKind::Disconnected,
                true,
                "no connection after establish",
            ));
        };
        let (resp, sent, received) = round_trip_raw(stream, req, deadline, slices)?;
        wire.bytes_sent += sent;
        wire.bytes_received += received;
        Ok(resp)
    }

    /// Dials, handshakes, and replays the session journal. On success the
    /// connection is installed in `inner.stream`; wire traffic of the
    /// handshake and replay is charged to `wire`.
    fn establish(
        &self,
        inner: &mut TcpInner,
        deadline: Instant,
        wire: &mut WireMetrics,
    ) -> Result<(), AttemptFail> {
        let stream = self.dial(deadline)?;
        let _ = stream.set_nodelay(true);

        let hello = Request::Hello {
            version: WIRE_VERSION,
            client_id: self.client_id,
        };
        let (resp, sent, received) = round_trip_raw(&stream, &hello, deadline, 1)?;
        wire.bytes_sent += sent;
        wire.bytes_received += received;
        match resp {
            Response::Hello { version } if version == WIRE_VERSION => {}
            Response::Hello { version } => {
                return Err(AttemptFail::new(
                    TransportErrorKind::HandshakeVersionMismatch,
                    false,
                    format!("server speaks wire version {version}, client speaks {WIRE_VERSION}"),
                ))
            }
            Response::Error { code, message } => {
                let kind = match code {
                    ErrorCode::VersionMismatch => TransportErrorKind::HandshakeVersionMismatch,
                    other => TransportErrorKind::Server(other),
                };
                return Err(AttemptFail::new(
                    kind,
                    false,
                    format!("server refused handshake ({code:?}): {message}"),
                ));
            }
            other => {
                return Err(AttemptFail::new(
                    TransportErrorKind::Corrupt,
                    false,
                    format!("unexpected handshake response: {other:?}"),
                ))
            }
        }

        // Idempotent session re-establishment: replay the journal in issue
        // order. The server acknowledges already-applied request ids without
        // re-executing them, so a replay after a mid-load reconnect restores
        // table ownership without double-loading a single row.
        for entry in &inner.journal {
            let (resp, sent, received) = round_trip_raw(&stream, entry, deadline, 1)?;
            wire.bytes_sent += sent;
            wire.bytes_received += received;
            match resp {
                Response::Ok => {}
                Response::Error { code, message } => {
                    return Err(AttemptFail::new(
                        TransportErrorKind::Server(code),
                        false,
                        format!("session replay rejected ({code:?}): {message}"),
                    ))
                }
                other => {
                    return Err(AttemptFail::new(
                        TransportErrorKind::Corrupt,
                        false,
                        format!("unexpected replay response: {other:?}"),
                    ))
                }
            }
        }
        inner.stream = Some(stream);
        Ok(())
    }

    /// One TCP connect attempt, bounded by the connect timeout and the
    /// request deadline (whichever is tighter).
    fn dial(&self, deadline: Instant) -> Result<TcpStream, AttemptFail> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(AttemptFail::new(
                TransportErrorKind::Timeout,
                false,
                format!("deadline elapsed before connecting to {}", self.addr),
            ));
        }
        let budget = remaining.min(self.opts.connect_timeout);
        let mut last: Option<std::io::Error> = None;
        let addrs = self.addr.to_socket_addrs().map_err(|e| {
            AttemptFail::new(
                TransportErrorKind::Disconnected,
                true,
                format!("cannot resolve {}: {e}", self.addr),
            )
        })?;
        for sock in addrs {
            match TcpStream::connect_timeout(&sock, budget) {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(match last {
            Some(e) => AttemptFail::new(
                io_error_kind(&e),
                true,
                format!("cannot connect to monomi-server {}: {e}", self.addr),
            ),
            None => AttemptFail::new(
                TransportErrorKind::Disconnected,
                true,
                format!("{} resolves to no address", self.addr),
            ),
        })
    }

    /// Issues a session-mutating request: assigns it the next request id,
    /// runs it through the retry machinery, and on success appends it to the
    /// replay journal.
    fn mutate(&mut self, make: impl FnOnce(u64) -> Request) -> Result<(), CoreError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let id = inner.next_request_id;
        inner.next_request_id += 1;
        let req = make(id);
        let (resp, _) = self.call_locked(&mut inner, &req)?;
        expect_ok(resp)?;
        inner.journal.push(req);
        Ok(())
    }
}

/// Sends one request and reads one response on a bare stream, with socket
/// timeouts set from the remaining deadline. Failures come back classified.
fn round_trip_raw(
    stream: &TcpStream,
    req: &Request,
    deadline: Instant,
    slices: u32,
) -> Result<(Response, u64, u64), AttemptFail> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(AttemptFail::new(
            TransportErrorKind::Timeout,
            false,
            "request deadline elapsed",
        ));
    }
    // This attempt's slice of the remaining budget (see call_locked).
    let budget = (remaining / slices.max(1)).max(Duration::from_millis(1));
    let _ = stream.set_read_timeout(Some(budget));
    let _ = stream.set_write_timeout(Some(budget));

    let framed = frame(&req.encode());
    if let Err(e) = (&mut &*stream).write_all(&framed) {
        // Nothing of the response was seen; the server may or may not have
        // received the request — exactly what request-id idempotency covers.
        return Err(AttemptFail::new(
            io_error_kind(&e),
            true,
            format!("send failed: {e}"),
        ));
    }
    let sent = framed.len() as u64;

    let mut reader = CountingReader {
        inner: stream,
        seen: 0,
        last_io: None,
    };
    match read_response(&mut reader) {
        Ok((resp, received)) => Ok((resp, sent, received as u64)),
        Err(e) => {
            let received = reader.seen as u64;
            let mut fail = match e.kind {
                ProtoErrorKind::Io => {
                    let kind = match reader.last_io {
                        Some(std::io::ErrorKind::TimedOut)
                        | Some(std::io::ErrorKind::WouldBlock) => TransportErrorKind::Timeout,
                        _ => TransportErrorKind::Disconnected,
                    };
                    match (kind, received) {
                        // Timeout before any response byte: the request may
                        // still be running, but re-asking is safe.
                        (TransportErrorKind::Timeout, 0) => {
                            AttemptFail::new(kind, true, format!("no response: {e}"))
                        }
                        // Timeout mid-response: framing state is lost and the
                        // budget is evidently tight — surface it.
                        (TransportErrorKind::Timeout, _) => AttemptFail::new(
                            kind,
                            false,
                            format!("response stalled after {received} bytes: {e}"),
                        ),
                        // Reset/EOF, before or during the response: the
                        // connection is gone; reconnect and replay.
                        _ => AttemptFail::new(
                            kind,
                            true,
                            format!("connection lost after {received} response bytes: {e}"),
                        ),
                    }
                }
                ProtoErrorKind::VersionMismatch => AttemptFail::new(
                    TransportErrorKind::HandshakeVersionMismatch,
                    false,
                    e.to_string(),
                ),
                // Bad magic, checksum mismatch, truncation, oversize,
                // malformed payload: mid-response corruption, never retried.
                _ => AttemptFail::new(TransportErrorKind::Corrupt, false, e.to_string()),
            };
            fail.bytes_sent = sent;
            fail.bytes_received = received;
            Err(fail)
        }
    }
}

/// Sleeps the `attempt`-th backoff: exponential in the attempt number,
/// jittered deterministically to 50–100% of nominal, capped, and never past
/// the deadline.
fn backoff_sleep(rng: &mut StdRng, base: Duration, attempt: u32, deadline: Instant) {
    let exp = attempt.saturating_sub(1).min(16);
    let nominal = base
        .saturating_mul(1u32 << exp)
        .min(BACKOFF_CAP)
        .max(Duration::from_millis(1));
    let nanos = nominal.as_nanos() as u64;
    let jittered = Duration::from_nanos(nanos / 2 + rng.next_u64() % (nanos / 2 + 1));
    let remaining = deadline.saturating_duration_since(Instant::now());
    let sleep = jittered.min(remaining);
    if !sleep.is_zero() {
        std::thread::sleep(sleep);
    }
}

fn unexpected(resp: &Response) -> CoreError {
    match resp {
        Response::Error { code, message } => CoreError::transport(
            TransportErrorKind::Server(*code),
            format!("server error ({code:?}): {message}"),
        ),
        other => CoreError::new(format!("unexpected server response: {other:?}")),
    }
}

/// Maps a response that should be a bare `Ok` to `Result<(), CoreError>`.
fn expect_ok(resp: Response) -> Result<(), CoreError> {
    match resp {
        Response::Ok => Ok(()),
        other => Err(unexpected(&other)),
    }
}

impl ServerTransport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn create_table(
        &mut self,
        schema: &TableSchema,
        unindexed: &[String],
    ) -> Result<(), CoreError> {
        let name = schema.name.clone();
        let columns: Vec<_> = schema
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        let unindexed = unindexed.to_vec();
        self.mutate(move |request_id| Request::CreateTable {
            request_id,
            name,
            columns,
            unindexed,
        })
    }

    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError> {
        let n_squared_be = n_squared.to_bytes_be();
        self.mutate(move |request_id| Request::RegisterModulus {
            request_id,
            n_squared_be,
        })
    }

    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError> {
        // Chunked so a large ciphertext load never materializes as one giant
        // frame (MAX_PAYLOAD) on either side. Each chunk carries its own
        // request id, so a retry replays exactly the chunks whose
        // acknowledgement was lost — and the server applies none of them
        // twice.
        if rows.is_empty() {
            return Ok(());
        }
        let mut rows = rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(LOAD_CHUNK_ROWS));
            let table = table.to_string();
            self.mutate(move |request_id| Request::BulkLoad {
                request_id,
                table,
                rows,
            })?;
            rows = rest;
        }
        Ok(())
    }

    fn execute_traced(
        &self,
        query: &Query,
        opts: &ExecOptions,
        trace: TraceId,
    ) -> Result<RemoteExecution, CoreError> {
        // The SQL dialect round-trips through Display/parse (the sql crate's
        // tests hold that invariant), so the server re-parses exactly this
        // query. Execute is read-only, hence retry-safe without an id — and
        // the trace id rides the request frame, so a retried request reports
        // under the same trace.
        let (resp, wire) = self.call(&Request::Execute {
            sql: query.to_string(),
            threads: opts.threads.min(u32::MAX as usize) as u32,
            morsel_rows: opts.morsel_rows.min(u32::MAX as usize) as u32,
            trace,
        })?;
        match resp {
            Response::Result {
                result,
                stats,
                exec_seconds,
                trace,
                spans,
            } => Ok(RemoteExecution {
                result,
                stats,
                exec_seconds,
                wire: WireMetrics {
                    // Time on the wire is what the round trip cost beyond
                    // the server's own execution.
                    seconds: wire_share(wire.seconds, exec_seconds),
                    ..wire
                },
                trace,
                spans: unflatten_spans(&spans),
            }),
            other => Err(unexpected(&other)),
        }
    }

    fn metrics_text(&self) -> Result<Option<String>, CoreError> {
        let (resp, _) = self.call(&Request::Metrics)?;
        match resp {
            Response::Metrics { text } => Ok(Some(text)),
            other => Err(unexpected(&other)),
        }
    }

    fn server_size_bytes(&self) -> Result<u64, CoreError> {
        let (resp, _) = self.call(&Request::ServerSize)?;
        match resp {
            Response::Size { bytes } => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }

    fn wire_totals(&self) -> WireMetrics {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).totals
    }
}

/// Ships an encrypted database to a server through a transport: every table
/// schema, the Paillier modulus, then the rows. Used at client setup when a
/// remote server address is configured; the in-process transport never needs
/// it (it is handed the database whole).
pub fn load_database(transport: &mut dyn ServerTransport, db: &Database) -> Result<(), CoreError> {
    load_database_with(transport, db, &std::collections::BTreeMap::new())
}

/// [`load_database`] with per-table index opt-out lists (keyed by table
/// name), as produced by `PhysicalDesign::unindexed_by_table`.
pub fn load_database_with(
    transport: &mut dyn ServerTransport,
    db: &Database,
    unindexed: &std::collections::BTreeMap<String, Vec<String>>,
) -> Result<(), CoreError> {
    for schema in db.catalog().tables() {
        let opt_outs = unindexed
            .get(&schema.name.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        transport.create_table(schema, opt_outs)?;
    }
    if let Some(n_squared) = db.paillier_modulus() {
        transport.register_paillier_modulus(n_squared)?;
    }
    for name in db.table_names() {
        let table = db
            .table(&name)
            .ok_or_else(|| CoreError::new(format!("listed table {name} missing")))?;
        transport.bulk_load(&name, table.rows())?;
    }
    Ok(())
}

/// Typed server error codes, re-exported so callers matching on transport
/// failures need not depend on `monomi-proto` directly.
pub use monomi_proto::ErrorCode as ServerErrorCode;
