//! The client's view of the untrusted server: every server interaction —
//! loading ciphertext tables, registering the public Paillier modulus,
//! executing the server half of a split plan — goes through
//! [`ServerTransport`] instead of touching a [`Database`] directly.
//!
//! Two implementations:
//!
//! * [`InProcessTransport`] — owns the encrypted `Database` and calls the
//!   engine directly. Zero-copy, zero wire bytes; this is the historical
//!   behavior and what single-process experiments use.
//! * [`TcpTransport`] — speaks `monomi-proto`'s framed protocol to a
//!   `monomi-server` over a blocking TCP socket, and *measures* the wire:
//!   every call counts the frame bytes it sent and received, and wire time is
//!   the round-trip wall-clock minus the server-reported execution seconds.
//!
//! The two are interchangeable by construction: the wire format round-trips
//! `Value`s exactly (variant and bit pattern), so a split plan executed over
//! TCP must return byte-identical results to the in-process path — the
//! transport-parity tests hold both implementations to that.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Instant;

use crate::CoreError;
use monomi_engine::{Database, ExecOptions, ExecStats, ResultSet, TableSchema, Value};
use monomi_math::BigUint;
use monomi_proto::{read_response, write_request, ProtoError, Request, Response, WIRE_VERSION};
use monomi_sql::Query;

/// Rows per `BulkLoad` frame when shipping a database to a remote server.
/// Bounds peak frame size without drowning the load in round-trips.
const LOAD_CHUNK_ROWS: usize = 4096;

/// Measured wire traffic: what actually crossed the client/server boundary,
/// as opposed to the [`NetworkModel`](crate::network::NetworkModel)'s modeled
/// transfer times. All zeros for in-process execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WireMetrics {
    /// Wall-clock spent on the wire: round-trip time minus the
    /// server-reported execution time, clamped at zero.
    pub seconds: f64,
    /// Frame bytes written to the socket (requests).
    pub bytes_sent: u64,
    /// Frame bytes read from the socket (responses).
    pub bytes_received: u64,
}

impl WireMetrics {
    fn add(&mut self, other: &WireMetrics) {
        self.seconds += other.seconds;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

/// What one remote query execution produced: the (still encrypted) result
/// set, the server's deterministic work counters, the server-measured
/// execution wall seconds, and the measured wire traffic of this call.
#[derive(Clone, Debug)]
pub struct RemoteExecution {
    pub result: ResultSet,
    pub stats: ExecStats,
    /// Execution wall-clock as measured where the query ran (on the server
    /// for TCP, around the engine call for in-process).
    pub exec_seconds: f64,
    /// Wire traffic of this call (zeros in-process).
    pub wire: WireMetrics,
}

/// Everything the trusted client is allowed to ask of the untrusted server.
///
/// Nothing in this interface carries plaintext or key material: schemas and
/// rows are the encryptor's output, queries are the planner's rewritten
/// server halves, and results come back as ciphertext for the client to
/// decrypt. Setup-time methods take `&mut self`; query-time methods take
/// `&self` so a transport can be shared behind the executor.
pub trait ServerTransport: Send {
    /// Short transport name for reports ("in-process" / "tcp").
    fn kind(&self) -> &'static str;

    /// Registers an encrypted table schema on the server.
    fn create_table(&mut self, schema: &TableSchema) -> Result<(), CoreError>;

    /// Registers the public Paillier modulus `n²` the server needs for
    /// ciphertext addition.
    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError>;

    /// Appends ciphertext rows to a table created by this client.
    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError>;

    /// Executes the server half of a split query.
    fn execute(&self, query: &Query, opts: &ExecOptions) -> Result<RemoteExecution, CoreError>;

    /// Total bytes the server stores.
    fn server_size_bytes(&self) -> Result<u64, CoreError>;

    /// Cumulative wire traffic over the life of this transport.
    fn wire_totals(&self) -> WireMetrics;

    /// The server database, when it lives in this process (tests and space
    /// accounting reach through this; a remote server returns `None`).
    fn in_process_database(&self) -> Option<&Database> {
        None
    }
}

impl std::fmt::Debug for dyn ServerTransport + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerTransport({})", self.kind())
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// The historical execution path: the encrypted database lives in the client
/// process and the engine is called directly. No serialization, no wire.
pub struct InProcessTransport {
    db: Database,
}

impl std::fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("InProcessTransport")
    }
}

impl InProcessTransport {
    /// Wraps an already encrypted database.
    pub fn new(db: Database) -> Self {
        InProcessTransport { db }
    }
}

impl ServerTransport for InProcessTransport {
    fn kind(&self) -> &'static str {
        "in-process"
    }

    fn create_table(&mut self, schema: &TableSchema) -> Result<(), CoreError> {
        self.db.create_table(schema.clone());
        Ok(())
    }

    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError> {
        self.db.register_paillier_modulus(n_squared.clone());
        Ok(())
    }

    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError> {
        self.db
            .bulk_load(table, rows)
            .map_err(|e| CoreError::new(e.to_string()))
    }

    fn execute(&self, query: &Query, opts: &ExecOptions) -> Result<RemoteExecution, CoreError> {
        let started = Instant::now();
        let (result, stats) = self
            .db
            .execute_with(query, &[], opts)
            .map_err(|e| CoreError::new(e.to_string()))?;
        Ok(RemoteExecution {
            result,
            stats,
            exec_seconds: started.elapsed().as_secs_f64(),
            wire: WireMetrics::default(),
        })
    }

    fn server_size_bytes(&self) -> Result<u64, CoreError> {
        Ok(self.db.total_size_bytes() as u64)
    }

    fn wire_totals(&self) -> WireMetrics {
        WireMetrics::default()
    }

    fn in_process_database(&self) -> Option<&Database> {
        Some(&self.db)
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

struct TcpInner {
    stream: TcpStream,
    totals: WireMetrics,
}

/// A connection to a `monomi-server`, speaking `monomi-proto` frames over
/// blocking TCP. One request/response in flight at a time (the split executor
/// is sequential per query); the mutex makes `&self` execution safe.
pub struct TcpTransport {
    addr: String,
    inner: Mutex<TcpInner>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .finish()
    }
}

fn proto_err(e: ProtoError) -> CoreError {
    CoreError::new(e.to_string())
}

impl TcpTransport {
    /// Connects and performs the version handshake.
    pub fn connect(addr: &str) -> Result<TcpTransport, CoreError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| CoreError::new(format!("cannot connect to monomi-server {addr}: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut inner = TcpInner {
            stream,
            totals: WireMetrics::default(),
        };
        let (resp, _) = round_trip(
            &mut inner,
            &Request::Hello {
                version: WIRE_VERSION,
            },
        )?;
        match resp {
            Response::Hello { version } if version == WIRE_VERSION => Ok(TcpTransport {
                addr: addr.to_string(),
                inner: Mutex::new(inner),
            }),
            Response::Hello { version } => Err(CoreError::new(format!(
                "server speaks wire version {version}, client speaks {WIRE_VERSION}"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// The address this transport is connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, req: &Request) -> Result<(Response, WireMetrics), CoreError> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        round_trip(&mut inner, req)
    }
}

/// Sends one request and reads one response, charging the frame bytes and
/// the round-trip wall-clock to the connection's running totals.
fn round_trip(inner: &mut TcpInner, req: &Request) -> Result<(Response, WireMetrics), CoreError> {
    let started = Instant::now();
    let sent = write_request(&mut inner.stream, req).map_err(proto_err)?;
    let (resp, received) = read_response(&mut inner.stream).map_err(proto_err)?;
    let wire = WireMetrics {
        seconds: started.elapsed().as_secs_f64(),
        bytes_sent: sent as u64,
        bytes_received: received as u64,
    };
    inner.totals.add(&wire);
    Ok((resp, wire))
}

fn unexpected(resp: &Response) -> CoreError {
    match resp {
        Response::Error { code, message } => {
            CoreError::new(format!("server error ({code:?}): {message}"))
        }
        other => CoreError::new(format!("unexpected server response: {other:?}")),
    }
}

/// Maps a response that should be a bare `Ok` to `Result<(), CoreError>`.
fn expect_ok(resp: Response) -> Result<(), CoreError> {
    match resp {
        Response::Ok => Ok(()),
        other => Err(unexpected(&other)),
    }
}

impl ServerTransport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn create_table(&mut self, schema: &TableSchema) -> Result<(), CoreError> {
        let (resp, _) = self.call(&Request::CreateTable {
            name: schema.name.clone(),
            columns: schema
                .columns
                .iter()
                .map(|c| (c.name.clone(), c.ty))
                .collect(),
        })?;
        expect_ok(resp)
    }

    fn register_paillier_modulus(&mut self, n_squared: &BigUint) -> Result<(), CoreError> {
        let (resp, _) = self.call(&Request::RegisterModulus {
            n_squared_be: n_squared.to_bytes_be(),
        })?;
        expect_ok(resp)
    }

    fn bulk_load(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<(), CoreError> {
        // Chunked so a large ciphertext load never materializes as one giant
        // frame (MAX_PAYLOAD) on either side.
        if rows.is_empty() {
            return Ok(());
        }
        let mut rows = rows;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(LOAD_CHUNK_ROWS));
            let (resp, _) = self.call(&Request::BulkLoad {
                table: table.to_string(),
                rows,
            })?;
            expect_ok(resp)?;
            rows = rest;
        }
        Ok(())
    }

    fn execute(&self, query: &Query, opts: &ExecOptions) -> Result<RemoteExecution, CoreError> {
        // The SQL dialect round-trips through Display/parse (the sql crate's
        // tests hold that invariant), so the server re-parses exactly this
        // query.
        let (resp, wire) = self.call(&Request::Execute {
            sql: query.to_string(),
            threads: opts.threads.min(u32::MAX as usize) as u32,
            morsel_rows: opts.morsel_rows.min(u32::MAX as usize) as u32,
        })?;
        match resp {
            Response::Result {
                result,
                stats,
                exec_seconds,
            } => Ok(RemoteExecution {
                result,
                stats,
                exec_seconds,
                wire: WireMetrics {
                    // Time on the wire is what the round trip cost beyond
                    // the server's own execution.
                    seconds: (wire.seconds - exec_seconds).max(0.0),
                    ..wire
                },
            }),
            other => Err(unexpected(&other)),
        }
    }

    fn server_size_bytes(&self) -> Result<u64, CoreError> {
        let (resp, _) = self.call(&Request::ServerSize)?;
        match resp {
            Response::Size { bytes } => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }

    fn wire_totals(&self) -> WireMetrics {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).totals
    }
}

/// Ships an encrypted database to a server through a transport: every table
/// schema, the Paillier modulus, then the rows. Used at client setup when a
/// remote server address is configured; the in-process transport never needs
/// it (it is handed the database whole).
pub fn load_database(transport: &mut dyn ServerTransport, db: &Database) -> Result<(), CoreError> {
    for schema in db.catalog().tables() {
        transport.create_table(schema)?;
    }
    if let Some(n_squared) = db.paillier_modulus() {
        transport.register_paillier_modulus(n_squared)?;
    }
    for name in db.table_names() {
        let table = db
            .table(&name)
            .ok_or_else(|| CoreError::new(format!("listed table {name} missing")))?;
        transport.bulk_load(&name, table.rows())?;
    }
    Ok(())
}

/// Typed server error codes, re-exported so callers matching on transport
/// failures need not depend on `monomi-proto` directly.
pub use monomi_proto::ErrorCode as ServerErrorCode;
