//! Simulated client/server link and server storage.
//!
//! The paper's evaluation throttles the client/server link to 10 Mbit/s with
//! `tc` and flushes the server's caches so queries hit disk. Transfer time is
//! modelled from byte counts (`bytes / bandwidth`); server disk time is
//! `bytes_scanned / disk_bandwidth` plus a fixed per-request charge per
//! segment read. With the persistent segment store
//! (`MONOMI_STORAGE=disk`) the byte and segment counts fed into this model
//! are *real* — stored bytes of the segments a scan actually decoded, with
//! zone-map-pruned segments contributing nothing — rather than the logical
//! width of an in-memory table.

/// Byte-accounting model of the environment between client and server.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Client/server link bandwidth in bits per second (paper: 10 Mbit/s).
    pub bandwidth_bits_per_sec: f64,
    /// Server storage scan bandwidth in bytes per second.
    pub disk_bytes_per_sec: f64,
    /// Fixed cost per segment read request (seek + issue overhead). Charged
    /// once per segment a scan decodes; pruned segments cost nothing.
    pub disk_request_seconds: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            bandwidth_bits_per_sec: 10_000_000.0,
            disk_bytes_per_sec: 200_000_000.0,
            disk_request_seconds: 1e-4,
        }
    }
}

impl NetworkModel {
    /// A model with the paper's 10 Mbit/s link.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Seconds to transfer `bytes` over the link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bits_per_sec
    }

    /// Seconds for the server to stream `bytes` from storage.
    pub fn disk_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.disk_bytes_per_sec
    }

    /// Fixed request overhead for reading `segments` separate segments.
    pub fn disk_request_overhead(&self, segments: u64) -> f64 {
        segments as f64 * self.disk_request_seconds
    }

    /// Total storage time for one scan: streamed bytes plus per-segment
    /// request overhead.
    pub fn storage_seconds(&self, bytes: u64, segments: u64) -> f64 {
        self.disk_seconds(bytes) + self.disk_request_overhead(segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_bandwidth() {
        let net = NetworkModel::paper_default();
        // 10 Mbit/s => 1.25 MB/s => 1 MB takes 0.8 s.
        let t = net.transfer_seconds(1_000_000);
        assert!((t - 0.8).abs() < 1e-9);
    }

    #[test]
    fn disk_time_scales_linearly() {
        let net = NetworkModel::default();
        assert!(net.disk_seconds(200_000_000) > net.disk_seconds(100_000_000));
        assert!((net.disk_seconds(200_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn storage_time_charges_per_segment_request() {
        let net = NetworkModel::default();
        // 100 segments at the default 0.1 ms each = 10 ms of request overhead.
        assert!((net.disk_request_overhead(100) - 0.01).abs() < 1e-12);
        let streamed = net.disk_seconds(1_000_000);
        assert!((net.storage_seconds(1_000_000, 100) - (streamed + 0.01)).abs() < 1e-12);
        // Pruned segments (never read) add nothing.
        assert!((net.storage_seconds(0, 0) - 0.0).abs() < f64::EPSILON);
    }
}
