//! Simulated client/server link and server storage.
//!
//! The paper's evaluation throttles the client/server link to 10 Mbit/s with
//! `tc` and flushes the server's caches so queries hit disk. The engine here
//! is in-memory, so both effects are modelled explicitly from byte counts:
//! transfer time is `bytes / bandwidth` and server disk time is
//! `bytes_scanned / disk_bandwidth`.

/// Byte-accounting model of the environment between client and server.
#[derive(Clone, Copy, Debug)]
pub struct NetworkModel {
    /// Client/server link bandwidth in bits per second (paper: 10 Mbit/s).
    pub bandwidth_bits_per_sec: f64,
    /// Server storage scan bandwidth in bytes per second.
    pub disk_bytes_per_sec: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            bandwidth_bits_per_sec: 10_000_000.0,
            disk_bytes_per_sec: 200_000_000.0,
        }
    }
}

impl NetworkModel {
    /// A model with the paper's 10 Mbit/s link.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Seconds to transfer `bytes` over the link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bits_per_sec
    }

    /// Seconds for the server to read `bytes` from storage.
    pub fn disk_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.disk_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_matches_bandwidth() {
        let net = NetworkModel::paper_default();
        // 10 Mbit/s => 1.25 MB/s => 1 MB takes 0.8 s.
        let t = net.transfer_seconds(1_000_000);
        assert!((t - 0.8).abs() < 1e-9);
    }

    #[test]
    fn disk_time_scales_linearly() {
        let net = NetworkModel::default();
        assert!(net.disk_seconds(200_000_000) > net.disk_seconds(100_000_000));
        assert!((net.disk_seconds(200_000_000) - 1.0).abs() < 1e-9);
    }
}
