//! The MONOMI planner (§6.2–§6.4): per-query EncSet extraction, power-set
//! enumeration with the unit pruning heuristic, and best-plan selection by
//! cost.

use crate::cost::{CostBreakdown, CostModel, DecryptProfile};
use crate::design::{Encryptor, PhysicalDesign};
use crate::network::NetworkModel;
use crate::plan::{generate_query_plan, PlanOptions, SplitPlan};
use crate::rewrite::{normalize_expr, QueryScope};
use crate::schemes::EncScheme;
use monomi_crypto::{MasterKey, PaillierKey};
use monomi_engine::{ColumnType, Database};
use monomi_sql::ast::*;

/// One ⟨expression, scheme⟩ pair the designer could materialize (an element of
/// the paper's set E).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EncPair {
    pub table: String,
    /// Normalized (unqualified) source expression.
    pub source: Expr,
    pub ty_tag: u8,
    pub scheme: EncScheme,
}

impl PartialOrd for EncPair {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EncPair {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (&self.table, self.scheme, self.source.to_string()).cmp(&(
            &other.table,
            other.scheme,
            other.source.to_string(),
        ))
    }
}

impl EncPair {
    /// Logical column type of the source.
    pub fn ty(&self) -> ColumnType {
        match self.ty_tag {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Str,
            3 => ColumnType::Date,
            _ => ColumnType::Bytes,
        }
    }

    fn tag(ty: ColumnType) -> u8 {
        match ty {
            ColumnType::Int => 0,
            ColumnType::Float => 1,
            ColumnType::Str => 2,
            ColumnType::Date => 3,
            ColumnType::Bytes => 4,
        }
    }
}

/// A query unit (§6.3): a WHERE conjunct, the GROUP BY clause, the HAVING
/// clause, or one aggregate — the pruning heuristic enables or disables all of
/// a unit's pairs together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EncUnit {
    pub description: String,
    pub pairs: Vec<EncPair>,
}

/// Extracts the EncSet of a query, organized into units.
pub fn extract_enc_units(query: &Query, plain: &Database) -> Vec<EncUnit> {
    let scope = match QueryScope::for_query(query, plain) {
        Some(s) => s,
        None => {
            // Derived tables: recurse into each subquery; the outer query runs
            // on the client so only the children contribute units.
            let mut units = Vec::new();
            for t in &query.from {
                if let TableRef::Subquery { query: sub, .. } = t {
                    units.extend(extract_enc_units(sub, plain));
                }
            }
            return units;
        }
    };
    let mut units = Vec::new();

    let mut pair_for = |expr: &Expr, scheme: EncScheme| -> Option<EncPair> {
        let table = scope.single_table(expr)?;
        let ty = scope.infer_type(expr);
        // HOM only applies to numeric values.
        if scheme == EncScheme::Hom && !matches!(ty, ColumnType::Int | ColumnType::Float) {
            return None;
        }
        // OPE applies to numbers and dates.
        if scheme == EncScheme::Ope && matches!(ty, ColumnType::Str | ColumnType::Bytes) {
            return None;
        }
        Some(EncPair {
            table,
            source: normalize_expr(expr),
            ty_tag: EncPair::tag(ty),
            scheme,
        })
    };

    // WHERE conjuncts: one unit each.
    let conjuncts = query
        .where_clause
        .as_ref()
        .map(|w| w.split_conjuncts())
        .unwrap_or_default();
    for conj in &conjuncts {
        let mut pairs = Vec::new();
        collect_predicate_pairs(conj, &mut pair_for, &mut pairs);
        // Subqueries inside the conjunct contribute their own units.
        conj.walk(&mut |node| {
            if let Expr::InSubquery { subquery, .. } | Expr::Exists { subquery, .. } = node {
                units.extend(extract_enc_units(subquery, plain));
            } else if let Expr::ScalarSubquery(subquery) = node {
                units.extend(extract_enc_units(subquery, plain));
            }
        });
        if !pairs.is_empty() {
            units.push(EncUnit {
                description: format!("where: {conj}"),
                pairs,
            });
        }
    }

    // GROUP BY: one unit for all keys.
    if !query.group_by.is_empty() {
        let mut pairs = Vec::new();
        for key in &query.group_by {
            if let Some(p) = pair_for(key, EncScheme::Det) {
                pairs.push(p);
            }
        }
        if !pairs.is_empty() {
            units.push(EncUnit {
                description: "group by".into(),
                pairs,
            });
        }
    }

    // Aggregates: HOM pair per SUM/AVG argument (one unit per aggregate), plus
    // a DET pair so the client-side alternative (group_concat) is available.
    let mut agg_exprs: Vec<Expr> = Vec::new();
    let mut collect = |e: &Expr| {
        e.walk(&mut |n| {
            if matches!(n, Expr::Aggregate { .. }) && !agg_exprs.contains(n) {
                agg_exprs.push(n.clone());
            }
        })
    };
    for p in &query.projections {
        collect(&p.expr);
    }
    if let Some(h) = &query.having {
        collect(h);
        h.walk(&mut |node| {
            if let Expr::ScalarSubquery(subquery) = node {
                units.extend(extract_enc_units(subquery, plain));
            }
        });
    }
    for agg in &agg_exprs {
        if let Expr::Aggregate {
            func: AggFunc::Sum | AggFunc::Avg,
            arg: Some(a),
            ..
        } = agg
        {
            let mut pairs = Vec::new();
            if let Some(p) = pair_for(a, EncScheme::Hom) {
                pairs.push(p);
            }
            if let Some(p) = pair_for(a, EncScheme::Det) {
                pairs.push(p);
            }
            if !pairs.is_empty() {
                units.push(EncUnit {
                    description: format!("aggregate: {agg}"),
                    pairs,
                });
            }
        }
        if let Expr::Aggregate {
            func: AggFunc::Min | AggFunc::Max,
            arg: Some(a),
            ..
        } = agg
        {
            if let Some(p) = pair_for(a, EncScheme::Det) {
                units.push(EncUnit {
                    description: format!("aggregate: {agg}"),
                    pairs: vec![p],
                });
            }
        }
    }

    // HAVING SUM(x) > c additionally proposes an OPE pair on x so the
    // conservative pre-filter (§5.4) is available.
    if let Some(Expr::BinaryOp {
        left,
        op: BinaryOp::Gt | BinaryOp::GtEq,
        ..
    }) = &query.having
    {
        if let Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(a),
            ..
        } = &**left
        {
            if let Some(p) = pair_for(a, EncScheme::Ope) {
                units.push(EncUnit {
                    description: "having pre-filter".into(),
                    pairs: vec![p],
                });
            }
        }
    }

    units
}

fn collect_predicate_pairs(
    conj: &Expr,
    pair_for: &mut impl FnMut(&Expr, EncScheme) -> Option<EncPair>,
    out: &mut Vec<EncPair>,
) {
    match conj {
        Expr::BinaryOp {
            left,
            op: BinaryOp::And | BinaryOp::Or,
            right,
        } => {
            collect_predicate_pairs(left, pair_for, out);
            collect_predicate_pairs(right, pair_for, out);
        }
        Expr::UnaryOp {
            op: UnaryOp::Not,
            expr,
        } => collect_predicate_pairs(expr, pair_for, out),
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            let l_cols = !left.column_refs().is_empty();
            let r_cols = !right.column_refs().is_empty();
            match (l_cols, r_cols) {
                (true, false) | (false, true) => {
                    let col_side = if l_cols { left } else { right };
                    let scheme = if matches!(op, BinaryOp::Eq | BinaryOp::NotEq) {
                        EncScheme::Det
                    } else {
                        EncScheme::Ope
                    };
                    if let Some(p) = pair_for(col_side, scheme) {
                        out.push(p);
                    }
                }
                (true, true) => {
                    if *op == BinaryOp::Eq {
                        // Equi-join: DET on both sides.
                        if let Some(p) = pair_for(left, EncScheme::Det) {
                            out.push(p);
                        }
                        if let Some(p) = pair_for(right, EncScheme::Det) {
                            out.push(p);
                        }
                    } else {
                        // Same-table comparison: precompute the whole predicate.
                        if let Some(p) = pair_for(conj, EncScheme::Det) {
                            out.push(p);
                        }
                    }
                }
                _ => {}
            }
        }
        Expr::Between { expr, .. } => {
            if let Some(p) = pair_for(expr, EncScheme::Ope) {
                out.push(p);
            }
        }
        Expr::InList { expr, .. } => {
            if let Some(p) = pair_for(expr, EncScheme::Det) {
                out.push(p);
            }
        }
        Expr::Like { expr, .. } => {
            if let Some(p) = pair_for(expr, EncScheme::Search) {
                out.push(p);
            }
        }
        Expr::InSubquery { expr, .. } => {
            if let Some(p) = pair_for(expr, EncScheme::Det) {
                out.push(p);
            }
        }
        _ => {}
    }
}

/// Result of planning one query against a candidate set of encryptions.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    pub plan: SplitPlan,
    pub cost: CostBreakdown,
    /// Indexes (into the unit list) of the units whose pairs the plan relies on.
    pub enabled_units: Vec<usize>,
}

/// The runtime/design-time planner.
pub struct Planner<'a> {
    pub plain: &'a Database,
    pub master: MasterKey,
    pub paillier: PaillierKey,
    pub profile: DecryptProfile,
    pub network: NetworkModel,
    pub options: PlanOptions,
    pub paillier_bits: usize,
    /// Cap on the number of unit subsets enumerated per query (the full power
    /// set is pruned to units, and very wide queries are further capped).
    pub max_subsets: usize,
}

impl<'a> Planner<'a> {
    /// Builds a design containing the baseline coverage plus the pairs of the
    /// enabled units (plus packing flags).
    pub fn design_for_pairs(&self, pairs: &[EncPair]) -> PhysicalDesign {
        let mut design = PhysicalDesign::new(self.paillier_bits);
        for p in pairs {
            let td = design.table_mut(&p.table);
            td.add(p.source.clone(), p.ty(), p.scheme);
        }
        design.add_baseline_coverage(self.plain);
        for td in design.tables.values_mut() {
            td.col_packing = true;
        }
        design
    }

    /// Enumerates unit subsets for a query and returns every candidate plan
    /// with its cost and the units it depends on, cheapest first.
    pub fn candidate_plans(&self, query: &Query, units: &[EncUnit]) -> Vec<PlannedQuery> {
        let n = units.len().min(16);
        let subset_count = (1usize << n).min(self.max_subsets.max(1));
        let cost_model = CostModel {
            plain: self.plain,
            profile: self.profile,
            network: self.network,
        };
        let mut out = Vec::new();
        // Enumerate subsets from "all units enabled" downwards so the best
        // plans are found even if the cap truncates enumeration.
        let full = (1usize << n) - 1;
        let mut masks: Vec<usize> = (0..(1usize << n)).map(|m| full ^ m).collect();
        masks.truncate(subset_count);
        for mask in masks {
            let mut pairs = Vec::new();
            let mut enabled = Vec::new();
            for (i, unit) in units.iter().enumerate().take(n) {
                if mask & (1 << i) != 0 {
                    pairs.extend(unit.pairs.iter().cloned());
                    enabled.push(i);
                }
            }
            let design = self.design_for_pairs(&pairs);
            let encryptor =
                Encryptor::with_keys(self.master.clone(), self.paillier.clone(), design);
            let plan = generate_query_plan(query, self.plain, &encryptor, &self.options);
            let cost = cost_model.plan_cost(&plan, query);
            out.push(PlannedQuery {
                plan,
                cost,
                enabled_units: enabled,
            });
        }
        out.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
        out
    }

    /// Chooses the best plan for a query given a fixed design (runtime use).
    pub fn best_plan(&self, query: &Query, encryptor: &Encryptor) -> (SplitPlan, CostBreakdown) {
        let cost_model = CostModel {
            plain: self.plain,
            profile: self.profile,
            network: self.network,
        };
        // Candidate 1: Algorithm-1 split plan with every optimization allowed.
        let smart = generate_query_plan(query, self.plain, encryptor, &self.options);
        let smart_cost = cost_model.plan_cost(&smart, query);
        // Candidate 2: the client-side fallback.
        let fallback =
            crate::plan::client_fallback_plan(query, self.plain, encryptor, &self.options);
        let fallback_cost = cost_model.plan_cost(&fallback, query);
        // Candidate 3: split plan without homomorphic aggregation (ships group
        // values instead) — this is the choice that matters for queries with
        // many small groups (the paper's query 18 example).
        let mut no_hom_options = self.options;
        no_hom_options.use_hom_aggregation = false;
        let no_hom = generate_query_plan(query, self.plain, encryptor, &no_hom_options);
        let no_hom_cost = cost_model.plan_cost(&no_hom, query);

        let mut best = (smart, smart_cost);
        if no_hom_cost.total() < best.1.total() {
            best = (no_hom, no_hom_cost);
        }
        if fallback_cost.total() < best.1.total() {
            best = (fallback, fallback_cost);
        }
        best
    }
}
