//! REWRITESERVER: translating plaintext expressions into expressions the
//! untrusted server can evaluate over encrypted columns (§4 of the paper).
//!
//! The rewriter never sends plaintext to the server: constants appearing in
//! predicates are encrypted under the corresponding column's key, and column
//! references are replaced by encrypted column names. When no rewriting is
//! possible the caller falls back to fetching the underlying encrypted columns
//! and evaluating the expression on the trusted client.

use crate::design::{Encryptor, PhysicalDesign, TableDesign};
use crate::schemes::EncScheme;
use monomi_engine::{encode_hex, ColumnType, Database, EvalContext, RowSchema, Value};
use monomi_sql::ast::*;

/// Resolves unqualified column references to their tables and types for one
/// query's FROM scope.
#[derive(Clone, Debug, Default)]
pub struct QueryScope {
    /// `(binding, table, column, type)` for every visible column.
    entries: Vec<(String, String, String, ColumnType)>,
}

impl QueryScope {
    /// Builds the scope for a query whose FROM clause references only base
    /// tables. Returns `None` if a derived table is present (those are planned
    /// recursively by the caller).
    pub fn for_query(query: &Query, plain: &Database) -> Option<QueryScope> {
        let mut entries = Vec::new();
        for table_ref in &query.from {
            match table_ref {
                TableRef::Table { name, alias } => {
                    let schema = plain.catalog().get(name)?;
                    let binding = alias.clone().unwrap_or_else(|| name.clone());
                    for col in &schema.columns {
                        entries.push((
                            binding.to_lowercase(),
                            name.to_lowercase(),
                            col.name.to_lowercase(),
                            col.ty,
                        ));
                    }
                }
                TableRef::Subquery { .. } => return None,
            }
        }
        Some(QueryScope { entries })
    }

    /// Resolves a column reference to `(table, column, type)`.
    pub fn resolve(&self, col: &ColumnRef) -> Option<(String, String, ColumnType)> {
        let cname = col.column.to_lowercase();
        match &col.table {
            Some(t) => {
                let t = t.to_lowercase();
                self.entries
                    .iter()
                    .find(|(b, _, c, _)| *b == t && *c == cname)
                    .map(|(_, table, c, ty)| (table.clone(), c.clone(), *ty))
            }
            None => self
                .entries
                .iter()
                .find(|(_, _, c, _)| *c == cname)
                .map(|(_, table, c, ty)| (table.clone(), c.clone(), *ty)),
        }
    }

    /// The single table all columns of `expr` belong to, if any.
    pub fn single_table(&self, expr: &Expr) -> Option<String> {
        let mut table: Option<String> = None;
        for c in expr.column_refs() {
            let (t, _, _) = self.resolve(&c)?;
            match &table {
                None => table = Some(t),
                Some(existing) if *existing == t => {}
                _ => return None,
            }
        }
        table
    }

    /// Infers the logical type of an expression.
    pub fn infer_type(&self, expr: &Expr) -> ColumnType {
        match expr {
            Expr::Column(c) => self
                .resolve(c)
                .map(|(_, _, t)| t)
                .unwrap_or(ColumnType::Int),
            Expr::Literal(Literal::Number(n)) => {
                if n.contains('.') {
                    ColumnType::Float
                } else {
                    ColumnType::Int
                }
            }
            Expr::Literal(Literal::String(_)) => ColumnType::Str,
            Expr::Literal(Literal::Date(_)) => ColumnType::Date,
            Expr::BinaryOp { left, op, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    ColumnType::Int
                } else {
                    let lt = self.infer_type(left);
                    let rt = self.infer_type(right);
                    if lt == ColumnType::Date || rt == ColumnType::Date {
                        ColumnType::Date
                    } else if lt == ColumnType::Float || rt == ColumnType::Float {
                        ColumnType::Float
                    } else {
                        ColumnType::Int
                    }
                }
            }
            Expr::Aggregate { func, arg, .. } => match func {
                AggFunc::Count => ColumnType::Int,
                AggFunc::Avg => ColumnType::Float,
                _ => arg
                    .as_ref()
                    .map(|a| self.infer_type(a))
                    .unwrap_or(ColumnType::Int),
            },
            Expr::Extract { .. } => ColumnType::Int,
            Expr::Case {
                when_then,
                else_expr,
                ..
            } => when_then
                .first()
                .map(|(_, t)| self.infer_type(t))
                .or_else(|| else_expr.as_ref().map(|e| self.infer_type(e)))
                .unwrap_or(ColumnType::Int),
            Expr::Function { name, .. } if name == "substring" || name == "substr" => {
                ColumnType::Str
            }
            Expr::UnaryOp { expr, .. } => self.infer_type(expr),
            _ => ColumnType::Int,
        }
    }
}

/// Constant-folds an expression with no column references into a value.
pub fn fold_constant(expr: &Expr) -> Option<Value> {
    if !expr.column_refs().is_empty() || expr.contains_subquery() || expr.contains_aggregate() {
        return None;
    }
    let schema = RowSchema::default();
    let ctx = EvalContext::with_params(&[]);
    monomi_engine::expr::eval(expr, &schema, &[], &ctx).ok()
}

/// Context for rewriting one query against a physical design.
pub struct Rewriter<'a> {
    pub design: &'a PhysicalDesign,
    pub encryptor: &'a Encryptor,
    pub scope: &'a QueryScope,
}

/// A column the rewriter chose to fetch and how the client must decrypt it.
#[derive(Clone, Debug, PartialEq)]
pub struct FetchSpec {
    /// Encrypted column name to project in the server query.
    pub enc_column: String,
    /// Table holding the column.
    pub table: String,
    /// Base (design) name of the source.
    pub base: String,
    /// Scheme to decrypt with.
    pub scheme: EncScheme,
    /// Logical type of the plaintext.
    pub ty: ColumnType,
}

impl<'a> Rewriter<'a> {
    fn table_design(&self, table: &str) -> Option<&TableDesign> {
        self.design.table(table)
    }

    /// Finds a design source matching `expr` (a column reference or a
    /// precomputed expression) and the schemes materialized for it.
    pub fn find_source(&self, expr: &Expr) -> Option<(String, &crate::design::ColumnDesign)> {
        // Bare column: resolve through the scope.
        if let Expr::Column(c) = expr {
            let (table, column, _) = self.scope.resolve(c)?;
            let td = self.table_design(&table)?;
            let cd = td.find_source(&Expr::Column(ColumnRef::new(column)))?;
            return Some((table, cd));
        }
        // Precomputed expression: must live in the single table it references.
        let table = self.scope.single_table(expr)?;
        let td = self.table_design(&table)?;
        // Normalize qualified column refs to unqualified for matching.
        let normalized = normalize_expr(expr);
        let cd = td.find_source(&normalized)?;
        Some((table, cd))
    }

    /// Picks a decryptable encrypted column for `expr` (DET preferred over RND
    /// because its ciphertexts are smaller).
    pub fn fetch_source(&self, expr: &Expr) -> Option<FetchSpec> {
        let (table, cd) = self.find_source(expr)?;
        let scheme = if cd.schemes.contains(&EncScheme::Det) {
            EncScheme::Det
        } else if cd.schemes.contains(&EncScheme::Rnd) {
            EncScheme::Rnd
        } else {
            return None;
        };
        Some(FetchSpec {
            enc_column: cd.enc_name(scheme),
            table,
            base: cd.base_name.clone(),
            scheme,
            ty: cd.ty,
        })
    }

    /// The encrypted column carrying a specific scheme of `expr`, if present.
    pub fn scheme_column(&self, expr: &Expr, scheme: EncScheme) -> Option<FetchSpec> {
        let (table, cd) = self.find_source(expr)?;
        if !cd.schemes.contains(&scheme) {
            return None;
        }
        Some(FetchSpec {
            enc_column: cd.enc_name(scheme),
            table,
            base: cd.base_name.clone(),
            scheme,
            ty: cd.ty,
        })
    }

    fn encrypt_constant(
        &self,
        spec: &FetchSpecLike<'_>,
        scheme: EncScheme,
        v: &Value,
    ) -> Option<Expr> {
        let td = self.design.table(spec.table)?;
        let cd = td.find_base(spec.base)?;
        let ct = self
            .encryptor
            .encrypt_constant(spec.table, cd, scheme, v)
            .ok()?;
        Some(match ct {
            Value::Int(i) => Expr::Literal(Literal::Number(i.to_string())),
            Value::Bytes(b) => Expr::Function {
                name: "hex_bytes".into(),
                args: vec![Expr::Literal(Literal::String(encode_hex(&b)))],
            },
            Value::Str(s) => Expr::Literal(Literal::String(s)),
            _ => return None,
        })
    }

    /// REWRITESERVER with `enctype = PLAIN`: produce an expression computing
    /// the same (boolean/plain) value over encrypted columns, or `None`.
    pub fn rewrite_plain(&self, expr: &Expr) -> Option<Expr> {
        match expr {
            Expr::BinaryOp {
                left,
                op: op @ (BinaryOp::And | BinaryOp::Or),
                right,
            } => {
                let l = self.rewrite_plain(left)?;
                let r = self.rewrite_plain(right)?;
                Some(l.binop(*op, r))
            }
            Expr::UnaryOp {
                op: UnaryOp::Not,
                expr,
            } => Some(Expr::UnaryOp {
                op: UnaryOp::Not,
                expr: Box::new(self.rewrite_plain(expr)?),
            }),
            Expr::BinaryOp { left, op, right } if op.is_comparison() => {
                self.rewrite_comparison(expr, left, *op, right)
            }
            Expr::Between {
                expr: inner,
                low,
                high,
                negated,
            } => {
                let ge = self.rewrite_comparison(expr, inner, BinaryOp::GtEq, low)?;
                let le = self.rewrite_comparison(expr, inner, BinaryOp::LtEq, high)?;
                let both = ge.binop(BinaryOp::And, le);
                Some(if *negated {
                    Expr::UnaryOp {
                        op: UnaryOp::Not,
                        expr: Box::new(both),
                    }
                } else {
                    both
                })
            }
            Expr::InList {
                expr: inner,
                list,
                negated,
            } => {
                let spec = self.scheme_column(inner, EncScheme::Det)?;
                let mut enc_list = Vec::with_capacity(list.len());
                for item in list {
                    let v = fold_constant(item)?;
                    enc_list.push(self.encrypt_constant(
                        &FetchSpecLike {
                            table: &spec.table,
                            base: &spec.base,
                        },
                        EncScheme::Det,
                        &v,
                    )?);
                }
                Some(Expr::InList {
                    expr: Box::new(Expr::col(spec.enc_column)),
                    list: enc_list,
                    negated: *negated,
                })
            }
            Expr::Like {
                expr: inner,
                pattern,
                negated,
            } => {
                let spec = self.scheme_column(inner, EncScheme::Search)?;
                let pattern_value = fold_constant(pattern)?;
                let pattern_str = pattern_value.as_str()?.to_string();
                let keywords: Vec<&str> = pattern_str
                    .split(|c: char| !c.is_alphanumeric())
                    .filter(|w| !w.is_empty())
                    .collect();
                // Single-keyword patterns only (matching the paper's prototype).
                if keywords.len() != 1 {
                    return None;
                }
                let search = self
                    .encryptor
                    .master_search(&spec.table, &spec.base)
                    .trapdoor(keywords[0]);
                let call = Expr::Function {
                    name: "search_match".into(),
                    args: vec![
                        Expr::col(spec.enc_column),
                        Expr::Literal(Literal::String(encode_hex(&search.0))),
                    ],
                };
                Some(if *negated {
                    Expr::UnaryOp {
                        op: UnaryOp::Not,
                        expr: Box::new(call),
                    }
                } else {
                    call
                })
            }
            Expr::IsNull {
                expr: inner,
                negated,
            } => {
                let spec = self.fetch_source(inner)?;
                Some(Expr::IsNull {
                    expr: Box::new(Expr::col(spec.enc_column)),
                    negated: *negated,
                })
            }
            // Constant-only expressions pass through unchanged.
            e if e.column_refs().is_empty() && !e.contains_subquery() => Some(e.clone()),
            _ => None,
        }
    }

    fn rewrite_comparison(
        &self,
        whole: &Expr,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
    ) -> Option<Expr> {
        let left_const = fold_constant(left);
        let right_const = fold_constant(right);
        match (left_const, right_const) {
            // column-ish <op> constant
            (None, Some(v)) => self.rewrite_col_vs_const(whole, left, op, &v),
            // constant <op> column-ish: flip the operator.
            (Some(v), None) => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                };
                self.rewrite_col_vs_const(whole, right, flipped, &v)
            }
            // column <op> column.
            (None, None) => {
                if op == BinaryOp::Eq {
                    // Equi-join through DET. Equality of DET ciphertexts is
                    // only meaningful when both sides are encrypted under the
                    // same key; key/foreign-key columns share a derivation
                    // label (see `Encryptor::det_label`), which is what makes
                    // encrypted equi-joins work.
                    let l = self.scheme_column(left, EncScheme::Det)?;
                    let r = self.scheme_column(right, EncScheme::Det)?;
                    let shared = Encryptor::det_label(&l.table, &l.base)
                        == Encryptor::det_label(&r.table, &r.base);
                    if !shared {
                        return None;
                    }
                    return Some(
                        Expr::col(l.enc_column).binop(BinaryOp::Eq, Expr::col(r.enc_column)),
                    );
                }
                // Same-table comparisons can be answered by a precomputed
                // boolean expression encrypted with DET.
                let (table, cd) = self.find_source(whole)?;
                if cd.schemes.contains(&EncScheme::Det) {
                    let ct = self.encrypt_constant(
                        &FetchSpecLike {
                            table: &table,
                            base: &cd.base_name,
                        },
                        EncScheme::Det,
                        &Value::Int(1),
                    )?;
                    return Some(Expr::col(cd.enc_name(EncScheme::Det)).binop(BinaryOp::Eq, ct));
                }
                None
            }
            // constant <op> constant: fold later.
            (Some(_), Some(_)) => Some(whole.clone()),
        }
    }

    fn rewrite_col_vs_const(
        &self,
        whole: &Expr,
        col_side: &Expr,
        op: BinaryOp,
        v: &Value,
    ) -> Option<Expr> {
        match op {
            BinaryOp::Eq | BinaryOp::NotEq => {
                let spec = self.scheme_column(col_side, EncScheme::Det)?;
                let ct = self.encrypt_constant(
                    &FetchSpecLike {
                        table: &spec.table,
                        base: &spec.base,
                    },
                    EncScheme::Det,
                    v,
                )?;
                Some(Expr::col(spec.enc_column).binop(op, ct))
            }
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                let spec = self.scheme_column(col_side, EncScheme::Ope)?;
                let ct = self.encrypt_constant(
                    &FetchSpecLike {
                        table: &spec.table,
                        base: &spec.base,
                    },
                    EncScheme::Ope,
                    v,
                )?;
                Some(Expr::col(spec.enc_column).binop(op, ct))
            }
            _ => {
                let _ = whole;
                None
            }
        }
    }

    /// REWRITESERVER with `enctype = DET`: the server-side expression whose
    /// value is the DET ciphertext of `expr` (used for GROUP BY keys).
    pub fn rewrite_det(&self, expr: &Expr) -> Option<Expr> {
        let spec = self.scheme_column(expr, EncScheme::Det)?;
        Some(Expr::col(spec.enc_column))
    }
}

/// Lightweight (table, base) pair used internally when encrypting constants.
struct FetchSpecLike<'a> {
    table: &'a str,
    base: &'a str,
}

impl Encryptor {
    /// Access to the SEARCH scheme for trapdoor generation during rewriting.
    pub fn master_search(&self, table: &str, base: &str) -> monomi_crypto::SearchScheme {
        self.master_key().search(table, base)
    }
}

/// Strips table qualifiers from column references so expressions can be
/// matched against design sources (which are stored unqualified).
pub fn normalize_expr(expr: &Expr) -> Expr {
    let mut out = expr.clone();
    normalize_in_place(&mut out);
    out
}

fn normalize_in_place(expr: &mut Expr) {
    match expr {
        Expr::Column(c) => {
            c.table = None;
            c.column = c.column.to_lowercase();
        }
        Expr::BinaryOp { left, right, .. } => {
            normalize_in_place(left);
            normalize_in_place(right);
        }
        Expr::UnaryOp { expr, .. } => normalize_in_place(expr),
        Expr::Aggregate { arg: Some(a), .. } => normalize_in_place(a),
        Expr::Function { args, .. } => {
            for a in args {
                normalize_in_place(a);
            }
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                normalize_in_place(o);
            }
            for (w, t) in when_then {
                normalize_in_place(w);
                normalize_in_place(t);
            }
            if let Some(e) = else_expr {
                normalize_in_place(e);
            }
        }
        Expr::Like { expr, pattern, .. } => {
            normalize_in_place(expr);
            normalize_in_place(pattern);
        }
        Expr::InList { expr, list, .. } => {
            normalize_in_place(expr);
            for e in list {
                normalize_in_place(e);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            normalize_in_place(expr);
            normalize_in_place(low);
            normalize_in_place(high);
        }
        Expr::Extract { expr, .. } => normalize_in_place(expr),
        Expr::IsNull { expr, .. } => normalize_in_place(expr),
        _ => {}
    }
}
