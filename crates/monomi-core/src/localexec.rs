//! Client-side execution of split plans: RemoteSQL dispatch, LocalDecrypt,
//! LocalFilter, LocalGroupBy/LocalGroupFilter, LocalProjection, LocalSort.
//!
//! The executor measures the client's own work (decryption and residual
//! computation), the server's work (engine execution plus a simulated disk
//! read), and the simulated wide-area transfer of intermediate results, so the
//! benchmark harnesses can report the same breakdowns as the paper.

use crate::design::Encryptor;
use crate::network::NetworkModel;
use crate::plan::{DecryptSpec, OutputColumn, RemotePlan, SplitPlan};
use crate::transport::ServerTransport;
use crate::CoreError;
use monomi_engine::{
    ColumnDef, ColumnType, Database, ExecOptions, ResultSet, RowSchema, TableSchema, Value,
};
use monomi_obs::{Span, Stopwatch, TraceId};
use monomi_sql::ast::*;
use std::collections::HashMap;

/// Timing breakdown of one query execution through MONOMI.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryTimings {
    /// Wall-clock time spent executing server queries plus simulated disk I/O.
    pub server_seconds: f64,
    /// Aggregate CPU time the server's worker threads burned executing the
    /// queries (no disk I/O): wall-clock outside parallel regions plus the
    /// summed residency of every morsel worker inside them
    /// (`ExecStats::cpu_seconds`). Equals the server's execution wall time
    /// at `MONOMI_THREADS=1`; with a dedicated core per worker the ratio
    /// `server_cpu_seconds / server exec wall` is the observed effective
    /// parallelism. Worker residency includes descheduled time, so on
    /// oversubscribed hosts (threads > cores) this is an upper bound on
    /// true CPU.
    pub server_cpu_seconds: f64,
    /// Simulated time to ship intermediate results over the client/server link.
    pub network_seconds: f64,
    /// *Measured* time on the wire: for TCP transports, the round-trip
    /// wall-clock of each server call minus the server-reported execution
    /// seconds (0 for in-process execution). Reported alongside the modeled
    /// `network_seconds` so the cost model can be validated against a real
    /// link instead of only the [`NetworkModel`].
    ///
    /// The subtraction is clamped at zero (via [`monomi_obs::wire_share`]):
    /// the two clocks are read on different machines, so on a loopback link a
    /// server-measured execution can exceed the client-measured round trip by
    /// scheduling noise, and a negative "time on the wire" is meaningless.
    pub wire_seconds: f64,
    /// Measured frame bytes the client sent to the server (0 in-process).
    pub wire_bytes_sent: u64,
    /// Measured frame bytes the client received from the server
    /// (0 in-process). Compare with the modeled `transfer_bytes`.
    pub wire_bytes_received: u64,
    /// Request attempts beyond the first the transport needed (retryable
    /// wire failures absorbed by the retry/backoff machinery; 0 in-process
    /// and on a healthy link).
    pub retries: u64,
    /// Connections the transport re-established mid-query (each replayed
    /// the session journal; 0 in-process and on a healthy link).
    pub reconnects: u64,
    /// Client time spent decrypting intermediate results.
    pub decrypt_seconds: f64,
    /// Client time spent on residual query processing.
    pub client_seconds: f64,
    /// Bytes shipped from server to client.
    pub transfer_bytes: u64,
    /// Bytes the server read from storage. On the disk backend
    /// (`MONOMI_STORAGE=disk`) these are *stored* (encoded) bytes of the
    /// segments scans actually decoded — real I/O, not modeled width.
    pub server_bytes_scanned: u64,
    /// Disk segments the server's scans read (0 on the memory backend).
    pub server_segments_read: u64,
    /// Disk segments zone-map pruning skipped before any predicate ran.
    pub server_segments_pruned: u64,
    /// Bytes the server materialized after scan-level filtering (selection-
    /// vector survivors, referenced columns only) — the selectivity-aware
    /// scan output the cost model's materialization term corresponds to.
    pub server_bytes_materialized: u64,
    /// Secondary-index probes the server's scans ran (DET dictionary point
    /// lookups and OPE range binary searches over per-segment index blocks).
    pub server_index_probes: u64,
    /// Row ids the probes' postings yielded before intersection — the rows
    /// the index path actually fetched instead of scanning the segment.
    pub server_index_rows_fetched: u64,
    /// Bytes of posting lists the probes touched.
    pub server_postings_bytes_read: u64,
}

impl QueryTimings {
    /// Total end-to-end time.
    pub fn total_seconds(&self) -> f64 {
        self.server_seconds + self.network_seconds + self.decrypt_seconds + self.client_seconds
    }

    /// Client CPU time (decrypt + residual compute), for Figure 7.
    pub fn client_cpu_seconds(&self) -> f64 {
        self.decrypt_seconds + self.client_seconds
    }

    fn add(&mut self, other: &QueryTimings) {
        self.server_seconds += other.server_seconds;
        self.server_cpu_seconds += other.server_cpu_seconds;
        self.network_seconds += other.network_seconds;
        self.wire_seconds += other.wire_seconds;
        self.wire_bytes_sent += other.wire_bytes_sent;
        self.wire_bytes_received += other.wire_bytes_received;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        self.decrypt_seconds += other.decrypt_seconds;
        self.client_seconds += other.client_seconds;
        self.transfer_bytes += other.transfer_bytes;
        self.server_bytes_scanned += other.server_bytes_scanned;
        self.server_segments_read += other.server_segments_read;
        self.server_segments_pruned += other.server_segments_pruned;
        self.server_bytes_materialized += other.server_bytes_materialized;
        self.server_index_probes += other.server_index_probes;
        self.server_index_rows_fetched += other.server_index_rows_fetched;
        self.server_postings_bytes_read += other.server_postings_bytes_read;
    }
}

/// Executes split plans against an encrypted database reached through a
/// [`ServerTransport`] — in-process or over a real TCP connection; results
/// are byte-identical either way.
pub struct SplitExecutor<'a> {
    pub server: &'a dyn ServerTransport,
    pub encryptor: &'a Encryptor,
    pub network: &'a NetworkModel,
    /// Engine execution options for both the server queries and the client's
    /// residual plaintext execution (results are thread-count-invariant).
    pub exec_options: ExecOptions,
}

/// The decrypted intermediate result of a RemoteSQL + LocalDecrypt step: rows
/// whose columns are keyed by the plaintext expression they carry.
struct Environment {
    keys: Vec<Expr>,
    rows: Vec<Vec<Value>>,
}

impl<'a> SplitExecutor<'a> {
    /// Executes a plan, returning plaintext results and the timing breakdown.
    pub fn execute(&self, plan: &SplitPlan) -> Result<(ResultSet, QueryTimings), CoreError> {
        let (rs, timings, _) = self.execute_traced(plan, TraceId::ZERO)?;
        Ok((rs, timings))
    }

    /// Executes a plan under a trace id, additionally returning the client
    /// span tree: the server's per-operator spans (echoed over the wire)
    /// nested under each RemoteSQL step, plus client-side decrypt and
    /// residual-computation spans. A zero trace id means untraced — no spans
    /// are collected anywhere and the server pays no timing overhead.
    pub fn execute_traced(
        &self,
        plan: &SplitPlan,
        trace: TraceId,
    ) -> Result<(ResultSet, QueryTimings, Vec<Span>), CoreError> {
        let mut spans = Vec::new();
        let (rs, timings) = self.dispatch(plan, trace, &mut spans)?;
        Ok((rs, timings, spans))
    }

    fn dispatch(
        &self,
        plan: &SplitPlan,
        trace: TraceId,
        spans: &mut Vec<Span>,
    ) -> Result<(ResultSet, QueryTimings), CoreError> {
        match plan {
            SplitPlan::Remote(rp) => self.execute_remote(rp, trace, spans),
            SplitPlan::Client { query, children } => {
                self.execute_client(query, children, trace, spans)
            }
        }
    }

    fn execute_client(
        &self,
        query: &Query,
        children: &[(String, SplitPlan)],
        trace: TraceId,
        spans: &mut Vec<Span>,
    ) -> Result<(ResultSet, QueryTimings), CoreError> {
        let mut timings = QueryTimings::default();
        // Materialize every child into a local plaintext database.
        let mut local_db = Database::new();
        for (binding, child) in children {
            let mut child_spans = Vec::new();
            let (rs, t) = self.dispatch(child, trace, &mut child_spans)?;
            timings.add(&t);
            if !trace.is_zero() {
                spans.push(Span::node(
                    format!("Child({binding})"),
                    t.total_seconds(),
                    rs.rows.len() as u64,
                    child_spans,
                ));
            }
            let started = Stopwatch::start();
            // Column types come from the child plan's declared schema first;
            // sniffing the rows is only a fallback for expressions the
            // inference cannot type. Without the declared types, an all-NULL
            // intermediate column silently became Int, which then made
            // comparisons against its real type vacuously false.
            let declared = output_column_types(child);
            let schema = TableSchema::new(
                binding.clone(),
                rs.columns
                    .iter()
                    .enumerate()
                    .map(|(i, name)| {
                        let ty = declared
                            .get(i)
                            .and_then(|(_, t)| *t)
                            .or_else(|| rs.rows.iter().find_map(|r| value_column_type(&r[i])))
                            .unwrap_or(ColumnType::Int);
                        ColumnDef::new(name.clone(), ty)
                    })
                    .collect(),
            );
            local_db.create_table(schema);
            local_db
                .bulk_load(binding, rs.rows)
                .map_err(|e| CoreError::new(e.to_string()))?;
            timings.client_seconds += started.seconds();
        }
        let started = Stopwatch::start();
        let (rs, _) = local_db
            .execute_with(query, &[], &self.exec_options)
            .map_err(|e| CoreError::new(e.to_string()))?;
        let residual_seconds = started.seconds();
        timings.client_seconds += residual_seconds;
        if !trace.is_zero() {
            spans.push(Span::leaf(
                "ClientResidual",
                residual_seconds,
                rs.rows.len() as u64,
            ));
        }
        Ok((rs, timings))
    }

    fn execute_remote(
        &self,
        rp: &RemotePlan,
        trace: TraceId,
        spans: &mut Vec<Span>,
    ) -> Result<(ResultSet, QueryTimings), CoreError> {
        let mut timings = QueryTimings::default();

        // 1. Child subqueries (uncorrelated) referenced by local predicates.
        let mut sub_results: HashMap<Query, Vec<Vec<Value>>> = HashMap::new();
        for (sub, child) in &rp.subquery_children {
            let mut child_spans = Vec::new();
            let (rs, t) = self.dispatch(child, trace, &mut child_spans)?;
            timings.add(&t);
            if !trace.is_zero() {
                spans.push(Span::node(
                    "Subquery".to_string(),
                    t.total_seconds(),
                    rs.rows.len() as u64,
                    child_spans,
                ));
            }
            sub_results.insert(sub.clone(), rs.rows);
        }

        // 2. RemoteSQL on the untrusted server, through the transport.
        let remote = self
            .server
            .execute_traced(&rp.server_query, &self.exec_options, trace)?;
        let enc_rs = remote.result;
        let stats = remote.stats;
        let exec_elapsed = remote.exec_seconds;
        timings.server_seconds += exec_elapsed
            + self
                .network
                .storage_seconds(stats.bytes_scanned, stats.segments_read);
        timings.wire_seconds += remote.wire.seconds;
        timings.wire_bytes_sent += remote.wire.bytes_sent;
        timings.wire_bytes_received += remote.wire.bytes_received;
        timings.retries += remote.wire.retries;
        timings.reconnects += remote.wire.reconnects;
        // Aggregate CPU: serial portions run on one thread (wall == CPU);
        // inside morsel-parallel regions the workers' summed busy time
        // replaces the region's wall-clock contribution.
        timings.server_cpu_seconds += stats.cpu_seconds(exec_elapsed);
        timings.server_bytes_scanned += stats.bytes_scanned;
        timings.server_segments_read += stats.segments_read;
        timings.server_segments_pruned += stats.segments_pruned;
        timings.server_bytes_materialized += stats.bytes_materialized;
        timings.server_index_probes += stats.index_probes;
        timings.server_index_rows_fetched += stats.index_rows_fetched;
        timings.server_postings_bytes_read += stats.postings_bytes_read;
        let transfer = enc_rs.size_bytes() as u64;
        timings.transfer_bytes += transfer;
        timings.network_seconds += self.network.transfer_seconds(transfer);
        if !trace.is_zero() {
            spans.push(Span::node(
                "RemoteSQL".to_string(),
                exec_elapsed,
                enc_rs.rows.len() as u64,
                remote.spans,
            ));
            spans.push(Span::leaf(
                "Wire",
                remote.wire.seconds,
                enc_rs.rows.len() as u64,
            ));
        }

        // 3. LocalDecrypt.
        let started = Stopwatch::start();
        let env = self.decrypt(&rp.outputs, &enc_rs)?;
        let decrypt_seconds = started.seconds();
        timings.decrypt_seconds += decrypt_seconds;
        if !trace.is_zero() {
            spans.push(Span::leaf(
                "LocalDecrypt",
                decrypt_seconds,
                env.rows.len() as u64,
            ));
        }

        // 4. Residual client-side operators.
        let started = Stopwatch::start();
        let result = self.finish_locally(rp, env, &sub_results)?;
        let residual_seconds = started.seconds();
        timings.client_seconds += residual_seconds;
        if !trace.is_zero() {
            spans.push(Span::leaf(
                "ClientResidual",
                residual_seconds,
                result.rows.len() as u64,
            ));
        }
        Ok((result, timings))
    }

    fn decrypt(
        &self,
        outputs: &[OutputColumn],
        enc_rs: &ResultSet,
    ) -> Result<Environment, CoreError> {
        let design = self.encryptor.design();
        let keys: Vec<Expr> = outputs.iter().map(|o| o.source.clone()).collect();
        let mut rows = Vec::with_capacity(enc_rs.rows.len());
        for enc_row in &enc_rs.rows {
            let mut out_row = Vec::with_capacity(outputs.len());
            for (i, out) in outputs.iter().enumerate() {
                let v = &enc_row[i];
                let plain = match &out.decrypt {
                    DecryptSpec::Plain => v.clone(),
                    DecryptSpec::Column {
                        table,
                        base,
                        scheme,
                        ..
                    } => {
                        let cd = design
                            .table(table)
                            .and_then(|t| t.find_base(base))
                            .ok_or_else(|| {
                                CoreError::new(format!("missing design for {table}.{base}"))
                            })?;
                        self.encryptor.decrypt_value(table, cd, *scheme, v)?
                    }
                    DecryptSpec::HomSum { table, base, .. } => {
                        let cd = design
                            .table(table)
                            .and_then(|t| t.find_base(base))
                            .ok_or_else(|| {
                                CoreError::new(format!("missing design for {table}.{base}"))
                            })?;
                        self.encryptor.decrypt_value(
                            table,
                            cd,
                            crate::schemes::EncScheme::Hom,
                            v,
                        )?
                    }
                    DecryptSpec::HomGroupSum { table, base, ty } => {
                        let td = design
                            .table(table)
                            .ok_or_else(|| CoreError::new(format!("missing design for {table}")))?;
                        let slot = td
                            .hom_slot_index(base)
                            .ok_or_else(|| CoreError::new(format!("{base} is not a HOM slot")))?;
                        self.encryptor.decrypt_hom_group_sum(v, slot, *ty)?
                    }
                    DecryptSpec::GroupValues {
                        table,
                        base,
                        agg,
                        distinct,
                        ..
                    } => {
                        let cd = design
                            .table(table)
                            .and_then(|t| t.find_base(base))
                            .ok_or_else(|| {
                                CoreError::new(format!("missing design for {table}.{base}"))
                            })?;
                        let list = match v {
                            Value::List(items) => items.clone(),
                            Value::Null => Vec::new(),
                            other => vec![other.clone()],
                        };
                        let mut plain_items = Vec::with_capacity(list.len());
                        for item in &list {
                            plain_items.push(self.encryptor.decrypt_value(
                                table,
                                cd,
                                crate::schemes::EncScheme::Det,
                                item,
                            )?);
                        }
                        fold_group(plain_items, *agg, *distinct)
                    }
                };
                out_row.push(plain);
            }
            rows.push(out_row);
        }
        Ok(Environment { keys, rows })
    }

    fn finish_locally(
        &self,
        rp: &RemotePlan,
        env: Environment,
        sub_results: &HashMap<Query, Vec<Vec<Value>>>,
    ) -> Result<ResultSet, CoreError> {
        // Build an engine row schema with synthetic names for every environment
        // key so we can reuse the engine's expression evaluator.
        let schema = RowSchema::new(
            (0..env.keys.len())
                .map(|i| (None, format!("__env{i}")))
                .collect(),
        );
        let substitute = |expr: &Expr| substitute_env(expr, &env.keys);
        let subquery_fn = move |q: &Query,
                                _outer: Option<(&RowSchema, &[Value])>|
              -> Result<Vec<Vec<Value>>, monomi_engine::EngineError> {
            sub_results
                .get(q)
                .cloned()
                .ok_or_else(|| monomi_engine::EngineError::new("subquery result not precomputed"))
        };

        let eval_row = |expr: &Expr, row: &[Value]| -> Result<Value, CoreError> {
            let substituted = substitute(expr);
            let ctx = monomi_engine::EvalContext {
                params: &[],
                aggregates: None,
                subquery: Some(&subquery_fn),
                outer: None,
            };
            monomi_engine::expr::eval(&substituted, &schema, row, &ctx)
                .map_err(|e| CoreError::new(e.to_string()))
        };

        // 1. Local filters.
        let mut rows = env.rows;
        for filter in &rp.local_filters {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if eval_row(filter, &row)?.as_bool().unwrap_or(false) {
                    kept.push(row);
                }
            }
            rows = kept;
        }

        // 2. Local grouping if the server did not group.
        let (final_keys, mut final_rows): (Vec<Expr>, Vec<Vec<Value>>) =
            if let Some(group_keys) = &rp.local_group_by {
                let mut agg_exprs: Vec<Expr> = Vec::new();
                let mut collect = |e: &Expr| {
                    e.walk(&mut |n| {
                        if matches!(n, Expr::Aggregate { .. }) && !agg_exprs.contains(n) {
                            agg_exprs.push(n.clone());
                        }
                    })
                };
                for p in &rp.projections {
                    collect(&p.expr);
                }
                if let Some(h) = &rp.local_having {
                    collect(h);
                }
                for o in &rp.order_by {
                    collect(&o.expr);
                }

                let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
                let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
                for (ri, row) in rows.iter().enumerate() {
                    let key: Vec<Value> = group_keys
                        .iter()
                        .map(|k| eval_row(k, row))
                        .collect::<Result<_, _>>()?;
                    let gi = *index.entry(key.clone()).or_insert_with(|| {
                        groups.push((key, Vec::new()));
                        groups.len() - 1
                    });
                    groups[gi].1.push(ri);
                }
                if groups.is_empty() && group_keys.is_empty() {
                    groups.push((Vec::new(), Vec::new()));
                }

                let mut keys: Vec<Expr> = group_keys.iter().map(normalize_key).collect();
                keys.extend(agg_exprs.iter().map(normalize_key));
                let mut out_rows = Vec::with_capacity(groups.len());
                for (key_vals, members) in &groups {
                    let mut row_out = key_vals.clone();
                    for agg in &agg_exprs {
                        row_out.push(compute_local_aggregate(agg, members, &rows, &eval_row)?);
                    }
                    out_rows.push(row_out);
                }
                (keys, out_rows)
            } else {
                (env.keys.clone(), rows)
            };

        // When aggregating on the client we must also handle queries with no
        // GROUP BY but local aggregates over ungrouped rows (handled above via
        // empty group_keys), so nothing more to do here.

        // 3. Local HAVING.
        let schema2 = RowSchema::new(
            (0..final_keys.len())
                .map(|i| (None, format!("__env{i}")))
                .collect(),
        );
        let eval_final = |expr: &Expr, row: &[Value]| -> Result<Value, CoreError> {
            let substituted = substitute_env(expr, &final_keys);
            let ctx = monomi_engine::EvalContext {
                params: &[],
                aggregates: None,
                subquery: Some(&subquery_fn),
                outer: None,
            };
            monomi_engine::expr::eval(&substituted, &schema2, row, &ctx)
                .map_err(|e| CoreError::new(e.to_string()))
        };
        if let Some(having) = &rp.local_having {
            let mut kept = Vec::with_capacity(final_rows.len());
            for row in final_rows {
                if eval_final(having, &row)?.as_bool().unwrap_or(false) {
                    kept.push(row);
                }
            }
            final_rows = kept;
        }

        // 4. Projection.
        // Each projected row carries its ORDER BY sort key alongside the values.
        type KeyedRows = Vec<(Vec<Value>, Vec<Value>)>;
        let (columns, mut projected): (Vec<String>, KeyedRows) = if rp.projections.is_empty() {
            // Table-fetch plan: output the environment columns directly.
            let columns = final_keys
                .iter()
                .map(|k| match k {
                    Expr::Column(c) => c.column.clone(),
                    other => other.to_string(),
                })
                .collect();
            (
                columns,
                final_rows.into_iter().map(|r| (r, Vec::new())).collect(),
            )
        } else {
            let columns = rp
                .projections
                .iter()
                .enumerate()
                .map(|(i, p)| p.output_name(i))
                .collect();
            let mut out = Vec::with_capacity(final_rows.len());
            for row in &final_rows {
                let mut proj = Vec::with_capacity(rp.projections.len());
                for p in &rp.projections {
                    proj.push(eval_final(&p.expr, row)?);
                }
                // Sort keys.
                let mut sort_keys = Vec::with_capacity(rp.order_by.len());
                for ob in &rp.order_by {
                    let key = resolve_order_key(ob, rp, &proj, row, &eval_final)?;
                    sort_keys.push(key);
                }
                out.push((proj, sort_keys));
            }
            (columns, out)
        };

        // 5. DISTINCT.
        if rp.distinct {
            let mut seen = std::collections::HashSet::new();
            projected.retain(|(row, _)| seen.insert(row.clone()));
        }

        // 6. LocalSort + LIMIT.
        if !rp.order_by.is_empty() {
            projected.sort_by(|(_, ka), (_, kb)| {
                for (i, ob) in rp.order_by.iter().enumerate() {
                    let ord = ka[i].compare(&kb[i]);
                    let ord = if ob.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let mut rows_out: Vec<Vec<Value>> = projected.into_iter().map(|(r, _)| r).collect();
        if let Some(limit) = rp.limit {
            rows_out.truncate(limit as usize);
        }

        Ok(ResultSet {
            columns,
            rows: rows_out,
        })
    }
}

fn resolve_order_key(
    ob: &OrderByItem,
    rp: &RemotePlan,
    projected: &[Value],
    row: &[Value],
    eval_final: &impl Fn(&Expr, &[Value]) -> Result<Value, CoreError>,
) -> Result<Value, CoreError> {
    if let Expr::Column(c) = &ob.expr {
        if c.table.is_none() {
            if let Some(pos) = rp.projections.iter().position(|p| {
                p.alias
                    .as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(&c.column))
            }) {
                return Ok(projected[pos].clone());
            }
        }
    }
    if let Expr::Literal(Literal::Number(n)) = &ob.expr {
        if let Ok(pos) = n.parse::<usize>() {
            if pos >= 1 && pos <= projected.len() {
                return Ok(projected[pos - 1].clone());
            }
        }
    }
    if let Some(pos) = rp.projections.iter().position(|p| p.expr == ob.expr) {
        return Ok(projected[pos].clone());
    }
    eval_final(&ob.expr, row)
}

/// Replaces every subtree of `expr` that structurally matches one of the
/// environment keys with a reference to the corresponding synthetic column.
fn substitute_env(expr: &Expr, keys: &[Expr]) -> Expr {
    let normalized = crate::rewrite::normalize_expr(expr);
    if let Some(idx) = keys.iter().position(|k| *k == normalized) {
        return Expr::col(format!("__env{idx}"));
    }
    match expr {
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(substitute_env(left, keys)),
            op: *op,
            right: Box::new(substitute_env(right, keys)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(substitute_env(expr, keys)),
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            // AVG over a fetched SUM: rewrite AVG(x) as SUM(x) / COUNT(*) when
            // both are available in the environment.
            if *func == AggFunc::Avg {
                if let Some(a) = arg {
                    let sum = Expr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(a.clone()),
                        distinct: *distinct,
                    };
                    let count = Expr::Aggregate {
                        func: AggFunc::Count,
                        arg: None,
                        distinct: false,
                    };
                    let sum_n = crate::rewrite::normalize_expr(&sum);
                    let count_n = crate::rewrite::normalize_expr(&count);
                    if keys.contains(&sum_n) && keys.contains(&count_n) {
                        return substitute_env(&sum, keys)
                            .binop(BinaryOp::Div, substitute_env(&count, keys));
                    }
                }
            }
            Expr::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(substitute_env(a, keys))),
                distinct: *distinct,
            }
        }
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| substitute_env(a, keys)).collect(),
        },
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(substitute_env(o, keys))),
            when_then: when_then
                .iter()
                .map(|(w, t)| (substitute_env(w, keys), substitute_env(t, keys)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(substitute_env(e, keys))),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(substitute_env(expr, keys)),
            pattern: Box::new(substitute_env(pattern, keys)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(substitute_env(expr, keys)),
            list: list.iter().map(|e| substitute_env(e, keys)).collect(),
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            subquery,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(substitute_env(expr, keys)),
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(substitute_env(expr, keys)),
            low: Box::new(substitute_env(low, keys)),
            high: Box::new(substitute_env(high, keys)),
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: Box::new(substitute_env(expr, keys)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(substitute_env(expr, keys)),
            negated: *negated,
        },
        other => other.clone(),
    }
}

fn normalize_key(e: &Expr) -> Expr {
    crate::rewrite::normalize_expr(e)
}

/// Computes one aggregate over the member rows of a local group.
fn compute_local_aggregate(
    agg: &Expr,
    members: &[usize],
    rows: &[Vec<Value>],
    eval_row: &impl Fn(&Expr, &[Value]) -> Result<Value, CoreError>,
) -> Result<Value, CoreError> {
    let (func, arg, distinct) = match agg {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => (*func, arg.clone(), *distinct),
        _ => return Err(CoreError::new("not an aggregate")),
    };
    let mut values: Vec<Value> = Vec::with_capacity(members.len());
    for &ri in members {
        match &arg {
            Some(a) => values.push(eval_row(a, &rows[ri])?),
            None => values.push(Value::Int(1)),
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    Ok(fold_group(values, Some(func), false))
}

/// Folds a list of plaintext values with an aggregate function (or keeps the
/// list when `agg` is `None`).
fn fold_group(values: Vec<Value>, agg: Option<AggFunc>, distinct: bool) -> Value {
    let mut values = values;
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.clone()));
    }
    let agg = match agg {
        Some(a) => a,
        None => return Value::List(values),
    };
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match agg {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Min => non_null
            .iter()
            .min()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max()
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Sum | AggFunc::Avg => {
            if non_null.is_empty() {
                return Value::Null;
            }
            let any_float = non_null.iter().any(|v| matches!(v, Value::Float(_)));
            if any_float {
                let total: f64 = non_null.iter().filter_map(|v| v.as_float()).sum();
                if agg == AggFunc::Avg {
                    Value::Float(total / non_null.len() as f64)
                } else {
                    Value::Float(total)
                }
            } else {
                let total: i64 = non_null.iter().filter_map(|v| v.as_int()).sum();
                if agg == AggFunc::Avg {
                    Value::Float(total as f64 / non_null.len() as f64)
                } else {
                    Value::Int(total)
                }
            }
        }
    }
}

/// One plan's output schema: column name, and its declared type where one can
/// be derived statically.
type OutputColumnTypes = Vec<(String, Option<ColumnType>)>;

/// The declared output schema of a split plan: one `(name, type)` pair per
/// result column, with `None` where the type cannot be derived statically.
///
/// This is what `execute_client` materializes child results with, so that an
/// all-NULL intermediate column keeps its declared type instead of being
/// sniffed (and silently defaulting to `Int`). Types flow from the plan:
/// [`DecryptSpec`] carries the plaintext type of every decrypted output, and
/// projection/grouping expressions are typed structurally on top of that
/// environment.
fn output_column_types(plan: &SplitPlan) -> OutputColumnTypes {
    match plan {
        SplitPlan::Remote(rp) => {
            // Environment the residual operators see: outputs keyed by their
            // plaintext source expression, typed by their decrypt spec.
            let env: Vec<(Expr, Option<ColumnType>)> = rp
                .outputs
                .iter()
                .map(|o| (normalize_key(&o.source), decrypt_spec_type(o)))
                .collect();
            let resolve_env = |e: &Expr| -> Option<ColumnType> {
                let n = normalize_key(e);
                env.iter().find(|(k, _)| *k == n).and_then(|(_, t)| *t)
            };

            // Mirror `finish_locally`: local grouping replaces the
            // environment keys with group keys + collected aggregates.
            let final_keys: Vec<(Expr, Option<ColumnType>)> =
                if let Some(group_keys) = &rp.local_group_by {
                    let mut agg_exprs: Vec<Expr> = Vec::new();
                    let mut collect = |e: &Expr| {
                        e.walk(&mut |n| {
                            if matches!(n, Expr::Aggregate { .. }) && !agg_exprs.contains(n) {
                                agg_exprs.push(n.clone());
                            }
                        })
                    };
                    for p in &rp.projections {
                        collect(&p.expr);
                    }
                    if let Some(h) = &rp.local_having {
                        collect(h);
                    }
                    for o in &rp.order_by {
                        collect(&o.expr);
                    }
                    group_keys
                        .iter()
                        .chain(agg_exprs.iter())
                        .map(|k| (normalize_key(k), infer_expr_type(k, &resolve_env)))
                        .collect()
                } else {
                    env.clone()
                };
            let resolve_final = |e: &Expr| -> Option<ColumnType> {
                let n = normalize_key(e);
                final_keys
                    .iter()
                    .find(|(k, _)| *k == n)
                    .and_then(|(_, t)| *t)
            };

            if rp.projections.is_empty() {
                // Table-fetch plan: the environment columns come out directly.
                final_keys
                    .iter()
                    .map(|(k, t)| {
                        let name = match k {
                            Expr::Column(c) => c.column.clone(),
                            other => other.to_string(),
                        };
                        (name, *t)
                    })
                    .collect()
            } else {
                rp.projections
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.output_name(i), infer_expr_type(&p.expr, &resolve_final)))
                    .collect()
            }
        }
        SplitPlan::Client { query, children } => {
            // The residual query runs over local tables materialized from the
            // children; resolve column references against their schemas.
            let bindings: Vec<(String, OutputColumnTypes)> = children
                .iter()
                .map(|(b, c)| (b.clone(), output_column_types(c)))
                .collect();
            let resolve = |e: &Expr| -> Option<ColumnType> {
                let Expr::Column(c) = e else { return None };
                let mut found: Option<ColumnType> = None;
                for (binding, cols) in &bindings {
                    if c.table
                        .as_deref()
                        .is_some_and(|t| !t.eq_ignore_ascii_case(binding))
                    {
                        continue;
                    }
                    if let Some((_, t)) = cols
                        .iter()
                        .find(|(name, _)| name.eq_ignore_ascii_case(&c.column))
                    {
                        if found.is_some() {
                            // Ambiguous across bindings: give up.
                            return None;
                        }
                        found = *t;
                    }
                }
                found
            };
            query
                .projections
                .iter()
                .enumerate()
                .map(|(i, p)| (p.output_name(i), infer_expr_type(&p.expr, &resolve)))
                .collect()
        }
    }
}

/// The plaintext type a decrypted output column carries, per its spec.
fn decrypt_spec_type(out: &OutputColumn) -> Option<ColumnType> {
    match &out.decrypt {
        // Plain covers server-computable plaintext (e.g. COUNT(*)); its type
        // follows from the source expression's structure, resolved by the
        // caller's structural inference.
        DecryptSpec::Plain => None,
        DecryptSpec::Column { ty, .. } => Some(*ty),
        DecryptSpec::HomSum { ty, .. } | DecryptSpec::HomGroupSum { ty, .. } => Some(*ty),
        DecryptSpec::GroupValues { ty, agg, .. } => match agg {
            // `fold_group` keeps the list; it materializes as a Bytes column.
            None => Some(ColumnType::Bytes),
            Some(AggFunc::Count) => Some(ColumnType::Int),
            Some(AggFunc::Avg) => Some(ColumnType::Float),
            Some(AggFunc::Sum) => match ty {
                ColumnType::Float => Some(ColumnType::Float),
                ColumnType::Int => Some(ColumnType::Int),
                _ => None,
            },
            Some(AggFunc::Min) | Some(AggFunc::Max) => Some(*ty),
        },
    }
}

/// Structural type inference for residual expressions, mirroring the engine's
/// evaluation semantics (`Int/Int` division yields `Float`, AVG is always
/// `Float`, …). `resolve` types whole subtrees the environment already
/// carries; `None` means "unknown", in which case the caller falls back to
/// sniffing row values.
fn infer_expr_type(
    expr: &Expr,
    resolve: &dyn Fn(&Expr) -> Option<ColumnType>,
) -> Option<ColumnType> {
    if let Some(t) = resolve(expr) {
        return Some(t);
    }
    match expr {
        Expr::Literal(Literal::Number(n)) => {
            if n.contains(['.', 'e', 'E']) {
                Some(ColumnType::Float)
            } else {
                Some(ColumnType::Int)
            }
        }
        Expr::Literal(Literal::String(_)) => Some(ColumnType::Str),
        Expr::Literal(Literal::Date(_)) => Some(ColumnType::Date),
        Expr::UnaryOp { expr, .. } => infer_expr_type(expr, resolve),
        Expr::BinaryOp { left, op, right } => match op {
            // The engine evaluates division in floating point even for
            // integer operands (TPC-H ratios).
            BinaryOp::Div => Some(ColumnType::Float),
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Mod => {
                match (
                    infer_expr_type(left, resolve),
                    infer_expr_type(right, resolve),
                ) {
                    (Some(ColumnType::Float), Some(_)) | (Some(_), Some(ColumnType::Float)) => {
                        Some(ColumnType::Float)
                    }
                    (Some(ColumnType::Int), Some(ColumnType::Int)) => Some(ColumnType::Int),
                    _ => None,
                }
            }
            _ => None,
        },
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => Some(ColumnType::Int),
            AggFunc::Avg => Some(ColumnType::Float),
            AggFunc::Sum => match arg.as_deref().and_then(|a| infer_expr_type(a, resolve)) {
                Some(ColumnType::Float) => Some(ColumnType::Float),
                Some(ColumnType::Int) => Some(ColumnType::Int),
                _ => None,
            },
            AggFunc::Min | AggFunc::Max => arg.as_deref().and_then(|a| infer_expr_type(a, resolve)),
        },
        Expr::Case {
            when_then,
            else_expr,
            ..
        } => when_then
            .iter()
            .map(|(_, t)| t)
            .chain(else_expr.iter().map(|e| e.as_ref()))
            .find_map(|e| infer_expr_type(e, resolve)),
        Expr::Extract { .. } => Some(ColumnType::Int),
        _ => None,
    }
}

/// Infers an engine column type from a value (for materializing client-side
/// relations).
fn value_column_type(v: &Value) -> Option<ColumnType> {
    match v {
        Value::Null => None,
        Value::Int(_) => Some(ColumnType::Int),
        Value::Float(_) => Some(ColumnType::Float),
        Value::Str(_) => Some(ColumnType::Str),
        Value::Date(_) => Some(ColumnType::Date),
        Value::Bytes(_) | Value::List(_) => Some(ColumnType::Bytes),
    }
}
