//! Physical designs: which encryptions of which expressions the server stores.
//!
//! A [`PhysicalDesign`] is the output of MONOMI's designer (§6): for every
//! table, the set of source expressions (plain columns and per-row precomputed
//! expressions, §5.1) and the encryption schemes materialized for each. From a
//! design we derive the encrypted schema, encrypt and load data, and account
//! for server-side space (§8.4 / Table 2).

use crate::schemes::EncScheme;
use crate::CoreError;
use monomi_crypto::{MasterKey, PaillierKey};
use monomi_engine::{ColumnDef, ColumnType, Database, EvalContext, RowSchema, TableSchema, Value};
use monomi_math::BigUint;
use monomi_sql::ast::{ColumnRef, Expr};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Bias added to date values before integer encryption so they are
/// non-negative.
const DATE_BIAS: i64 = 1 << 20;

/// Bit width of a packed homomorphic value slot (value bits).
pub const HOM_VALUE_BITS: u32 = 36;
/// Zero padding per slot so sums of up to 2^28 rows cannot overflow into the
/// next slot (the paper assumes ~2^27 rows).
pub const HOM_OVERFLOW_BITS: u32 = 28;

/// Design of one source expression within a table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDesign {
    /// Base name used to derive encrypted column names (`<base>_<scheme>`).
    pub base_name: String,
    /// The plaintext expression this encrypted column stores. A bare column
    /// reference for ordinary columns; any row-local expression for per-row
    /// precomputation (§5.1).
    pub source: Expr,
    /// Logical type of the source expression.
    pub ty: ColumnType,
    /// Encryption schemes materialized for this source.
    pub schemes: std::collections::BTreeSet<EncScheme>,
    /// Opt this source's encrypted columns out of secondary-index builds.
    ///
    /// A DET index materializes the column's ciphertext equality classes and
    /// an OPE index its total order as sorted on-disk structures. Both are
    /// facts the ciphertexts already reveal to the server scheme-wise, but an
    /// index stores them *pre-extracted*; a cautious deployment can decline
    /// that (and the index's disk footprint) per column, at the cost of
    /// falling back to zone-map scans. Defaults to indexed.
    #[serde(default)]
    pub index_opt_out: bool,
}

impl ColumnDesign {
    /// True if this is a precomputed expression rather than a base column.
    pub fn is_precomputed(&self) -> bool {
        !matches!(self.source, Expr::Column(_))
    }

    /// The encrypted column name for a scheme.
    pub fn enc_name(&self, scheme: EncScheme) -> String {
        format!("{}_{}", self.base_name, scheme.suffix())
    }

    /// The weakest (most-revealing) scheme materialized, for the security
    /// summary of Table 3.
    pub fn weakest_scheme(&self) -> Option<EncScheme> {
        self.schemes
            .iter()
            .copied()
            .max_by_key(|s| s.strength_rank())
    }
}

/// Design of one table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDesign {
    pub table: String,
    pub columns: Vec<ColumnDesign>,
    /// Grouped homomorphic addition (§5.3): pack all HOM sources of this table
    /// into a single per-row Paillier ciphertext column.
    pub col_packing: bool,
    /// Multi-row packing (§5.2, "+Columnar agg"): pack several rows' HOM slots
    /// into one ciphertext. Reproduced in the space accounting and the I/O
    /// component of the cost model; see DESIGN.md for the substitution note.
    pub multirow_packing: bool,
}

impl TableDesign {
    /// Creates an empty design for a table.
    pub fn new(table: impl Into<String>) -> Self {
        TableDesign {
            table: table.into(),
            columns: Vec::new(),
            col_packing: false,
            multirow_packing: false,
        }
    }

    /// Finds the column design for a source expression.
    pub fn find_source(&self, source: &Expr) -> Option<&ColumnDesign> {
        self.columns.iter().find(|c| &c.source == source)
    }

    /// Finds the column design by base name.
    pub fn find_base(&self, base: &str) -> Option<&ColumnDesign> {
        self.columns.iter().find(|c| c.base_name == base)
    }

    /// Adds (or extends) a ⟨source, scheme⟩ pair; returns the base name.
    pub fn add(&mut self, source: Expr, ty: ColumnType, scheme: EncScheme) -> String {
        if let Some(c) = self.columns.iter_mut().find(|c| c.source == source) {
            c.schemes.insert(scheme);
            return c.base_name.clone();
        }
        let base_name = match &source {
            Expr::Column(c) => c.column.to_lowercase(),
            _ => format!(
                "precomp_{}",
                self.columns.iter().filter(|c| c.is_precomputed()).count()
            ),
        };
        let mut schemes = std::collections::BTreeSet::new();
        schemes.insert(scheme);
        self.columns.push(ColumnDesign {
            base_name: base_name.clone(),
            source,
            ty,
            schemes,
            index_opt_out: false,
        });
        base_name
    }

    /// Register-time index opt-out for one source (by base name); see
    /// [`ColumnDesign::index_opt_out`]. Returns false when the base is
    /// unknown.
    pub fn set_index_opt_out(&mut self, base: &str, opt_out: bool) -> bool {
        match self.columns.iter_mut().find(|c| c.base_name == base) {
            Some(cd) => {
                cd.index_opt_out = opt_out;
                true
            }
            None => false,
        }
    }

    /// Encrypted column names this table's design opts out of index builds:
    /// the DET and OPE materializations of every opted-out source (the other
    /// schemes never build indexes, so listing them would be noise).
    pub fn unindexed_columns(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .columns
            .iter()
            .filter(|cd| cd.index_opt_out)
            .flat_map(|cd| {
                cd.schemes
                    .iter()
                    .filter(|s| matches!(s, EncScheme::Det | EncScheme::Ope))
                    .map(|s| cd.enc_name(*s))
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Base names of HOM sources in slot order (for grouped packing).
    pub fn hom_slots(&self) -> Vec<String> {
        self.columns
            .iter()
            .filter(|c| c.schemes.contains(&EncScheme::Hom))
            .map(|c| c.base_name.clone())
            .collect()
    }

    /// Slot index of a HOM source when grouped packing is enabled.
    pub fn hom_slot_index(&self, base: &str) -> Option<usize> {
        self.hom_slots().iter().position(|b| b == base)
    }

    /// Name of the packed HOM group column.
    pub fn hom_group_column(&self) -> String {
        format!("{}_homgrp_hom", self.table)
    }
}

/// A full physical design.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhysicalDesign {
    pub tables: BTreeMap<String, TableDesign>,
    /// Paillier modulus size in bits used for this design.
    pub paillier_bits: usize,
}

impl PhysicalDesign {
    /// Creates an empty design with the given Paillier key size.
    pub fn new(paillier_bits: usize) -> Self {
        PhysicalDesign {
            tables: BTreeMap::new(),
            paillier_bits,
        }
    }

    /// The design for a table, creating it if needed.
    pub fn table_mut(&mut self, table: &str) -> &mut TableDesign {
        self.tables
            .entry(table.to_lowercase())
            .or_insert_with(|| TableDesign::new(table.to_lowercase()))
    }

    /// The design for a table.
    pub fn table(&self, table: &str) -> Option<&TableDesign> {
        self.tables.get(&table.to_lowercase())
    }

    /// Ensures every column of every table in the plaintext catalog is stored
    /// at least once (the paper: "MONOMI conservatively encrypts all data").
    /// Key-like and categorical integer/string/date columns default to DET;
    /// everything else defaults to RND.
    pub fn add_baseline_coverage(&mut self, plain: &Database) {
        for schema in plain.catalog().tables() {
            let tname = schema.name.to_lowercase();
            let schema = schema.clone();
            let td = self.table_mut(&tname);
            for col in &schema.columns {
                let source = Expr::Column(ColumnRef::new(col.name.to_lowercase()));
                let default_scheme = match col.ty {
                    ColumnType::Int | ColumnType::Date => EncScheme::Det,
                    ColumnType::Str if col.name.to_lowercase().contains("comment") => {
                        EncScheme::Rnd
                    }
                    ColumnType::Str => EncScheme::Det,
                    _ => EncScheme::Rnd,
                };
                match td.columns.iter_mut().find(|c| c.source == source) {
                    // Every base column must carry at least one scheme the
                    // client can decrypt, otherwise its values could never be
                    // fetched (OPE and SEARCH are one-way on the client side).
                    Some(existing) => {
                        if !existing.schemes.iter().any(|s| s.decryptable()) {
                            existing.schemes.insert(default_scheme);
                        }
                    }
                    None => {
                        td.add(source, col.ty, default_scheme);
                    }
                }
            }
        }
    }

    /// Total number of ⟨source, scheme⟩ pairs in the design.
    pub fn total_targets(&self) -> usize {
        self.tables
            .values()
            .map(|t| t.columns.iter().map(|c| c.schemes.len()).sum::<usize>())
            .sum()
    }

    /// Derives the encrypted server schema for this design.
    pub fn encrypted_schema(&self, paillier: &PaillierKey) -> Vec<TableSchema> {
        let mut out = Vec::new();
        for td in self.tables.values() {
            let mut cols = Vec::new();
            let mut has_hom = false;
            for cd in &td.columns {
                for scheme in &cd.schemes {
                    if *scheme == EncScheme::Hom && td.col_packing {
                        has_hom = true;
                        continue;
                    }
                    let ty = match (scheme, cd.ty) {
                        (
                            EncScheme::Det,
                            ColumnType::Int | ColumnType::Date | ColumnType::Float,
                        ) => ColumnType::Int,
                        (EncScheme::Det, _) => ColumnType::Bytes,
                        _ => ColumnType::Bytes,
                    };
                    cols.push(ColumnDef::new(cd.enc_name(*scheme), ty));
                }
            }
            if has_hom && !td.hom_slots().is_empty() {
                cols.push(ColumnDef::new(td.hom_group_column(), ColumnType::Bytes));
            }
            let _ = paillier;
            out.push(TableSchema::new(td.table.clone(), cols));
        }
        out
    }

    /// Analytic server space accounting in bytes, given the plaintext
    /// database the design will be applied to. Multi-row packing divides the
    /// HOM column footprint by the number of rows per ciphertext.
    pub fn storage_bytes(&self, plain: &Database, paillier: &PaillierKey) -> usize {
        let mut total = 0usize;
        for td in self.tables.values() {
            let table = match plain.table(&td.table) {
                Some(t) => t,
                None => continue,
            };
            let rows = table.row_count();
            let hom_ct_bytes = paillier.ciphertext_bytes();
            let hom_slots = td.hom_slots().len();
            for cd in &td.columns {
                let plain_width = match cd.ty {
                    ColumnType::Int => 8,
                    ColumnType::Float => 8,
                    ColumnType::Date => 4,
                    ColumnType::Str | ColumnType::Bytes => {
                        // Use the real average width of the underlying column if
                        // it is a base column; 24 bytes otherwise.
                        match &cd.source {
                            Expr::Column(c) => table
                                .schema()
                                .column_index(&c.column)
                                .map(|i| (table.column_size_bytes(i) / rows.max(1)).max(1))
                                .unwrap_or(24),
                            _ => 24,
                        }
                    }
                };
                for scheme in &cd.schemes {
                    let width = match scheme {
                        EncScheme::Det => match cd.ty {
                            ColumnType::Int | ColumnType::Date => 8,
                            _ => ((plain_width / 16) + 1) * 16,
                        },
                        EncScheme::Ope => 16,
                        EncScheme::Rnd => ((plain_width / 16) + 1) * 16 + 16,
                        EncScheme::Search => {
                            // roughly one 16-byte token per 6 characters of text
                            (plain_width / 6 + 1) * 16
                        }
                        EncScheme::Hom => {
                            if td.col_packing {
                                // Accounted once per table below.
                                0
                            } else {
                                hom_ct_bytes
                            }
                        }
                    };
                    total += width * rows;
                }
            }
            if td.col_packing && hom_slots > 0 {
                let slot_bits = (HOM_VALUE_BITS + HOM_OVERFLOW_BITS) as usize;
                let rows_per_ct = if td.multirow_packing {
                    (paillier.plaintext_bits() / (slot_bits * hom_slots)).max(1)
                } else {
                    1
                };
                total += (rows / rows_per_ct + 1) * hom_ct_bytes;
            }
        }
        total
    }

    /// Table 3 summary: per table, the number of columns whose weakest
    /// materialized scheme falls in each class. Returns
    /// `(strong, det, ope)` counts where `strong` covers RND/HOM/SEARCH.
    /// Precomputed columns are counted separately in the second tuple element.
    pub fn security_summary(&self) -> BTreeMap<String, SecuritySummary> {
        let mut out = BTreeMap::new();
        for td in self.tables.values() {
            let mut summary = SecuritySummary::default();
            for cd in &td.columns {
                let weakest = match cd.weakest_scheme() {
                    Some(w) => w,
                    None => continue,
                };
                let bucket = match weakest {
                    EncScheme::Rnd | EncScheme::Hom | EncScheme::Search => 0,
                    EncScheme::Det => 1,
                    EncScheme::Ope => 2,
                };
                if cd.is_precomputed() {
                    summary.precomputed[bucket] += 1;
                } else {
                    summary.base[bucket] += 1;
                }
            }
            out.insert(td.table.clone(), summary);
        }
        out
    }

    /// Per-table list of encrypted column names opted out of secondary-index
    /// builds — the shape [`create_table_with`](Database::create_table_with)
    /// and the wire protocol's `CreateTable` expect.
    pub fn unindexed_by_table(&self) -> BTreeMap<String, Vec<String>> {
        self.tables
            .values()
            .map(|td| (td.table.clone(), td.unindexed_columns()))
            .filter(|(_, cols)| !cols.is_empty())
            .collect()
    }

    /// The designer's storage/leakage surface of the encrypted access paths:
    /// per table, every `(encrypted column, scheme)` whose DET equality
    /// classes or OPE ordering *will* be pre-extracted into on-disk index
    /// files — i.e. indexable and not opted out. The ciphertexts already
    /// reveal these facts scheme-wise; this names where they additionally
    /// sit materialized at rest, so a deployment can review and opt out.
    pub fn index_exposure(&self) -> BTreeMap<String, Vec<(String, EncScheme)>> {
        let mut out = BTreeMap::new();
        for td in self.tables.values() {
            let mut cols: Vec<(String, EncScheme)> = td
                .columns
                .iter()
                .filter(|cd| !cd.index_opt_out)
                .flat_map(|cd| {
                    cd.schemes
                        .iter()
                        .filter(|s| matches!(s, EncScheme::Det | EncScheme::Ope))
                        .map(|s| (cd.enc_name(*s), *s))
                })
                .collect();
            if cols.is_empty() {
                continue;
            }
            cols.sort();
            out.insert(td.table.clone(), cols);
        }
        out
    }
}

/// Per-table count of columns at each weakest-scheme level (Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SecuritySummary {
    /// Base columns: `[strong (RND/HOM/SEARCH), DET, OPE]`.
    pub base: [usize; 3],
    /// Precomputed expression columns, same buckets.
    pub precomputed: [usize; 3],
}

/// Holds the keys and performs all value-level encryption and decryption for a
/// design. Lives only on the trusted client.
pub struct Encryptor {
    master: MasterKey,
    paillier: PaillierKey,
    design: PhysicalDesign,
}

impl Encryptor {
    /// Creates an encryptor with a deterministic RNG seed (reproducible
    /// experiments) for the given design.
    pub fn new(master: MasterKey, design: PhysicalDesign, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let paillier = PaillierKey::generate(&mut rng, design.paillier_bits.max(128));
        Encryptor {
            master,
            paillier,
            design,
        }
    }

    /// Creates an encryptor reusing existing keys with a different design.
    /// The planner uses this to evaluate candidate designs without paying for
    /// Paillier key generation per candidate.
    pub fn with_keys(master: MasterKey, paillier: PaillierKey, design: PhysicalDesign) -> Self {
        Encryptor {
            master,
            paillier,
            design,
        }
    }

    /// The Paillier key (the public part of which is shared with the server).
    pub fn paillier(&self) -> &PaillierKey {
        &self.paillier
    }

    /// The master key (never leaves the trusted client).
    pub fn master_key(&self) -> &MasterKey {
        &self.master
    }

    /// The key-derivation label used for DET encryption of a column.
    ///
    /// Foreign-key / primary-key columns (TPC-H naming convention: a one- or
    /// two-letter table prefix followed by a name ending in `key`) share a
    /// label so equi-joins over DET ciphertexts compare correctly — the
    /// adjustable-join simplification of CryptDB/MONOMI. All other columns use
    /// a per-table, per-column label.
    pub fn det_label(table: &str, base: &str) -> String {
        if let Some(idx) = base.find('_') {
            let suffix = &base[idx + 1..];
            if suffix.ends_with("key") && idx <= 2 {
                return format!("joinkey.{suffix}");
            }
        }
        format!("{table}.{base}")
    }

    /// The physical design in effect.
    pub fn design(&self) -> &PhysicalDesign {
        &self.design
    }

    fn plain_to_u64(v: &Value, ty: ColumnType, order_preserving: bool) -> Result<u64, CoreError> {
        match (v, ty) {
            (Value::Int(i), _) => {
                if order_preserving {
                    Ok(monomi_crypto::i64_to_ordered_u64(*i))
                } else {
                    Ok(*i as u64)
                }
            }
            (Value::Date(d), _) => {
                let biased = *d as i64 + DATE_BIAS;
                if order_preserving {
                    Ok(monomi_crypto::i64_to_ordered_u64(biased))
                } else {
                    Ok(biased as u64)
                }
            }
            (Value::Float(f), _) => {
                // Scale floats to fixed-point before integer encryption.
                let scaled = (*f * 100.0).round() as i64;
                if order_preserving {
                    Ok(monomi_crypto::i64_to_ordered_u64(scaled))
                } else {
                    Ok(scaled as u64)
                }
            }
            (other, ty) => Err(CoreError::new(format!(
                "cannot encode {other:?} of type {ty:?} as an integer"
            ))),
        }
    }

    /// Encrypts one plaintext value under a scheme for a column design.
    pub fn encrypt_value(
        &self,
        table: &str,
        cd: &ColumnDesign,
        scheme: EncScheme,
        v: &Value,
        rng: &mut StdRng,
    ) -> Result<Value, CoreError> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        match scheme {
            EncScheme::Det => match cd.ty {
                ColumnType::Int | ColumnType::Date | ColumnType::Float => {
                    let u = Self::plain_to_u64(v, cd.ty, false)?;
                    let fpe =
                        self.master
                            .det_int("shared", &Self::det_label(table, &cd.base_name), 64);
                    Ok(Value::Int(fpe.encrypt(u) as i64))
                }
                _ => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| CoreError::new("DET of non-string value"))?;
                    let det = self
                        .master
                        .det_bytes("shared", &Self::det_label(table, &cd.base_name));
                    Ok(Value::Bytes(det.encrypt(s.as_bytes())))
                }
            },
            EncScheme::Ope => {
                let u = Self::plain_to_u64(v, cd.ty, true)?;
                let ope = self.master.ope(table, &cd.base_name);
                Ok(Value::Bytes(ope.encrypt(u).to_be_bytes().to_vec()))
            }
            EncScheme::Rnd => {
                let payload = encode_plain(v);
                let rnd = self.master.rnd(table, &cd.base_name);
                Ok(Value::Bytes(rnd.encrypt(rng, &payload)))
            }
            EncScheme::Search => {
                let s = v
                    .as_str()
                    .ok_or_else(|| CoreError::new("SEARCH of non-string value"))?;
                let search = self.master.search(table, &cd.base_name);
                Ok(Value::Bytes(search.encrypt(s).to_bytes()))
            }
            EncScheme::Hom => {
                let u = Self::plain_to_u64(v, cd.ty, false)?;
                let m = BigUint::from_u64(u);
                Ok(Value::Bytes(
                    self.paillier
                        .encrypt(rng, &m)
                        .to_bytes_be_padded(self.paillier.ciphertext_bytes()),
                ))
            }
        }
    }

    /// Encrypts a constant for comparison against an encrypted column (used by
    /// the query rewriter for predicates like `col = 'x'` or `col > 10`).
    pub fn encrypt_constant(
        &self,
        table: &str,
        cd: &ColumnDesign,
        scheme: EncScheme,
        v: &Value,
    ) -> Result<Value, CoreError> {
        let mut rng = StdRng::seed_from_u64(0);
        self.encrypt_value(table, cd, scheme, v, &mut rng)
    }

    /// Builds the packed HOM group value for one row of a table (grouped
    /// homomorphic addition, §5.3).
    pub fn encrypt_hom_group(
        &self,
        td: &TableDesign,
        slot_values: &[u64],
        rng: &mut StdRng,
    ) -> Value {
        let slot_bits = (HOM_VALUE_BITS + HOM_OVERFLOW_BITS) as usize;
        let mut plaintext = BigUint::zero();
        for (i, &v) in slot_values.iter().enumerate() {
            plaintext = plaintext.add(&BigUint::from_u64(v).shl(i * slot_bits));
        }
        let _ = td;
        Value::Bytes(
            self.paillier
                .encrypt(rng, &plaintext)
                .to_bytes_be_padded(self.paillier.ciphertext_bytes()),
        )
    }

    /// Decrypts a value previously produced by [`encrypt_value`](Self::encrypt_value).
    pub fn decrypt_value(
        &self,
        table: &str,
        cd: &ColumnDesign,
        scheme: EncScheme,
        v: &Value,
    ) -> Result<Value, CoreError> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        match scheme {
            EncScheme::Det => match cd.ty {
                ColumnType::Int | ColumnType::Date | ColumnType::Float => {
                    let ct = v
                        .as_int()
                        .ok_or_else(|| CoreError::new("DET int ciphertext must be an integer"))?;
                    let fpe =
                        self.master
                            .det_int("shared", &Self::det_label(table, &cd.base_name), 64);
                    let plain = fpe.decrypt(ct as u64);
                    Ok(decode_int(plain, cd.ty))
                }
                _ => {
                    let bytes = v
                        .as_bytes()
                        .ok_or_else(|| CoreError::new("DET string ciphertext must be bytes"))?;
                    let det = self
                        .master
                        .det_bytes("shared", &Self::det_label(table, &cd.base_name));
                    let plain = det.decrypt(bytes);
                    Ok(Value::Str(String::from_utf8_lossy(&plain).into_owned()))
                }
            },
            EncScheme::Rnd => {
                let bytes = v
                    .as_bytes()
                    .ok_or_else(|| CoreError::new("RND ciphertext must be bytes"))?;
                let rnd = self.master.rnd(table, &cd.base_name);
                Ok(decode_plain(&rnd.decrypt(bytes)))
            }
            EncScheme::Hom => {
                let bytes = v
                    .as_bytes()
                    .ok_or_else(|| CoreError::new("HOM ciphertext must be bytes"))?;
                let m = self.paillier.decrypt(&BigUint::from_bytes_be(bytes));
                let u = m
                    .to_u128()
                    .ok_or_else(|| CoreError::new("decrypted HOM value exceeds 128 bits"))?;
                Ok(decode_hom_sum(u as u64, cd.ty))
            }
            EncScheme::Ope | EncScheme::Search => Err(CoreError::new(format!(
                "{scheme} ciphertexts are not client-decryptable"
            ))),
        }
    }

    /// Decrypts a `paillier_sum` aggregate over a packed HOM group column and
    /// extracts the sum of the slot at `slot_index`.
    pub fn decrypt_hom_group_sum(
        &self,
        v: &Value,
        slot_index: usize,
        ty: ColumnType,
    ) -> Result<Value, CoreError> {
        if v.is_null() {
            return Ok(Value::Null);
        }
        let bytes = v
            .as_bytes()
            .ok_or_else(|| CoreError::new("HOM ciphertext must be bytes"))?;
        let m = self.paillier.decrypt(&BigUint::from_bytes_be(bytes));
        let slot_bits = (HOM_VALUE_BITS + HOM_OVERFLOW_BITS) as usize;
        let slot = m.shr(slot_index * slot_bits).low_bits(slot_bits);
        let u = slot
            .to_u128()
            .ok_or_else(|| CoreError::new("slot exceeds 128 bits"))? as u64;
        Ok(decode_hom_sum(u, ty))
    }

    /// Encrypts an entire plaintext database according to the design,
    /// producing the encrypted server database (with the Paillier public
    /// modulus registered so `paillier_sum` works).
    pub fn encrypt_database(&self, plain: &Database, seed: u64) -> Result<Database, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut enc_db = Database::new();
        for schema in self.design.encrypted_schema(&self.paillier) {
            let unindexed = self
                .design
                .table(&schema.name)
                .map(TableDesign::unindexed_columns)
                .unwrap_or_default();
            enc_db.create_table_with(schema, unindexed);
        }
        enc_db.register_paillier_modulus(self.paillier.n_squared().clone());

        for td in self.design.tables.values() {
            let table = match plain.table(&td.table) {
                Some(t) => t,
                None => continue,
            };
            let plain_schema = RowSchema::new(
                table
                    .schema()
                    .columns
                    .iter()
                    .map(|c| (Some(td.table.clone()), c.name.clone()))
                    .collect(),
            );
            let enc_schema = enc_db
                .table(&td.table)
                .expect("encrypted table just created")
                .schema()
                .clone();
            let hom_slots = td.hom_slots();
            let mut enc_rows: Vec<Vec<Value>> = Vec::with_capacity(table.row_count());
            for ridx in 0..table.row_count() {
                let row = table.row(ridx);
                let ctx = EvalContext::with_params(&[]);
                let mut enc_row: Vec<Value> = Vec::with_capacity(enc_schema.columns.len());
                let mut hom_slot_values = vec![0u64; hom_slots.len()];
                // Evaluate each source expression once.
                let mut source_values: BTreeMap<String, Value> = BTreeMap::new();
                for cd in &td.columns {
                    let v = monomi_engine::expr::eval(&cd.source, &plain_schema, &row, &ctx)
                        .map_err(|e| CoreError::new(e.to_string()))?;
                    source_values.insert(cd.base_name.clone(), v);
                }
                for enc_col in &enc_schema.columns {
                    if td.col_packing && enc_col.name == td.hom_group_column() {
                        for (i, base) in hom_slots.iter().enumerate() {
                            let cd = td.find_base(base).expect("hom slot must exist");
                            let v = &source_values[base];
                            hom_slot_values[i] = if v.is_null() {
                                0
                            } else {
                                Self::plain_to_u64(v, cd.ty, false)?
                            };
                        }
                        enc_row.push(self.encrypt_hom_group(td, &hom_slot_values, &mut rng));
                        continue;
                    }
                    // Find the (base, scheme) this encrypted column encodes.
                    let (base, scheme) = parse_enc_name(&enc_col.name).ok_or_else(|| {
                        CoreError::new(format!("bad enc column {}", enc_col.name))
                    })?;
                    let cd = td
                        .find_base(&base)
                        .ok_or_else(|| CoreError::new(format!("no design for {base}")))?;
                    let v = &source_values[&base];
                    enc_row.push(self.encrypt_value(&td.table, cd, scheme, v, &mut rng)?);
                }
                enc_rows.push(enc_row);
            }
            enc_db
                .bulk_load(&td.table, enc_rows)
                .map_err(|e| CoreError::new(e.to_string()))?;
        }
        Ok(enc_db)
    }
}

/// Splits an encrypted column name `<base>_<scheme>` back into its parts.
pub fn parse_enc_name(name: &str) -> Option<(String, EncScheme)> {
    let idx = name.rfind('_')?;
    let (base, suffix) = (&name[..idx], &name[idx + 1..]);
    let scheme = match suffix {
        "rnd" => EncScheme::Rnd,
        "det" => EncScheme::Det,
        "ope" => EncScheme::Ope,
        "hom" => EncScheme::Hom,
        "search" => EncScheme::Search,
        _ => return None,
    };
    Some((base.to_string(), scheme))
}

/// Serializes a plaintext value for RND encryption.
fn encode_plain(v: &Value) -> Vec<u8> {
    match v {
        Value::Int(i) => {
            let mut out = vec![1u8];
            out.extend_from_slice(&i.to_be_bytes());
            out
        }
        Value::Date(d) => {
            let mut out = vec![2u8];
            out.extend_from_slice(&d.to_be_bytes());
            out
        }
        Value::Float(f) => {
            let mut out = vec![3u8];
            out.extend_from_slice(&f.to_be_bytes());
            out
        }
        Value::Str(s) => {
            let mut out = vec![4u8];
            out.extend_from_slice(s.as_bytes());
            out
        }
        other => {
            let mut out = vec![4u8];
            out.extend_from_slice(other.to_string().as_bytes());
            out
        }
    }
}

/// Inverse of [`encode_plain`].
fn decode_plain(bytes: &[u8]) -> Value {
    match bytes.first() {
        Some(1) => Value::Int(i64::from_be_bytes(bytes[1..9].try_into().unwrap())),
        Some(2) => Value::Date(i32::from_be_bytes(bytes[1..5].try_into().unwrap())),
        Some(3) => Value::Float(f64::from_be_bytes(bytes[1..9].try_into().unwrap())),
        Some(4) => Value::Str(String::from_utf8_lossy(&bytes[1..]).into_owned()),
        _ => Value::Null,
    }
}

fn decode_int(u: u64, ty: ColumnType) -> Value {
    match ty {
        ColumnType::Date => Value::Date((u as i64 - DATE_BIAS) as i32),
        ColumnType::Float => Value::Float(u as i64 as f64 / 100.0),
        _ => Value::Int(u as i64),
    }
}

/// Decodes a homomorphic sum back to the logical type. Sums of date-biased or
/// fixed-point values only make sense for Int columns, which is what the
/// designer offers HOM for.
fn decode_hom_sum(u: u64, ty: ColumnType) -> Value {
    match ty {
        ColumnType::Float => Value::Float(u as f64 / 100.0),
        _ => Value::Int(u as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monomi_sql::parse_query;

    fn plain_db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("o_orderkey", ColumnType::Int),
                ColumnDef::new("o_totalprice", ColumnType::Int),
                ColumnDef::new("o_orderdate", ColumnType::Date),
                ColumnDef::new("o_comment", ColumnType::Str),
            ],
        ));
        for i in 0..20i64 {
            db.insert(
                "orders",
                vec![
                    Value::Int(i),
                    Value::Int(100 + i),
                    Value::Date(8000 + i as i32),
                    Value::Str(format!("comment number {i} with express words")),
                ],
            )
            .unwrap();
        }
        db
    }

    fn sample_design(plain: &Database) -> PhysicalDesign {
        // 512-bit Paillier so multi-row packing has room for more than one row.
        let mut design = PhysicalDesign::new(512);
        {
            let td = design.table_mut("orders");
            td.add(Expr::col("o_orderkey"), ColumnType::Int, EncScheme::Det);
            td.add(Expr::col("o_totalprice"), ColumnType::Int, EncScheme::Det);
            td.add(Expr::col("o_totalprice"), ColumnType::Int, EncScheme::Hom);
            td.add(Expr::col("o_totalprice"), ColumnType::Int, EncScheme::Ope);
            td.add(Expr::col("o_orderdate"), ColumnType::Date, EncScheme::Ope);
            td.add(Expr::col("o_orderdate"), ColumnType::Date, EncScheme::Det);
            td.add(Expr::col("o_comment"), ColumnType::Str, EncScheme::Search);
            td.add(Expr::col("o_comment"), ColumnType::Str, EncScheme::Rnd);
            // A precomputed expression: o_totalprice * 2.
            let pre = parse_query("SELECT o_totalprice * 2 FROM orders")
                .unwrap()
                .projections[0]
                .expr
                .clone();
            td.add(pre, ColumnType::Int, EncScheme::Hom);
            td.col_packing = true;
        }
        design.add_baseline_coverage(plain);
        design
    }

    #[test]
    fn design_construction_and_names() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let td = design.table("orders").unwrap();
        let ok = td.find_base("o_totalprice").unwrap();
        assert!(ok.schemes.contains(&EncScheme::Det));
        assert!(ok.schemes.contains(&EncScheme::Hom));
        assert_eq!(ok.enc_name(EncScheme::Det), "o_totalprice_det");
        let pre = td.columns.iter().find(|c| c.is_precomputed()).unwrap();
        assert_eq!(pre.base_name, "precomp_0");
        assert_eq!(td.hom_slots().len(), 2);
        assert_eq!(td.hom_slot_index("o_totalprice"), Some(0));
        assert_eq!(td.hom_slot_index("precomp_0"), Some(1));
    }

    #[test]
    fn index_opt_out_surfaces_leakage_and_unindexed_columns() {
        let plain = plain_db();
        let mut design = sample_design(&plain);
        // Nothing opted out: every DET/OPE materialization is exposed and
        // no column is unindexed.
        assert!(design.unindexed_by_table().is_empty());
        let exposure = design.index_exposure();
        let cols = exposure.get("orders").unwrap();
        assert!(cols.contains(&("o_totalprice_det".into(), EncScheme::Det)));
        assert!(cols.contains(&("o_orderdate_ope".into(), EncScheme::Ope)));
        // HOM/RND/SEARCH materializations never appear: they build no index.
        assert!(cols.iter().all(|(name, _)| {
            !name.ends_with("_hom") && !name.ends_with("_rnd") && !name.ends_with("_search")
        }));

        // Opting a source out moves its DET+OPE names from the exposure
        // report to the unindexed list create_table_with persists.
        let td = design.table_mut("orders");
        assert!(td.set_index_opt_out("o_totalprice", true));
        assert!(!td.set_index_opt_out("no_such_column", true));
        let unindexed = design.unindexed_by_table();
        assert_eq!(
            unindexed.get("orders").unwrap(),
            &vec![
                "o_totalprice_det".to_string(),
                "o_totalprice_ope".to_string()
            ]
        );
        let exposure = design.index_exposure();
        assert!(exposure
            .get("orders")
            .unwrap()
            .iter()
            .all(|(n, _)| !n.starts_with("o_totalprice")));

        // Opting back in restores the exposure and empties the list.
        design
            .table_mut("orders")
            .set_index_opt_out("o_totalprice", false);
        assert!(design.unindexed_by_table().is_empty());
        assert!(design
            .index_exposure()
            .get("orders")
            .unwrap()
            .contains(&("o_totalprice_ope".into(), EncScheme::Ope)));
    }

    #[test]
    fn parse_enc_name_roundtrip() {
        assert_eq!(
            parse_enc_name("l_quantity_det"),
            Some(("l_quantity".into(), EncScheme::Det))
        );
        assert_eq!(
            parse_enc_name("precomp_3_hom"),
            Some(("precomp_3".into(), EncScheme::Hom))
        );
        assert_eq!(parse_enc_name("nounderscore"), None);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_per_scheme() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let enc = Encryptor::new(MasterKey::from_bytes([1u8; 32]), design, 7);
        let td = enc.design().table("orders").unwrap().clone();
        let mut rng = StdRng::seed_from_u64(3);

        let key_cd = td.find_base("o_orderkey").unwrap();
        let ct = enc
            .encrypt_value("orders", key_cd, EncScheme::Det, &Value::Int(5), &mut rng)
            .unwrap();
        assert_ne!(ct, Value::Int(5));
        assert_eq!(
            enc.decrypt_value("orders", key_cd, EncScheme::Det, &ct)
                .unwrap(),
            Value::Int(5)
        );

        let date_cd = td.find_base("o_orderdate").unwrap();
        let dct = enc
            .encrypt_value(
                "orders",
                date_cd,
                EncScheme::Det,
                &Value::Date(8005),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            enc.decrypt_value("orders", date_cd, EncScheme::Det, &dct)
                .unwrap(),
            Value::Date(8005)
        );

        let comment_cd = td.find_base("o_comment").unwrap();
        let rct = enc
            .encrypt_value(
                "orders",
                comment_cd,
                EncScheme::Rnd,
                &Value::Str("hello".into()),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            enc.decrypt_value("orders", comment_cd, EncScheme::Rnd, &rct)
                .unwrap(),
            Value::Str("hello".into())
        );

        let price_cd = td.find_base("o_totalprice").unwrap();
        let hct = enc
            .encrypt_value(
                "orders",
                price_cd,
                EncScheme::Hom,
                &Value::Int(123),
                &mut rng,
            )
            .unwrap();
        assert_eq!(
            enc.decrypt_value("orders", price_cd, EncScheme::Hom, &hct)
                .unwrap(),
            Value::Int(123)
        );
    }

    #[test]
    fn ope_constants_preserve_order() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let enc = Encryptor::new(MasterKey::from_bytes([1u8; 32]), design, 7);
        let td = enc.design().table("orders").unwrap().clone();
        let price_cd = td.find_base("o_totalprice").unwrap();
        let a = enc
            .encrypt_constant("orders", price_cd, EncScheme::Ope, &Value::Int(100))
            .unwrap();
        let b = enc
            .encrypt_constant("orders", price_cd, EncScheme::Ope, &Value::Int(110))
            .unwrap();
        assert!(a < b);
    }

    #[test]
    fn encrypted_database_has_no_plaintext_and_right_shape() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let enc = Encryptor::new(MasterKey::from_bytes([2u8; 32]), design, 11);
        let enc_db = enc.encrypt_database(&plain, 99).unwrap();
        let table = enc_db.table("orders").unwrap();
        assert_eq!(table.row_count(), 20);
        // The encrypted schema contains only suffixed columns and the group column.
        for col in &table.schema().columns {
            assert!(
                parse_enc_name(&col.name).is_some() || col.name.ends_with("_homgrp_hom"),
                "unexpected column {}",
                col.name
            );
        }
        // Encrypted sums work end to end through the engine UDF.
        let (rs, _) = enc_db
            .execute_sql("SELECT paillier_sum(orders_homgrp_hom) FROM orders", &[])
            .unwrap();
        let slot0 = enc
            .decrypt_hom_group_sum(&rs.rows[0][0], 0, ColumnType::Int)
            .unwrap();
        let expected: i64 = (0..20).map(|i| 100 + i).sum();
        assert_eq!(slot0, Value::Int(expected));
        let slot1 = enc
            .decrypt_hom_group_sum(&rs.rows[0][0], 1, ColumnType::Int)
            .unwrap();
        assert_eq!(slot1, Value::Int(expected * 2));
    }

    #[test]
    fn storage_accounting_orders_scheme_sizes() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let enc = Encryptor::new(MasterKey::from_bytes([2u8; 32]), design.clone(), 11);
        let bytes = design.storage_bytes(&plain, enc.paillier());
        assert!(bytes > plain.total_size_bytes());
        // Multi-row packing shrinks the footprint.
        let mut packed = design.clone();
        packed.table_mut("orders").multirow_packing = true;
        let packed_bytes = packed.storage_bytes(&plain, enc.paillier());
        assert!(packed_bytes < bytes);
    }

    #[test]
    fn security_summary_buckets() {
        let plain = plain_db();
        let design = sample_design(&plain);
        let summary = design.security_summary();
        let orders = &summary["orders"];
        // o_comment weakest is SEARCH (strong bucket includes RND/HOM/SEARCH)?
        // o_comment has Search + Rnd => weakest = Search (rank 1) => bucket 0.
        assert!(orders.base[0] >= 1);
        // o_totalprice has OPE => bucket 2.
        assert!(orders.base[2] >= 1);
        // The precomputed HOM column is strong.
        assert_eq!(orders.precomputed[0], 1);
    }
}
