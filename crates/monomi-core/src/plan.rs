//! Split client/server query plans and the plan generator (Algorithm 1).
//!
//! A [`SplitPlan`] describes how MONOMI executes one query: the part pushed to
//! the untrusted server as SQL over encrypted columns (`RemoteSQL` in the
//! paper), and the operators the trusted client applies after decrypting the
//! intermediate result (`LocalDecrypt`, `LocalFilter`, `LocalGroupBy`,
//! `LocalGroupFilter`, `LocalProjection`, `LocalSort`).

use crate::design::Encryptor;
use crate::rewrite::{fold_constant, normalize_expr, FetchSpec, QueryScope, Rewriter};
use crate::schemes::EncScheme;
use monomi_engine::{ColumnType, Database, Value};
use monomi_sql::ast::*;

/// How the client decrypts one column of a RemoteSQL result and what
/// plaintext expression that column stands for.
#[derive(Clone, Debug, PartialEq)]
pub enum DecryptSpec {
    /// The server returns a plaintext value (e.g. `COUNT(*)`).
    Plain,
    /// Decrypt a single column value with the given scheme.
    Column {
        table: String,
        base: String,
        scheme: EncScheme,
        ty: ColumnType,
    },
    /// Decrypt a `paillier_sum` over the packed HOM group column and extract
    /// the slot belonging to `base`.
    HomGroupSum {
        table: String,
        base: String,
        ty: ColumnType,
    },
    /// Decrypt a `paillier_sum` over a stand-alone HOM column.
    HomSum {
        table: String,
        base: String,
        ty: ColumnType,
    },
    /// The server returns `group_concat` of DET ciphertexts: decrypt every
    /// element and fold with the aggregate function (None = keep the list).
    GroupValues {
        table: String,
        base: String,
        ty: ColumnType,
        agg: Option<AggFunc>,
        distinct: bool,
    },
}

/// One output column of the RemoteSQL operator.
#[derive(Clone, Debug, PartialEq)]
pub struct OutputColumn {
    /// The plaintext-semantics expression this output column yields once
    /// decrypted (what the client-side environment is keyed by).
    pub source: Expr,
    /// The expression the server evaluates (over encrypted columns).
    pub server_expr: Expr,
    /// How to decrypt.
    pub decrypt: DecryptSpec,
}

/// A plan in which the bulk of the query runs on the server as a single SQL
/// statement, followed by client-side decryption and residual operators.
#[derive(Clone, Debug, PartialEq)]
pub struct RemotePlan {
    /// The SQL the server executes over encrypted columns.
    pub server_query: Query,
    /// How each server output column is decrypted and what it represents.
    pub outputs: Vec<OutputColumn>,
    /// Uncorrelated subqueries referenced by local predicates; each is planned
    /// independently and its result is made available to the local evaluator.
    pub subquery_children: Vec<(Query, SplitPlan)>,
    /// Predicates (original plaintext semantics) the client applies after
    /// decryption.
    pub local_filters: Vec<Expr>,
    /// Group keys when the GROUP BY could not be pushed to the server.
    pub local_group_by: Option<Vec<Expr>>,
    /// HAVING applied on the client.
    pub local_having: Option<Expr>,
    /// Whether the server already grouped rows (GROUP BY pushed).
    pub server_grouped: bool,
    /// The original projections, evaluated over the decrypted environment.
    pub projections: Vec<SelectItem>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
    pub distinct: bool,
}

/// A split execution plan.
// `Client` embeds a full `Query` inline; plans are built once per query and
// never stored in bulk, so boxing it would cost indirection for no gain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum SplitPlan {
    /// Algorithm-1 style: one server query plus local operators.
    Remote(Box<RemotePlan>),
    /// The query is evaluated on the client over the materialized outputs of
    /// child plans (used for derived tables, correlated subqueries, and the
    /// "download and compute locally" fallback the paper compares against).
    Client {
        query: Query,
        children: Vec<(String, SplitPlan)>,
    },
}

impl SplitPlan {
    /// Number of RemoteSQL operators in the plan (for plan inspection/tests).
    pub fn remote_query_count(&self) -> usize {
        match self {
            SplitPlan::Remote(rp) => {
                1 + rp
                    .subquery_children
                    .iter()
                    .map(|(_, p)| p.remote_query_count())
                    .sum::<usize>()
            }
            SplitPlan::Client { children, .. } => {
                children.iter().map(|(_, p)| p.remote_query_count()).sum()
            }
        }
    }

    /// True if any part of the plan groups or filters on the client.
    pub fn has_local_work(&self) -> bool {
        match self {
            SplitPlan::Remote(rp) => {
                !rp.local_filters.is_empty()
                    || rp.local_group_by.is_some()
                    || rp.local_having.is_some()
            }
            SplitPlan::Client { .. } => true,
        }
    }

    /// A short human-readable description of the plan shape (EXPLAIN-like).
    pub fn describe(&self) -> String {
        match self {
            SplitPlan::Remote(rp) => {
                let mut parts = vec![format!(
                    "RemoteSQL[{} outputs{}]",
                    rp.outputs.len(),
                    if rp.server_grouped {
                        ", server GROUP BY"
                    } else {
                        ""
                    }
                )];
                if !rp.local_filters.is_empty() {
                    parts.push(format!("LocalFilter×{}", rp.local_filters.len()));
                }
                if rp.local_group_by.is_some() {
                    parts.push("LocalGroupBy".into());
                }
                if rp.local_having.is_some() {
                    parts.push("LocalGroupFilter".into());
                }
                if !rp.order_by.is_empty() {
                    parts.push("LocalSort".into());
                }
                parts.push("LocalProjection".into());
                parts.join(" -> ")
            }
            SplitPlan::Client { children, .. } => format!(
                "ClientExec over [{}]",
                children
                    .iter()
                    .map(|(name, c)| format!("{name}: {}", c.describe()))
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        }
    }
}

/// Options controlling which of the paper's optimizations the plan generator
/// may use; toggled by the Figure 5/6 experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOptions {
    /// Use per-row precomputed expression columns (§5.1).
    pub use_precomputation: bool,
    /// Use homomorphic (Paillier) server-side aggregation.
    pub use_hom_aggregation: bool,
    /// Use conservative pre-filtering for un-pushable HAVING clauses (§5.4).
    pub use_prefiltering: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            use_precomputation: true,
            use_hom_aggregation: true,
            use_prefiltering: true,
        }
    }
}

/// Generates a split plan for `query` (Algorithm 1 plus the recursive handling
/// of derived tables and subqueries). Always succeeds: when a part of the
/// query cannot be pushed, it degrades to client-side execution of that part.
pub fn generate_query_plan(
    query: &Query,
    plain: &Database,
    encryptor: &Encryptor,
    options: &PlanOptions,
) -> SplitPlan {
    // Derived tables in FROM: plan each subquery, evaluate the outer query on
    // the client over the children's outputs.
    let has_derived = query
        .from
        .iter()
        .any(|t| matches!(t, TableRef::Subquery { .. }));
    if has_derived {
        let mut children = Vec::new();
        let mut outer = query.clone();
        for t in &mut outer.from {
            if let TableRef::Subquery { query: sub, alias } = t {
                let child = generate_query_plan(sub, plain, encryptor, options);
                children.push((alias.clone(), child));
                // Replace with a reference to the client-side relation.
                let projections = sub
                    .projections
                    .iter()
                    .enumerate()
                    .map(|(i, p)| SelectItem::new(Expr::col(p.output_name(i))))
                    .collect::<Vec<_>>();
                let _ = projections;
                *t = TableRef::Table {
                    name: alias.clone(),
                    alias: None,
                };
            }
        }
        return SplitPlan::Client {
            query: outer,
            children,
        };
    }

    let scope = match QueryScope::for_query(query, plain) {
        Some(s) => s,
        None => return client_fallback_plan(query, plain, encryptor, options),
    };
    match generate_remote_plan(query, plain, encryptor, &scope, options) {
        Some(plan) => SplitPlan::Remote(Box::new(plan)),
        None => client_fallback_plan(query, plain, encryptor, options),
    }
}

/// The "ship the (filtered) tables to the client" fallback: every base table
/// referenced by the query is fetched through a trivial remote plan (applying
/// any pushable single-table predicates), and the original query runs on the
/// client. This is always correct and mirrors the strawman the paper compares
/// against; the planner only picks it when nothing better exists.
pub fn client_fallback_plan(
    query: &Query,
    plain: &Database,
    encryptor: &Encryptor,
    options: &PlanOptions,
) -> SplitPlan {
    let mut children = Vec::new();
    let mut tables: Vec<String> = Vec::new();
    collect_tables(query, &mut tables);
    tables.sort();
    tables.dedup();
    for t in tables {
        if plain.catalog().get(&t).is_none() {
            continue;
        }
        let fetch_query = Query {
            projections: vec![SelectItem::new(Expr::col("*"))],
            from: vec![TableRef::Table {
                name: t.clone(),
                alias: None,
            }],
            ..Default::default()
        };
        let scope = QueryScope::for_query(&fetch_query, plain).expect("base table scope");
        let plan = generate_remote_plan(&fetch_query, plain, encryptor, &scope, options)
            .expect("table fetch plan must always exist");
        children.push((t, SplitPlan::Remote(Box::new(plan))));
    }
    SplitPlan::Client {
        query: query.clone(),
        children,
    }
}

fn collect_tables(query: &Query, out: &mut Vec<String>) {
    for t in &query.from {
        match t {
            TableRef::Table { name, .. } => out.push(name.to_lowercase()),
            TableRef::Subquery { query, .. } => collect_tables(query, out),
        }
    }
    let mut from_expr = |e: &Expr| {
        e.walk(&mut |node| match node {
            Expr::InSubquery { subquery, .. } | Expr::ScalarSubquery(subquery) => {
                collect_tables(subquery, out)
            }
            Expr::Exists { subquery, .. } => collect_tables(subquery, out),
            _ => {}
        });
    };
    for p in &query.projections {
        from_expr(&p.expr);
    }
    if let Some(w) = &query.where_clause {
        from_expr(w);
    }
    if let Some(h) = &query.having {
        from_expr(h);
    }
}

/// True if a subquery references columns it does not define (correlated).
fn is_correlated(sub: &Query, plain: &Database) -> bool {
    let scope = match QueryScope::for_query(sub, plain) {
        Some(s) => s,
        // Derived tables inside: treat conservatively as correlated.
        None => return true,
    };
    let mut correlated = false;
    let mut check = |e: &Expr| {
        for c in e.column_refs() {
            if c.column != "*" && scope.resolve(&c).is_none() {
                correlated = true;
            }
        }
    };
    for p in &sub.projections {
        check(&p.expr);
    }
    if let Some(w) = &sub.where_clause {
        check(w);
    }
    if let Some(h) = &sub.having {
        check(h);
    }
    for g in &sub.group_by {
        check(g);
    }
    correlated
}

/// Core of Algorithm 1: build a RemotePlan for a query over base tables.
/// Returns `None` when the query shape cannot be handled by a single remote
/// query (e.g. correlated subqueries or un-pushable joins).
fn generate_remote_plan(
    query: &Query,
    plain: &Database,
    encryptor: &Encryptor,
    scope: &QueryScope,
    options: &PlanOptions,
) -> Option<RemotePlan> {
    let design = encryptor.design();
    let rewriter = Rewriter {
        design,
        encryptor,
        scope,
    };

    let mut remote = Query {
        from: query.from.clone(),
        ..Default::default()
    };
    let mut outputs: Vec<OutputColumn> = Vec::new();
    let mut subquery_children: Vec<(Query, SplitPlan)> = Vec::new();
    let mut local_filters: Vec<Expr> = Vec::new();
    let mut remote_conjuncts: Vec<Expr> = Vec::new();

    // Helper: ensure an output column exists for a fetchable source expression.
    let add_fetch = |outputs: &mut Vec<OutputColumn>, spec: &FetchSpec, source: Expr| {
        let server_expr = Expr::col(spec.enc_column.clone());
        if outputs.iter().any(|o| o.source == source) {
            return;
        }
        outputs.push(OutputColumn {
            source,
            server_expr,
            decrypt: DecryptSpec::Column {
                table: spec.table.clone(),
                base: spec.base.clone(),
                scheme: spec.scheme,
                ty: spec.ty,
            },
        });
    };

    // Fetch every base column referenced by `expr` so the client can evaluate
    // it after decryption. Fails if some column has no decryptable encryption.
    let fetch_exprs_for = |outputs: &mut Vec<OutputColumn>, expr: &Expr| -> Option<()> {
        for c in expr.column_refs() {
            if c.column == "*" {
                continue;
            }
            let col_expr = Expr::Column(c.clone());
            let spec = rewriter.fetch_source(&col_expr)?;
            add_fetch(outputs, &spec, normalize_expr(&col_expr));
        }
        Some(())
    };

    // ---- SELECT * expansion for table-fetch plans ----
    let star = query
        .projections
        .iter()
        .any(|p| matches!(&p.expr, Expr::Column(c) if c.column == "*"));

    // ---- WHERE / JOIN clauses (lines 6–13 of Algorithm 1) ----
    let conjuncts = query
        .where_clause
        .as_ref()
        .map(|w| w.split_conjuncts())
        .unwrap_or_default();
    for conj in &conjuncts {
        if conj.contains_subquery() {
            // Plan uncorrelated subqueries as children; correlated ones force
            // the fallback path.
            let mut failed = false;
            let mut subs: Vec<Query> = Vec::new();
            conj.walk(&mut |node| match node {
                Expr::InSubquery { subquery, .. } | Expr::Exists { subquery, .. } => {
                    subs.push((**subquery).clone())
                }
                Expr::ScalarSubquery(subquery) => subs.push((**subquery).clone()),
                _ => {}
            });
            for sub in subs {
                if is_correlated(&sub, plain) {
                    failed = true;
                } else {
                    let child = generate_query_plan(&sub, plain, encryptor, options);
                    subquery_children.push((sub, child));
                }
            }
            if failed {
                return None;
            }
            fetch_exprs_for(&mut outputs, conj)?;
            local_filters.push(conj.clone());
            continue;
        }
        // Try to push the conjunct to the server.
        let pushed = rewriter.rewrite_plain(conj);
        match pushed {
            Some(server_expr) => remote_conjuncts.push(server_expr),
            None => {
                // A join predicate that cannot be pushed means the join itself
                // would have to happen on the client; fall back.
                let tables: std::collections::HashSet<_> = conj
                    .column_refs()
                    .iter()
                    .filter_map(|c| scope.resolve(c).map(|(t, _, _)| t))
                    .collect();
                if tables.len() > 1 {
                    return None;
                }
                fetch_exprs_for(&mut outputs, conj)?;
                local_filters.push(conj.clone());
            }
        }
    }
    remote.where_clause = Expr::join_conjuncts(&remote_conjuncts);

    // ---- GROUP BY (lines 14–18) ----
    // If any WHERE conjunct stays on the client, the server cannot group:
    // grouping before the residual filter would aggregate rows that the
    // filter later rejects.
    let filters_stay_local = !local_filters.is_empty();
    let mut server_grouped = false;
    let mut local_group_by: Option<Vec<Expr>> = None;
    if !query.group_by.is_empty() {
        let rewritten: Option<Vec<Expr>> = query
            .group_by
            .iter()
            .map(|k| {
                if !options.use_precomputation && !matches!(k, Expr::Column(_)) {
                    None
                } else {
                    rewriter.rewrite_det(k)
                }
            })
            .collect();
        match rewritten {
            Some(keys) if !filters_stay_local => {
                remote.group_by = keys;
                server_grouped = true;
            }
            _ => {
                local_group_by = Some(query.group_by.clone());
            }
        }
    } else if query.is_aggregate_query() {
        if filters_stay_local {
            // Global aggregate with a residual filter: aggregate on the client
            // over the filtered rows.
            local_group_by = Some(Vec::new());
        } else {
            // Global aggregate: the "group" is the whole result; the server can
            // still aggregate if the aggregates themselves are pushable.
            server_grouped = true;
        }
    }

    // ---- HAVING (lines 19–31) ----
    let mut local_having: Option<Expr> = None;
    if let Some(having) = &query.having {
        if server_grouped {
            // HAVING can rarely be pushed because it compares aggregates;
            // attempt it, otherwise evaluate on the client (plus optional
            // conservative pre-filter).
            match rewrite_having(&rewriter, having) {
                Some(server_having) => remote.having = Some(server_having),
                None => {
                    local_having = Some(having.clone());
                    if options.use_prefiltering {
                        if let Some(pre) = prefilter_for(&rewriter, having, plain) {
                            remote.having = Some(pre);
                        }
                    }
                }
            }
        } else {
            local_having = Some(having.clone());
        }
        // Any subqueries inside HAVING become children.
        let mut subs: Vec<Query> = Vec::new();
        having.walk(&mut |node| match node {
            Expr::InSubquery { subquery, .. } | Expr::Exists { subquery, .. } => {
                subs.push((**subquery).clone())
            }
            Expr::ScalarSubquery(subquery) => subs.push((**subquery).clone()),
            _ => {}
        });
        for sub in subs {
            if is_correlated(&sub, plain) {
                return None;
            }
            let child = generate_query_plan(&sub, plain, encryptor, options);
            subquery_children.push((sub, child));
        }
    }

    // ---- Aggregates and projections (lines 32–37) ----
    // Collect every aggregate that must be available on the client: from
    // projections, HAVING (if local), and ORDER BY.
    let mut needed_aggregates: Vec<Expr> = Vec::new();
    let mut collect_aggs = |e: &Expr| {
        e.walk(&mut |node| {
            if matches!(node, Expr::Aggregate { .. }) && !needed_aggregates.contains(node) {
                needed_aggregates.push(node.clone());
            }
        });
    };
    for p in &query.projections {
        collect_aggs(&p.expr);
    }
    if let Some(h) = &local_having {
        collect_aggs(h);
    }
    for o in &query.order_by {
        collect_aggs(&o.expr);
    }

    if query.is_aggregate_query() && server_grouped {
        // Group keys must be fetched (decryptable) so the client can produce
        // the final projection.
        for key in &query.group_by {
            match rewriter.fetch_source(key) {
                Some(spec) => add_fetch(&mut outputs, &spec, normalize_expr(key)),
                None => {
                    // Fall back to fetching the underlying columns.
                    fetch_exprs_for(&mut outputs, key)?;
                }
            }
        }
        let needs_count = needed_aggregates.iter().any(|a| {
            matches!(
                a,
                Expr::Aggregate {
                    func: AggFunc::Avg,
                    ..
                }
            )
        });
        for agg in &needed_aggregates {
            let out = plan_aggregate(&rewriter, agg, options)?;
            if !outputs.iter().any(|o| o.source == out.source) {
                outputs.push(out);
            }
        }
        if needs_count {
            // AVG over a homomorphic SUM needs the group cardinality too.
            let count = Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            };
            if !outputs.iter().any(|o| o.source == count) {
                outputs.push(OutputColumn {
                    source: count.clone(),
                    server_expr: count,
                    decrypt: DecryptSpec::Plain,
                });
            }
        }
    } else if query.is_aggregate_query() {
        // Group by on the client: fetch per-row values for group keys and
        // aggregate arguments.
        for key in query.group_by.iter() {
            fetch_exprs_for(&mut outputs, key)?;
        }
        for agg in &needed_aggregates {
            if let Expr::Aggregate { arg: Some(a), .. } = agg {
                fetch_exprs_for(&mut outputs, a)?;
            }
        }
    }

    // Non-aggregate projection expressions (and ORDER BY keys) must be
    // computable on the client.
    if star {
        // Table-fetch plan: project every base column.
        for t in &query.from {
            if let TableRef::Table { name, .. } = t {
                if let Some(schema) = plain.catalog().get(name) {
                    for col in &schema.columns {
                        let col_expr = Expr::col(col.name.to_lowercase());
                        let spec = rewriter.fetch_source(&col_expr)?;
                        add_fetch(&mut outputs, &spec, col_expr);
                    }
                }
            }
        }
    } else {
        for p in &query.projections {
            if p.expr.contains_aggregate() {
                continue;
            }
            match rewriter.fetch_source(&p.expr) {
                Some(spec) => add_fetch(&mut outputs, &spec, normalize_expr(&p.expr)),
                None => fetch_exprs_for(&mut outputs, &p.expr)?,
            }
        }
        for o in &query.order_by {
            if o.expr.contains_aggregate() {
                continue;
            }
            if let Expr::Column(c) = &o.expr {
                // Alias of a projection: already available.
                let is_alias = query.projections.iter().any(|p| {
                    p.alias
                        .as_deref()
                        .is_some_and(|a| a.eq_ignore_ascii_case(&c.column))
                });
                if is_alias {
                    continue;
                }
            }
            if let Expr::Literal(_) = &o.expr {
                continue;
            }
            match rewriter.fetch_source(&o.expr) {
                Some(spec) => add_fetch(&mut outputs, &spec, normalize_expr(&o.expr)),
                None => fetch_exprs_for(&mut outputs, &o.expr)?,
            }
        }
    }

    // Local HAVING / local filters may reference columns too.
    if let Some(h) = &local_having {
        for c in h.column_refs() {
            if c.column == "*" {
                continue;
            }
            let col_expr = Expr::Column(c.clone());
            // Only fetch when it is a plain column (aggregates handled above).
            if rewriter.fetch_source(&col_expr).is_some() && server_grouped {
                // Group keys were fetched already; nothing more to do.
            }
        }
    }

    // The server query projects exactly the server expressions of our outputs.
    remote.projections = outputs
        .iter()
        .map(|o| SelectItem::new(o.server_expr.clone()))
        .collect();
    if remote.projections.is_empty() {
        // Degenerate query (e.g. SELECT COUNT(*) with local grouping); fetch a
        // constant so the row count is preserved.
        remote.projections = vec![SelectItem::new(Expr::int(1))];
        outputs.push(OutputColumn {
            source: Expr::int(1),
            server_expr: Expr::int(1),
            decrypt: DecryptSpec::Plain,
        });
    }

    Some(RemotePlan {
        server_query: remote,
        outputs,
        subquery_children,
        local_filters,
        local_group_by,
        local_having,
        server_grouped,
        projections: if star {
            Vec::new()
        } else {
            query.projections.clone()
        },
        order_by: query.order_by.clone(),
        limit: query.limit,
        distinct: query.distinct,
    })
}

/// Plans one aggregate for a server-grouped query: Paillier aggregation when
/// available, `COUNT(*)` in plaintext, otherwise `group_concat` of DET values
/// folded on the client.
fn plan_aggregate(
    rewriter: &Rewriter<'_>,
    agg: &Expr,
    options: &PlanOptions,
) -> Option<OutputColumn> {
    let (func, arg, distinct) = match agg {
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => (*func, arg.clone(), *distinct),
        _ => return None,
    };
    let source = normalize_expr(agg);
    match (func, &arg) {
        (AggFunc::Count, None) => Some(OutputColumn {
            source,
            server_expr: Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            decrypt: DecryptSpec::Plain,
        }),
        (AggFunc::Count, Some(a)) => {
            let spec = rewriter.scheme_column(a, EncScheme::Det)?;
            Some(OutputColumn {
                source,
                server_expr: Expr::Aggregate {
                    func: AggFunc::Count,
                    arg: Some(Box::new(Expr::col(spec.enc_column))),
                    distinct,
                },
                decrypt: DecryptSpec::Plain,
            })
        }
        (AggFunc::Sum | AggFunc::Avg, Some(a)) => {
            // Preferred: homomorphic aggregation of the (possibly precomputed)
            // argument.
            if options.use_hom_aggregation {
                if let Some(spec) = rewriter.scheme_column(a, EncScheme::Hom) {
                    let td = rewriter.design.table(&spec.table)?;
                    let (col, decrypt) = if td.col_packing {
                        (
                            td.hom_group_column(),
                            DecryptSpec::HomGroupSum {
                                table: spec.table.clone(),
                                base: spec.base.clone(),
                                ty: spec.ty,
                            },
                        )
                    } else {
                        (
                            spec.enc_column.clone(),
                            DecryptSpec::HomSum {
                                table: spec.table.clone(),
                                base: spec.base.clone(),
                                ty: spec.ty,
                            },
                        )
                    };
                    // AVG is computed on the client as SUM / COUNT, so the
                    // source we expose is SUM; the plan also needs COUNT(*),
                    // which the local evaluator adds automatically.
                    let sum_source = Expr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(normalize_expr(a))),
                        distinct: false,
                    };
                    return Some(OutputColumn {
                        source: sum_source,
                        server_expr: Expr::Function {
                            name: "paillier_sum".into(),
                            args: vec![Expr::col(col)],
                        },
                        decrypt,
                    });
                }
            }
            // Otherwise ship the group's values (DET) and fold on the client.
            let spec = rewriter.scheme_column(a, EncScheme::Det)?;
            Some(OutputColumn {
                source,
                server_expr: Expr::Function {
                    name: "group_concat".into(),
                    args: vec![Expr::col(spec.enc_column)],
                },
                decrypt: DecryptSpec::GroupValues {
                    table: spec.table,
                    base: spec.base,
                    ty: spec.ty,
                    agg: Some(func),
                    distinct,
                },
            })
        }
        (AggFunc::Min | AggFunc::Max, Some(a)) => {
            let spec = rewriter.scheme_column(a, EncScheme::Det)?;
            Some(OutputColumn {
                source,
                server_expr: Expr::Function {
                    name: "group_concat".into(),
                    args: vec![Expr::col(spec.enc_column)],
                },
                decrypt: DecryptSpec::GroupValues {
                    table: spec.table,
                    base: spec.base,
                    ty: spec.ty,
                    agg: Some(func),
                    distinct,
                },
            })
        }
        _ => None,
    }
}

/// Attempts to push a HAVING clause to the server. This only succeeds when it
/// involves no cross-scheme comparisons, e.g. `COUNT(*) > 5`.
fn rewrite_having(rewriter: &Rewriter<'_>, having: &Expr) -> Option<Expr> {
    match having {
        Expr::BinaryOp { left, op, right } if op.is_comparison() => {
            let count_side = |e: &Expr| {
                matches!(
                    e,
                    Expr::Aggregate {
                        func: AggFunc::Count,
                        ..
                    }
                )
            };
            if count_side(left) {
                let c = fold_constant(right)?;
                let lit = value_to_literal(&c)?;
                return Some(Expr::BinaryOp {
                    left: left.clone(),
                    op: *op,
                    right: Box::new(lit),
                });
            }
            if count_side(right) {
                let c = fold_constant(left)?;
                let lit = value_to_literal(&c)?;
                return Some(Expr::BinaryOp {
                    left: Box::new(lit),
                    op: *op,
                    right: right.clone(),
                });
            }
            let _ = rewriter;
            None
        }
        _ => None,
    }
}

/// Conservative pre-filtering (§5.4): for `HAVING SUM(x) > c` with an OPE
/// encryption of `x` available, emit the server-side superset filter
/// `MAX(x_ope) > ope(m) OR COUNT(*) > c / m` with `m` the observed maximum of
/// `x` in the statistics sample.
fn prefilter_for(rewriter: &Rewriter<'_>, having: &Expr, plain: &Database) -> Option<Expr> {
    let (sum_arg, constant) = match having {
        Expr::BinaryOp {
            left,
            op: BinaryOp::Gt | BinaryOp::GtEq,
            right,
        } => match (&**left, fold_constant(right)) {
            (
                Expr::Aggregate {
                    func: AggFunc::Sum,
                    arg: Some(a),
                    ..
                },
                Some(c),
            ) => ((**a).clone(), c),
            _ => return None,
        },
        _ => return None,
    };
    let threshold = constant.as_float()?;
    let spec = rewriter.scheme_column(&sum_arg, EncScheme::Ope)?;
    // m = maximum observed value of the column in the sample data.
    let stats = plain.table_stats();
    let m = stats
        .get(&spec.table)
        .and_then(|t| t.columns.get(&spec.base))
        .and_then(|c| c.max.as_ref())
        .and_then(Value::as_float)
        .unwrap_or(1.0)
        .max(1.0);
    let td = rewriter.design.table(&spec.table)?;
    let cd = td.find_base(&spec.base)?;
    let enc_m = rewriter
        .encryptor
        .encrypt_constant(&spec.table, cd, EncScheme::Ope, &Value::Int(m as i64))
        .ok()?;
    let enc_m_expr = match enc_m {
        Value::Bytes(b) => Expr::Function {
            name: "hex_bytes".into(),
            args: vec![Expr::Literal(Literal::String(monomi_engine::encode_hex(
                &b,
            )))],
        },
        Value::Int(i) => Expr::Literal(Literal::Number(i.to_string())),
        _ => return None,
    };
    let max_clause = Expr::Aggregate {
        func: AggFunc::Max,
        arg: Some(Box::new(Expr::col(spec.enc_column.clone()))),
        distinct: false,
    }
    .binop(BinaryOp::GtEq, enc_m_expr);
    let count_clause = Expr::Aggregate {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
    }
    .binop(
        BinaryOp::Gt,
        Expr::Literal(Literal::Number(format!(
            "{}",
            (threshold / m).floor() as i64
        ))),
    );
    Some(max_clause.binop(BinaryOp::Or, count_clause))
}

fn value_to_literal(v: &Value) -> Option<Expr> {
    Some(match v {
        Value::Int(i) => Expr::Literal(Literal::Number(i.to_string())),
        Value::Float(f) => Expr::Literal(Literal::Number(format!("{f}"))),
        Value::Str(s) => Expr::Literal(Literal::String(s.clone())),
        Value::Date(d) => Expr::Literal(Literal::Date(monomi_engine::date::format_date(*d))),
        _ => return None,
    })
}
