#![forbid(unsafe_code)]
//! # monomi-bench
//!
//! Benchmark harnesses that regenerate every table and figure of the MONOMI
//! paper's evaluation (§8), plus Criterion microbenchmarks for the crypto and
//! engine substrates. Each figure/table is a separate bench target (custom
//! harness) that prints the same rows/series the paper reports; see
//! EXPERIMENTS.md for the paper-vs-measured record.

use monomi_core::{ClientConfig, NetworkModel};
use monomi_tpch::{datagen, queries, TpchQuery};

/// Shared experiment setup: generated data, workload, network model, and the
/// client configuration used across figures.
pub struct Experiment {
    pub plain: monomi_engine::Database,
    pub workload: Vec<TpchQuery>,
    pub network: NetworkModel,
    pub config: ClientConfig,
}

impl Experiment {
    /// Standard experiment environment. The scale factor is intentionally small
    /// so every figure regenerates in minutes on a laptop; override via the
    /// `MONOMI_SCALE` environment variable (e.g. `MONOMI_SCALE=0.01`).
    pub fn standard() -> Experiment {
        let scale = std::env::var("MONOMI_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.002);
        let plain = datagen::generate(&datagen::GeneratorConfig {
            scale_factor: scale,
            ..Default::default()
        });
        Experiment {
            plain,
            workload: queries::workload(),
            network: NetworkModel::paper_default(),
            config: monomi_tpch::fast_config(),
        }
    }
}

/// Reads a `usize` knob from the environment, falling back to `default` on
/// absence or parse failure. Shared by the bench harnesses' knob handling.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(default)
}

/// Prints a standard experiment header.
pub fn print_header(title: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of Tu et al., VLDB 2013)");
    println!("==============================================================");
}
