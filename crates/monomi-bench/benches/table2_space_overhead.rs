//! Table 2: server space requirements of Plaintext, CryptDB+Client,
//! Execution-Greedy, and MONOMI; also prints the designer setup time (§8.1).

use monomi_bench::{print_header, Experiment};
use monomi_tpch::{baselines, baselines::SystemKind};

fn main() {
    print_header("Table 2: server space requirements", "Table 2");
    let exp = Experiment::standard();
    let plain_bytes = exp.plain.total_size_bytes();
    println!(
        "{:<18} {:>12} {:>22}",
        "system", "size (MB)", "relative to plaintext"
    );
    println!(
        "{:<18} {:>12.2} {:>22}",
        "Plaintext",
        plain_bytes as f64 / 1e6,
        "-"
    );
    for kind in [
        SystemKind::CryptDbClient,
        SystemKind::ExecutionGreedy,
        SystemKind::Monomi,
    ] {
        let setup =
            baselines::build_system(kind, &exp.plain, &exp.workload, &exp.config).expect("setup");
        let bytes = setup.server_bytes(&exp.plain);
        println!(
            "{:<18} {:>12.2} {:>21.2}x",
            kind.to_string(),
            bytes as f64 / 1e6,
            bytes as f64 / plain_bytes as f64
        );
        if kind == SystemKind::Monomi {
            if let Some(outcome) = setup.client.as_ref().and_then(|c| c.design_outcome()) {
                println!(
                    "\nMONOMI designer (ILP) setup time: {:.1}s (paper: 52s at scale 10)",
                    outcome.setup_seconds
                );
            }
        }
    }
    println!(
        "\n(Paper: plaintext 17.1 GB, CryptDB+Client 4.21x, Execution-Greedy 1.90x, MONOMI 1.72x.)"
    );
}
