//! Morsel-driven parallel execution benchmark: 1 vs N worker threads on the
//! two server-side workloads the paper's cost breakdown is dominated by.
//!
//! * **Q1-shaped HOM aggregation**: `paillier_sum` + `COUNT(*)` over a
//!   ciphertext column with a categorical GROUP BY — one CIOS multiply per
//!   row (§5.3), the heaviest per-row server cost MONOMI has. Partial
//!   accumulators merge with one CIOS each
//!   ([`monomi_crypto::PaillierSum::merge`]), so the parallel result is
//!   byte-identical to the serial fold (asserted below).
//! * **Q6-shaped selective scan**: the vectorized filter + late
//!   materialization + SUM over TPC-H `lineitem`, morsel-parallel end to end.
//!
//! The acceptance bar is ≥3x rows/s at 4 threads on the Q1-shaped HOM
//! workload. With `MONOMI_BENCH_JSON=<path>` the measured numbers are written
//! as a JSON snapshot (see `scripts/bench_snapshot.sh`). Knobs:
//! `MONOMI_BENCH_THREADS` (default 4), `MONOMI_PAILLIER_BITS` (default 512),
//! `MONOMI_SCALE` (sizes both workloads).

use monomi_bench::{env_usize, print_header};
use monomi_crypto::PaillierKey;
use monomi_engine::{ColumnDef, ColumnType, Database, ExecOptions, ResultSet, TableSchema, Value};
use monomi_math::BigUint;
use monomi_sql::parse_query;
use monomi_tpch::datagen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Best-of-N wall-clock measurement of `f`, returning (seconds, last result).
fn best_of<F: FnMut() -> ResultSet>(n: usize, mut f: F) -> (f64, ResultSet) {
    let mut best = f64::INFINITY;
    let mut last = f();
    for _ in 0..n {
        let start = Instant::now();
        last = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, last)
}

fn main() {
    print_header(
        "Morsel-driven parallel execution: 1 vs N worker threads",
        "Q1-shaped HOM aggregation and Q6-shaped selective scan",
    );
    let threads = env_usize("MONOMI_BENCH_THREADS", 4);
    let iters = env_usize("MONOMI_BENCH_ITERS", 3);
    let bits = env_usize("MONOMI_PAILLIER_BITS", 512);
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.002);
    let serial = ExecOptions::with_threads(1);
    let parallel = ExecOptions::with_threads(threads);

    // --- Q1-shaped HOM aggregation over an encrypted table. ---
    // At least five morsels of work, or the thread pool has nothing to share.
    let hom_rows = env_usize(
        "MONOMI_HOM_ROWS",
        ((scale * 2_000_000.0) as usize).clamp(5 * monomi_engine::DEFAULT_MORSEL_ROWS, 60_000),
    );
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let key = PaillierKey::generate(&mut rng, bits);
    let plains: Vec<BigUint> = (0..hom_rows as u64)
        .map(|i| BigUint::from_u64(i % 997))
        .collect();
    let cts = key.batch_encrypt(&mut rng, &plains);

    let mut db = Database::new();
    db.create_table(TableSchema::new(
        "lineitem_enc",
        vec![
            ColumnDef::new("l_returnflag", ColumnType::Str),
            ColumnDef::new("l_hom", ColumnType::Bytes),
        ],
    ));
    let flags = ["A", "N", "R"];
    let width = key.ciphertext_bytes();
    db.bulk_load(
        "lineitem_enc",
        cts.iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    Value::Str(flags[i % flags.len()].into()),
                    Value::Bytes(c.to_bytes_be_padded(width)),
                ]
            })
            .collect(),
    )
    .expect("load encrypted rows");
    db.register_paillier_modulus(key.n_squared().clone());

    let q1 = parse_query(
        "SELECT l_returnflag, paillier_sum(l_hom), COUNT(*) FROM lineitem_enc \
         GROUP BY l_returnflag ORDER BY l_returnflag",
    )
    .unwrap();
    let (q1_serial_secs, q1_serial_rs) = best_of(iters, || {
        db.execute_with(&q1, &[], &serial).expect("Q1 serial").0
    });
    let (q1_par_secs, q1_par_rs) = best_of(iters, || {
        db.execute_with(&q1, &[], &parallel).expect("Q1 parallel").0
    });
    // Debug formatting distinguishes Int from Float and -0.0 from 0.0, so
    // this really is byte identity, not Value's cross-type equality.
    assert_eq!(
        format!("{:?}", q1_serial_rs),
        format!("{:?}", q1_par_rs),
        "parallel Q1-shaped results must be byte-identical to serial"
    );
    // Spot-check the homomorphism end to end: decrypt one group's sum.
    let group_a_sum: u64 = (0..hom_rows as u64)
        .filter(|i| (*i as usize).is_multiple_of(flags.len()))
        .map(|i| i % 997)
        .sum();
    if let Value::Bytes(ct) = &q1_serial_rs.rows[0][1] {
        assert_eq!(key.decrypt_u64(&BigUint::from_bytes_be(ct)), group_a_sum);
    } else {
        panic!("paillier_sum did not return bytes");
    }

    let q1_serial_rate = hom_rows as f64 / q1_serial_secs;
    let q1_par_rate = hom_rows as f64 / q1_par_secs;
    let q1_speedup = q1_par_rate / q1_serial_rate;
    println!("Q1-shaped paillier_sum ({hom_rows} rows, {bits}-bit n, 3 groups):");
    println!("  1 thread:                 {q1_serial_rate:>12.0} rows/s  ({q1_serial_secs:.4}s)");
    println!("  {threads} threads:                {q1_par_rate:>12.0} rows/s  ({q1_par_secs:.4}s)");
    println!("  speedup:                  {q1_speedup:>11.2}x\n");

    // --- Q6-shaped selective scan over plaintext TPC-H lineitem. ---
    // The scan is memory-bound, so give it enough rows that morsel dispatch
    // overhead is amortized (~30 morsels at the default morsel size).
    let plain = datagen::generate(&datagen::GeneratorConfig {
        scale_factor: scale.max(0.02),
        seed: 42,
    });
    let scan_rows = plain.table("lineitem").expect("lineitem").row_count();
    let q6 = parse_query(
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' \
         AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR \
         AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
    )
    .unwrap();
    let (q6_serial_secs, q6_serial_rs) = best_of(iters, || {
        plain.execute_with(&q6, &[], &serial).expect("Q6 serial").0
    });
    let (q6_par_secs, q6_par_rs) = best_of(iters, || {
        plain
            .execute_with(&q6, &[], &parallel)
            .expect("Q6 parallel")
            .0
    });
    assert_eq!(
        format!("{:?}", q6_serial_rs),
        format!("{:?}", q6_par_rs),
        "parallel Q6-shaped results must be byte-identical to serial"
    );

    let q6_serial_rate = scan_rows as f64 / q6_serial_secs;
    let q6_par_rate = scan_rows as f64 / q6_par_secs;
    let q6_speedup = q6_par_rate / q6_serial_rate;
    println!("Q6-shaped selective scan ({scan_rows} lineitem rows):");
    println!("  1 thread:                 {q6_serial_rate:>12.0} rows/s  ({q6_serial_secs:.4}s)");
    println!("  {threads} threads:                {q6_par_rate:>12.0} rows/s  ({q6_par_secs:.4}s)");
    println!("  speedup:                  {q6_speedup:>11.2}x");

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"parallel_exec\",\n  \"threads\": {threads},\n  \
             \"paillier_bits\": {bits},\n  \"hom_rows\": {hom_rows},\n  \
             \"q1_hom_rows_per_sec_1t\": {q1_serial_rate:.1},\n  \
             \"q1_hom_rows_per_sec_nt\": {q1_par_rate:.1},\n  \
             \"q1_speedup\": {q1_speedup:.2},\n  \
             \"scan_rows\": {scan_rows},\n  \
             \"q6_scan_rows_per_sec_1t\": {q6_serial_rate:.1},\n  \
             \"q6_scan_rows_per_sec_nt\": {q6_par_rate:.1},\n  \
             \"q6_speedup\": {q6_speedup:.2}\n}}\n"
        );
        std::fs::write(&path, json).expect("write bench snapshot JSON");
        println!("wrote snapshot to {path}");
    }
}
