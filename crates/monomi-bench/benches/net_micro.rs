//! Network microbenchmark: the measured cost of the trust boundary.
//!
//! Runs the two server-side query shapes the paper's cost breakdown is
//! dominated by — Q1-shaped Paillier aggregation and the Q6-shaped selective
//! scan — through both [`ServerTransport`] implementations against the same
//! data: in-process (function call, zero wire) and TCP loopback (a real
//! `monomi-server` accept loop, CRC-framed protocol, measured bytes). The
//! delta is the true round-trip overhead of the client/server split, as
//! opposed to the `NetworkModel`'s simulated link.
//!
//! Results must be byte-identical across transports (asserted). With
//! `MONOMI_BENCH_JSON=<path>` the numbers are written as a JSON snapshot for
//! `scripts/bench_snapshot.sh`. Knobs: `MONOMI_SCALE`, `MONOMI_BENCH_ITERS`,
//! `MONOMI_PAILLIER_BITS`.

use monomi_bench::{env_usize, print_header};
use monomi_core::transport::load_database;
use monomi_core::{InProcessTransport, RemoteExecution, ServerTransport, TcpTransport};
use monomi_crypto::PaillierKey;
use monomi_engine::{ColumnDef, ColumnType, Database, ExecOptions, TableSchema, Value};
use monomi_math::BigUint;
use monomi_obs::Stopwatch;
use monomi_server::{Server, ServerOptions};
use monomi_sql::parse_query;
use monomi_tpch::datagen;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Best-of-N round trip through a transport, returning (wall seconds, wire
/// bytes of one round trip, last execution).
fn best_of(
    n: usize,
    transport: &dyn ServerTransport,
    query: &monomi_sql::ast::Query,
    opts: &ExecOptions,
) -> (f64, u64, RemoteExecution) {
    let mut best = f64::INFINITY;
    let mut last = transport.execute(query, opts).expect("execute");
    let mut wire = last.wire.bytes_sent + last.wire.bytes_received;
    for _ in 0..n {
        let watch = Stopwatch::start();
        last = transport.execute(query, opts).expect("execute");
        best = best.min(watch.seconds());
        wire = last.wire.bytes_sent + last.wire.bytes_received;
    }
    (best, wire, last)
}

fn main() {
    print_header(
        "Client/server wire overhead: in-process vs TCP loopback round trips",
        "the §6 client/server deployment, measured instead of modeled",
    );
    let iters = env_usize("MONOMI_BENCH_ITERS", 5);
    let bits = env_usize("MONOMI_PAILLIER_BITS", 512);
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.002);
    let opts = ExecOptions::serial();

    // One database carrying both shapes: plaintext TPC-H lineitem for the
    // Q6-shaped scan, plus a ciphertext column for Q1-shaped HOM aggregation.
    let mut db = datagen::generate(&datagen::GeneratorConfig {
        scale_factor: scale,
        seed: 42,
    });
    let hom_rows = ((scale * 1_000_000.0) as usize).clamp(512, 20_000);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let key = PaillierKey::generate(&mut rng, bits);
    let plains: Vec<BigUint> = (0..hom_rows as u64)
        .map(|i| BigUint::from_u64(i % 997))
        .collect();
    let cts = key.batch_encrypt(&mut rng, &plains);
    db.create_table(TableSchema::new(
        "lineitem_enc",
        vec![
            ColumnDef::new("l_returnflag", ColumnType::Str),
            ColumnDef::new("l_hom", ColumnType::Bytes),
        ],
    ));
    let flags = ["A", "N", "R"];
    let width = key.ciphertext_bytes();
    db.bulk_load(
        "lineitem_enc",
        cts.iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    Value::Str(flags[i % flags.len()].into()),
                    Value::Bytes(c.to_bytes_be_padded(width)),
                ]
            })
            .collect(),
    )
    .expect("load encrypted rows");
    db.register_paillier_modulus(key.n_squared().clone());
    let scan_rows = db.table("lineitem").expect("lineitem").row_count();

    // TCP side: a real server on loopback, loaded over the wire.
    let handle = Server::bind_with_db(
        "127.0.0.1:0",
        ServerOptions::default(),
        Database::in_memory(),
    )
    .expect("bind loopback server")
    .spawn()
    .expect("spawn server");
    let mut tcp = TcpTransport::connect(&handle.addr().to_string()).expect("connect");
    let load_watch = Stopwatch::start();
    load_database(&mut tcp, &db).expect("ship database to the server");
    let load_secs = load_watch.seconds();
    let loaded = tcp.wire_totals();
    println!(
        "bulk load over TCP: {} bytes sent in {load_secs:.3}s ({:.1} MB/s)\n",
        loaded.bytes_sent,
        loaded.bytes_sent as f64 / 1e6 / load_secs.max(1e-9),
    );
    let inproc = InProcessTransport::new(db);

    let q1 = parse_query(
        "SELECT l_returnflag, paillier_sum(l_hom), COUNT(*) FROM lineitem_enc \
         GROUP BY l_returnflag ORDER BY l_returnflag",
    )
    .unwrap();
    let q6 = parse_query(
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' \
         AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR \
         AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
    )
    .unwrap();

    let mut json = vec![format!(
        "  \"bench\": \"net_micro\",\n  \"paillier_bits\": {bits},\n  \
         \"hom_rows\": {hom_rows},\n  \"scan_rows\": {scan_rows},\n  \
         \"load_bytes\": {},\n  \"load_mb_per_sec\": {:.1}",
        loaded.bytes_sent,
        loaded.bytes_sent as f64 / 1e6 / load_secs.max(1e-9),
    )];
    for (name, query, rows) in [("q1_hom", &q1, hom_rows), ("q6_scan", &q6, scan_rows)] {
        let (local_secs, _, local) = best_of(iters, &inproc, query, &opts);
        let (tcp_secs, wire_bytes, remote) = best_of(iters, &tcp, query, &opts);
        assert_eq!(
            format!("{:?}", local.result),
            format!("{:?}", remote.result),
            "{name}: TCP result must be byte-identical to in-process"
        );
        let overhead_us = (tcp_secs - local_secs).max(0.0) * 1e6;
        println!("{name} ({rows} rows, serial):");
        println!("  in-process round trip:    {:>10.1} us", local_secs * 1e6);
        println!("  TCP loopback round trip:  {:>10.1} us", tcp_secs * 1e6);
        println!("  wire overhead:            {overhead_us:>10.1} us");
        println!(
            "  wire bytes per round trip: {wire_bytes:>9} ({} received)\n",
            remote.wire.bytes_received
        );
        json.push(format!(
            "  \"{name}_inproc_us\": {:.1},\n  \"{name}_tcp_us\": {:.1},\n  \
             \"{name}_wire_overhead_us\": {overhead_us:.1},\n  \
             \"{name}_wire_bytes\": {wire_bytes}",
            local_secs * 1e6,
            tcp_secs * 1e6,
        ));
    }

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let body = json.join(",\n");
        std::fs::write(&path, format!("{{\n{body}\n}}\n")).expect("write bench snapshot JSON");
        println!("wrote snapshot to {path}");
    }
}
