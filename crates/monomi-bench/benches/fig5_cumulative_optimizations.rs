//! Figure 5: aggregate TPC-H execution time as MONOMI's optimizations are
//! enabled cumulatively on top of the CryptDB+Client strawman.

use monomi_bench::{print_header, Experiment};
use monomi_core::plan::PlanOptions;
use monomi_tpch::{baselines, baselines::SystemKind};

struct Level {
    name: &'static str,
    kind: SystemKind,
    options: PlanOptions,
    use_planner: bool,
}

fn main() {
    print_header(
        "Figure 5: cumulative effect of MONOMI's optimization techniques",
        "Figure 5",
    );
    let exp = Experiment::standard();
    let levels = [
        Level {
            name: "CryptDB+Client",
            kind: SystemKind::CryptDbClient,
            options: PlanOptions {
                use_precomputation: false,
                use_hom_aggregation: true,
                use_prefiltering: false,
            },
            use_planner: false,
        },
        Level {
            name: "+Col packing",
            kind: SystemKind::ExecutionGreedy,
            options: PlanOptions {
                use_precomputation: false,
                use_hom_aggregation: true,
                use_prefiltering: false,
            },
            use_planner: false,
        },
        Level {
            name: "+Precomputation",
            kind: SystemKind::ExecutionGreedy,
            options: PlanOptions {
                use_precomputation: true,
                use_hom_aggregation: true,
                use_prefiltering: false,
            },
            use_planner: false,
        },
        Level {
            name: "+Other (pre-filtering)",
            kind: SystemKind::ExecutionGreedy,
            options: PlanOptions::default(),
            use_planner: false,
        },
        Level {
            name: "+Planner (MONOMI)",
            kind: SystemKind::Monomi,
            options: PlanOptions::default(),
            use_planner: true,
        },
    ];

    println!(
        "{:<26} {:>12} {:>16}",
        "configuration", "mean (s)", "geometric mean (s)"
    );
    for level in levels {
        let setup = baselines::build_system(level.kind, &exp.plain, &exp.workload, &exp.config)
            .expect("setup");
        let mut times = Vec::new();
        for q in &exp.workload {
            let run = if level.use_planner || level.kind == SystemKind::CryptDbClient {
                setup.run(&exp.plain, q, &exp.network)
            } else {
                // Greedy execution with the level's option set.
                let client = setup.client.as_ref().expect("client");
                client
                    .plan_with_options(q.sql, &q.params, &level.options, true)
                    .and_then(|plan| client.execute_plan(&plan))
                    .map(|(result, timings)| baselines::QueryRun {
                        query_number: q.number,
                        system: level.kind,
                        timings,
                        result,
                    })
            };
            if let Ok(run) = run {
                times.push(run.timings.total_seconds());
            }
        }
        if times.is_empty() {
            // Every query at this level errored; don't fabricate means
            // (exp(0/1) would print a nonexistent 1.000 s geometric mean).
            println!("{:<26} {:>12} {:>16}", level.name, "n/a", "n/a");
            continue;
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let geo = (times.iter().map(|t| t.max(1e-9).ln()).sum::<f64>() / times.len() as f64).exp();
        println!("{:<26} {:>12.3} {:>16.3}", level.name, mean, geo);
    }
    println!("\n(Paper shape: each added technique reduces both means; the planner never hurts.)");
}
