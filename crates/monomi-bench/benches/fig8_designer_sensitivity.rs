//! Figure 8: total workload runtime and designer cost estimate when the
//! designer only sees the best k of the workload queries.

use monomi_bench::{print_header, Experiment};
use monomi_core::client::{ClientConfig, DesignStrategy, MonomiClient};
use monomi_sql::parse_query;

fn main() {
    print_header(
        "Figure 8: sensitivity of the design to the number of input queries",
        "Figure 8",
    );
    let exp = Experiment::standard();
    let parsed: Vec<_> = exp
        .workload
        .iter()
        .map(|q| parse_query(q.sql).expect("parses"))
        .collect();

    // The paper's best k=4 subset contains the queries that exercise the key
    // features: scan-heavy aggregation with precomputed expressions (Q1) and
    // selective filtering over lineitem (Q4/Q19-style); we mirror that here.
    let subsets: Vec<(String, Vec<usize>)> = vec![
        ("k=0 (no input)".into(), vec![]),
        ("k=1 (Q1)".into(), vec![0]),
        ("k=2 (Q1,Q19)".into(), vec![0, 10]),
        ("k=4 (Q1,Q4,Q14,Q19)".into(), vec![0, 2, 8, 10]),
        ("k=all".into(), (0..exp.workload.len()).collect()),
    ];

    println!(
        "{:<22} {:>18} {:>22}",
        "designer input", "workload time (s)", "designer cost estimate"
    );
    for (label, idxs) in subsets {
        let input: Vec<_> = idxs.iter().map(|&i| parsed[i].clone()).collect();
        let config = ClientConfig {
            ..exp.config.clone()
        };
        let (client, outcome) =
            MonomiClient::setup(&exp.plain, &input, DesignStrategy::Designer, &config)
                .expect("setup");
        let mut total = 0.0;
        for q in &exp.workload {
            match client.execute(q.sql, &q.params) {
                Ok((_, t)) => total += t.total_seconds(),
                Err(_) => total += f64::NAN,
            }
        }
        println!(
            "{:<22} {:>18.3} {:>22.3}",
            label, total, outcome.estimated_cost
        );
    }
    println!(
        "\n(Paper shape: a few well-chosen queries reach the full-workload design's performance.)"
    );
}
