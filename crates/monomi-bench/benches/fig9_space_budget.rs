//! Figure 9: the queries affected by shrinking the space budget from S=2 to
//! S=1.4, under the ILP designer and the Space-Greedy heuristic.

use monomi_bench::{print_header, Experiment};
use monomi_core::client::{ClientConfig, DesignStrategy, MonomiClient};
use monomi_sql::parse_query;

fn main() {
    print_header(
        "Figure 9: performance under a reduced space budget",
        "Figure 9",
    );
    let exp = Experiment::standard();
    let parsed: Vec<_> = exp
        .workload
        .iter()
        .map(|q| parse_query(q.sql).expect("parses"))
        .collect();

    let configs: Vec<(&str, DesignStrategy, f64)> = vec![
        ("S=2.0 (ILP)", DesignStrategy::Designer, 2.0),
        ("S=1.4 Space-Greedy", DesignStrategy::SpaceGreedy, 1.4),
        ("S=1.4 MONOMI (ILP)", DesignStrategy::Designer, 1.4),
    ];
    let affected = [1u32, 6, 14, 18];

    println!(
        "{:<22} {}",
        "configuration",
        affected
            .map(|q| format!("{:>10}", format!("Q{q}(s)")))
            .join("")
    );
    for (label, strategy, budget) in configs {
        let config = ClientConfig {
            space_budget: Some(budget),
            ..exp.config.clone()
        };
        let (client, _) =
            MonomiClient::setup(&exp.plain, &parsed, strategy, &config).expect("setup");
        let mut row = format!("{label:<22}");
        for number in affected {
            let q = monomi_tpch::queries::query(number).expect("query");
            let t = client
                .execute(q.sql, &q.params)
                .map(|(_, t)| t.total_seconds())
                .unwrap_or(f64::NAN);
            row.push_str(&format!("{t:>10.3}"));
        }
        println!("{row}");
    }
    println!("\n(Paper shape: at S=1.4 the ILP design degrades these queries far less than Space-Greedy.)");
}
