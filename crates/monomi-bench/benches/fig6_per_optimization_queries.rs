//! Figure 6: the single query that benefits most from each optimization,
//! before and after that optimization is applied.

use monomi_bench::{print_header, Experiment};
use monomi_core::plan::PlanOptions;
use monomi_tpch::{baselines, baselines::SystemKind, queries};

fn run_with(
    setup: &baselines::SystemSetup,
    exp: &Experiment,
    number: u32,
    options: &PlanOptions,
    greedy: bool,
) -> f64 {
    let q = queries::query(number).expect("query exists");
    let client = setup.client.as_ref().expect("client");
    if greedy {
        client
            .plan_with_options(q.sql, &q.params, options, true)
            .and_then(|p| client.execute_plan(&p))
            .map(|(_, t)| t.total_seconds())
            .unwrap_or(f64::NAN)
    } else {
        setup
            .run(&exp.plain, &q, &exp.network)
            .map(|r| r.timings.total_seconds())
            .unwrap_or(f64::NAN)
    }
}

fn main() {
    print_header(
        "Figure 6: per-optimization before/after on the most-affected query",
        "Figure 6",
    );
    let exp = Experiment::standard();
    let cryptdb = baselines::build_system(
        SystemKind::CryptDbClient,
        &exp.plain,
        &exp.workload,
        &exp.config,
    )
    .expect("cryptdb");
    let greedy = baselines::build_system(
        SystemKind::ExecutionGreedy,
        &exp.plain,
        &exp.workload,
        &exp.config,
    )
    .expect("greedy");
    let monomi =
        baselines::build_system(SystemKind::Monomi, &exp.plain, &exp.workload, &exp.config)
            .expect("monomi");

    let no_precomp = PlanOptions {
        use_precomputation: false,
        use_hom_aggregation: true,
        use_prefiltering: false,
    };
    let with_precomp = PlanOptions {
        use_precomputation: true,
        use_hom_aggregation: true,
        use_prefiltering: false,
    };
    let all = PlanOptions::default();

    println!(
        "{:<34} {:>12} {:>12}",
        "optimization (query)", "before (s)", "after (s)"
    );
    // Col packing: CryptDB-style per-column HOM vs grouped packing (Q1).
    let before = run_with(&cryptdb, &exp, 1, &no_precomp, true);
    let after = run_with(&greedy, &exp, 1, &no_precomp, true);
    println!(
        "{:<34} {:>12.3} {:>12.3}",
        "+Col packing (Q1)", before, after
    );

    // Precomputation: Q1 aggregates over expressions.
    let before = run_with(&greedy, &exp, 1, &no_precomp, true);
    let after = run_with(&greedy, &exp, 1, &with_precomp, true);
    println!(
        "{:<34} {:>12.3} {:>12.3}",
        "+Precomputation (Q1)", before, after
    );

    // Precomputation also dominates Q5/Q14-style revenue expressions.
    let before = run_with(&greedy, &exp, 5, &no_precomp, true);
    let after = run_with(&greedy, &exp, 5, &with_precomp, true);
    println!(
        "{:<34} {:>12.3} {:>12.3}",
        "+Precomputation (Q5)", before, after
    );

    // Pre-filtering: Q18's HAVING SUM(l_quantity) > k.
    let before = run_with(&greedy, &exp, 18, &with_precomp, true);
    let after = run_with(&greedy, &exp, 18, &all, true);
    println!(
        "{:<34} {:>12.3} {:>12.3}",
        "+Pre-filtering (Q18)", before, after
    );

    // Planner: greedy push-everything vs cost-based plan for Q18.
    let before = run_with(&greedy, &exp, 18, &all, true);
    let after = run_with(&monomi, &exp, 18, &all, false);
    println!("{:<34} {:>12.3} {:>12.3}", "+Planner (Q18)", before, after);

    println!("\n(Paper shape: each 'after' is at or below its 'before'.)");
}
