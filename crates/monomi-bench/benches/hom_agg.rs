//! Homomorphic-aggregation hot-path benchmark: the pre-PR Paillier pipeline
//! vs. the Montgomery-resident one, at the same key size.
//!
//! Server side (the paper's §5.3 per-row cost): the seed's `paillier_sum`
//! folded each row with a schoolbook multiply followed by bit-at-a-time
//! long-division remainder; the new path keeps the accumulator in Montgomery
//! form and pays one in-place CIOS multiply per row plus a single `R^k` fixup
//! per group.
//!
//! Client side (the paper's Fig 7 bottleneck): the seed's classic decrypt
//! (one full-width `c^λ mod n²` via unwindowed square-and-multiply over the
//! two-pass Montgomery multiply) vs. the CRT split (two half-width windowed
//! exponentiations mod p² / q²).
//!
//! Like `scan_micro`, the *pre-PR* primitives are replicated in [`seed`] so
//! the baseline stays fixed even as the library improves; the current
//! non-CRT `decrypt_classic` is reported alongside for reference.
//!
//! With `MONOMI_BENCH_JSON=<path>` the measured numbers are also written as a
//! JSON snapshot (see `scripts/bench_snapshot.sh`), seeding the perf
//! trajectory across PRs. Knobs: `MONOMI_PAILLIER_BITS` (default 512, the
//! paper uses 1,024-bit n at 2,048-bit ciphertexts), `MONOMI_HOM_ROWS`
//! (default scales with `MONOMI_SCALE`).

use monomi_bench::{env_usize, print_header};
use monomi_crypto::PaillierKey;
use monomi_math::BigUint;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Faithful replicas of the seed's (pre-PR) arithmetic, so the baseline is
/// the code this PR replaced rather than the already-improved library.
mod seed {
    use monomi_math::BigUint;

    /// Little-endian 64-bit limbs of a value (the seed worked on the crate
    /// internal limb vector; the bench reconstructs it through bytes).
    pub fn limbs_le(x: &BigUint) -> Vec<u64> {
        let bytes = x.to_bytes_be();
        let mut limbs: Vec<u64> = bytes
            .rchunks(8)
            .map(|chunk| chunk.iter().fold(0u64, |acc, &b| (acc << 8) | b as u64))
            .collect();
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        limbs
    }

    fn from_limbs_le(limbs: &[u64]) -> BigUint {
        let mut bytes = Vec::with_capacity(limbs.len() * 8);
        for &l in limbs.iter().rev() {
            bytes.extend_from_slice(&l.to_be_bytes());
        }
        BigUint::from_bytes_be(&bytes)
    }

    fn cmp_limbs(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
        let a_len = a.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1);
        let b_len = b.iter().rposition(|&l| l != 0).map_or(0, |i| i + 1);
        if a_len != b_len {
            return a_len.cmp(&b_len);
        }
        for i in (0..a_len).rev() {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }

    fn sub_assign_limbs(a: &mut [u64], b: &[u64]) {
        let mut borrow = 0u64;
        for (i, ai) in a.iter_mut().enumerate() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = ai.overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *ai = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
    }

    /// The seed's `div_rem`: bit-at-a-time subtract-and-shift long division
    /// (allocating a shifted divisor copy per bit via `shr`).
    pub fn div_rem_bitwise(a: &BigUint, divisor: &BigUint) -> (BigUint, BigUint) {
        if a < divisor {
            return (BigUint::zero(), a.clone());
        }
        let shift = a.bits() - divisor.bits();
        let mut remainder = a.clone();
        let mut quotient_limbs = vec![0u64; shift / 64 + 1];
        let mut shifted = divisor.shl(shift);
        let mut i = shift as isize;
        while i >= 0 {
            if remainder >= shifted {
                remainder = remainder.sub(&shifted);
                quotient_limbs[(i as usize) / 64] |= 1u64 << ((i as usize) % 64);
            }
            shifted = shifted.shr(1);
            i -= 1;
        }
        (from_limbs_le(&quotient_limbs), remainder)
    }

    pub fn rem_bitwise(a: &BigUint, divisor: &BigUint) -> BigUint {
        div_rem_bitwise(a, divisor).1
    }

    /// The seed's Montgomery context: separate multiply-then-reduce passes
    /// over a `2k+1` limb temporary, allocated per multiplication.
    pub struct SeedMontCtx {
        mod_limbs: Vec<u64>,
        k: usize,
        n0_inv: u64,
        r1: Vec<u64>,
        r2: Vec<u64>,
    }

    impl SeedMontCtx {
        pub fn new(modulus: &BigUint) -> Self {
            let mod_limbs = limbs_le(modulus);
            let k = mod_limbs.len();
            let mut x = mod_limbs[0];
            for _ in 0..6 {
                x = x.wrapping_mul(2u64.wrapping_sub(mod_limbs[0].wrapping_mul(x)));
            }
            let r = BigUint::one().shl(64 * k);
            let r1 = r.rem(modulus);
            let r2 = r.mul(&r).rem(modulus);
            SeedMontCtx {
                mod_limbs,
                k,
                n0_inv: x.wrapping_neg(),
                r1: limbs_le(&r1),
                r2: limbs_le(&r2),
            }
        }

        /// The seed's two-pass `mont_mul` (full product, then interleaved
        /// reduction), fresh temporary per call.
        fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
            let k = self.k;
            let mut t = vec![0u64; 2 * k + 1];
            for (i, &ai) in a.iter().enumerate() {
                let mut carry: u128 = 0;
                for j in 0..k {
                    let bj = b.get(j).copied().unwrap_or(0);
                    let cur = t[i + j] as u128 + (ai as u128) * (bj as u128) + carry;
                    t[i + j] = cur as u64;
                    carry = cur >> 64;
                }
                let mut idx = i + k;
                while carry > 0 {
                    let cur = t[idx] as u128 + carry;
                    t[idx] = cur as u64;
                    carry = cur >> 64;
                    idx += 1;
                }
            }
            for i in 0..k {
                let m = t[i].wrapping_mul(self.n0_inv);
                let mut carry: u128 = 0;
                for j in 0..k {
                    let nj = self.mod_limbs[j];
                    let cur = t[i + j] as u128 + (m as u128) * (nj as u128) + carry;
                    t[i + j] = cur as u64;
                    carry = cur >> 64;
                }
                let mut idx = i + k;
                while carry > 0 {
                    let cur = t[idx] as u128 + carry;
                    t[idx] = cur as u64;
                    carry = cur >> 64;
                    idx += 1;
                }
            }
            let mut result: Vec<u64> = t[k..].to_vec();
            if cmp_limbs(&result, &self.mod_limbs) != std::cmp::Ordering::Less {
                sub_assign_limbs(&mut result, &self.mod_limbs);
            }
            result
        }

        /// The seed's `mod_pow`: unwindowed left-to-right square-and-multiply
        /// with a fresh allocation per step.
        pub fn mod_pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
            let base_m = self.mont_mul(&limbs_le(base), &self.r2);
            let mut acc = self.r1.clone();
            for i in (0..exponent.bits()).rev() {
                acc = self.mont_mul(&acc, &acc);
                if exponent.bit(i) {
                    acc = self.mont_mul(&acc, &base_m);
                }
            }
            from_limbs_le(&self.mont_mul(&acc, &[1]))
        }
    }
}

/// Best-of-N wall-clock measurement of `f`, returning seconds.
fn best_of<F: FnMut()>(n: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..n {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    print_header(
        "Homomorphic aggregation hot path: pre-PR vs Montgomery-resident",
        "§5.3 server cost and Fig 7 client decrypt cost",
    );
    let bits = env_usize("MONOMI_PAILLIER_BITS", 512);
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.002);
    let rows = env_usize(
        "MONOMI_HOM_ROWS",
        ((scale * 1_000_000.0) as usize).clamp(256, 20_000),
    );
    let decrypt_ops = env_usize("MONOMI_HOM_DECRYPTS", 16);
    println!("key: {bits}-bit n, rows per group: {rows}, decrypt ops: {decrypt_ops}\n");

    let mut rng = StdRng::seed_from_u64(0x5eed);
    let key = PaillierKey::generate(&mut rng, bits);
    let n_squared = key.n_squared().clone();

    // Bulk-encrypt the group's rows (also exercises batch_encrypt).
    let plains: Vec<BigUint> = (0..rows as u64)
        .map(|i| BigUint::from_u64(i % 997))
        .collect();
    let start = Instant::now();
    let cts = key.batch_encrypt(&mut rng, &plains);
    let encrypt_secs = start.elapsed().as_secs_f64();
    let expected_sum: u64 = (0..rows as u64).map(|i| i % 997).sum();

    // --- Server side: fold one group of `rows` ciphertexts. ---
    // Pre-PR path (the seed's exec.rs): schoolbook mul + bit-at-a-time
    // long-division rem per row, allocating fresh BigUints throughout.
    let mut old_result = BigUint::one();
    let old_secs = best_of(3, || {
        let mut acc = BigUint::one();
        for c in &cts {
            acc = seed::rem_bitwise(&acc.mul(c), &n_squared);
        }
        old_result = acc;
    });

    // Intermediate: same fold but with the now-Knuth `rem` (shows how much of
    // the win comes from division vs Montgomery residency).
    let mid_secs = best_of(3, || {
        let mut acc = BigUint::one();
        for c in &cts {
            acc = acc.mul(c).rem(&n_squared);
        }
        std::hint::black_box(&acc);
    });

    // New path: Montgomery-resident accumulator, one in-place CIOS multiply
    // per row, single R^k fixup (what AggState::PaillierSum now does).
    let mut new_result = BigUint::one();
    let new_secs = best_of(3, || {
        new_result = key.sum_ciphertexts(&cts);
    });

    assert_eq!(old_result, new_result, "old and new paths must agree");
    assert_eq!(key.decrypt_u64(&new_result), expected_sum);

    let old_rows_sec = rows as f64 / old_secs;
    let mid_rows_sec = rows as f64 / mid_secs;
    let new_rows_sec = rows as f64 / new_secs;
    println!("server paillier_sum ({rows} rows/group):");
    println!("  pre-PR (mul + bitwise rem):   {old_rows_sec:>12.0} rows/s  ({old_secs:.4}s)");
    println!("  mul + Knuth-D rem:            {mid_rows_sec:>12.0} rows/s  ({mid_secs:.4}s)");
    println!("  Montgomery-resident CIOS:     {new_rows_sec:>12.0} rows/s  ({new_secs:.4}s)");
    println!(
        "  speedup vs pre-PR:            {:>11.2}x\n",
        new_rows_sec / old_rows_sec
    );

    // --- Client side: decrypt the aggregate. ---
    // Pre-PR decrypt replica: c^λ mod n² with the seed's unwindowed two-pass
    // Montgomery exponentiation, then L and the final µ multiplication with
    // bitwise division. λ and µ are private to the key, so same-cost stand-ins
    // of identical bit widths are used (the work depends only on operand
    // sizes, not values).
    let seed_ctx = seed::SeedMontCtx::new(&n_squared);
    let lambda_proxy = {
        // λ = lcm(p-1, q-1) has ~n.bits() bits; use an odd dense value.
        let mut v = BigUint::one();
        for _ in 0..key.n().bits() / 64 {
            v = v.shl(64).add(&BigUint::from_u64(0xdead_beef_cafe_f00d));
        }
        v
    };
    let mu_proxy = key.n().sub(&BigUint::from_u64(3));
    let old_decrypt_secs = best_of(2, || {
        for _ in 0..decrypt_ops {
            let u = seed_ctx.mod_pow(&new_result, &lambda_proxy);
            let l = seed::div_rem_bitwise(&u.sub(&BigUint::one()), key.n()).0;
            std::hint::black_box(seed::rem_bitwise(&l.mul(&mu_proxy), key.n()));
        }
    }) / decrypt_ops as f64;

    // Current non-CRT path (windowed CIOS, for reference).
    let classic_secs = best_of(3, || {
        for _ in 0..decrypt_ops {
            std::hint::black_box(key.decrypt_classic(&new_result));
        }
    }) / decrypt_ops as f64;

    // New CRT path.
    let crt_secs = best_of(3, || {
        for _ in 0..decrypt_ops {
            std::hint::black_box(key.decrypt(&new_result));
        }
    }) / decrypt_ops as f64;
    assert_eq!(key.decrypt(&new_result), key.decrypt_classic(&new_result));

    let old_ops = 1.0 / old_decrypt_secs;
    let classic_ops = 1.0 / classic_secs;
    let crt_ops = 1.0 / crt_secs;
    println!("client Paillier decrypt:");
    println!("  pre-PR classic (replica):     {old_ops:>12.0} ops/s");
    println!("  classic, windowed CIOS:       {classic_ops:>12.0} ops/s");
    println!("  CRT (mod p², q²):             {crt_ops:>12.0} ops/s");
    println!(
        "  speedup vs pre-PR:            {:>11.2}x  (vs current classic: {:.2}x)\n",
        crt_ops / old_ops,
        crt_ops / classic_ops
    );
    println!(
        "bulk encrypt: {:.0} ops/s ({} values in {:.3}s)",
        rows as f64 / encrypt_secs,
        rows,
        encrypt_secs
    );

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"hom_agg\",\n  \"paillier_bits\": {bits},\n  \"rows\": {rows},\n  \
             \"server_rows_per_sec_pre_pr\": {old_rows_sec:.1},\n  \
             \"server_rows_per_sec_knuth_rem\": {mid_rows_sec:.1},\n  \
             \"server_rows_per_sec_mont\": {new_rows_sec:.1},\n  \
             \"server_speedup\": {:.2},\n  \
             \"decrypt_ops_per_sec_pre_pr\": {old_ops:.1},\n  \
             \"decrypt_ops_per_sec_classic\": {classic_ops:.1},\n  \
             \"decrypt_ops_per_sec_crt\": {crt_ops:.1},\n  \
             \"decrypt_speedup\": {:.2},\n  \
             \"encrypt_ops_per_sec\": {:.1}\n}}\n",
            new_rows_sec / old_rows_sec,
            crt_ops / old_ops,
            rows as f64 / encrypt_secs,
        );
        std::fs::write(&path, json).expect("write bench snapshot JSON");
        println!("wrote snapshot to {path}");
    }
}
