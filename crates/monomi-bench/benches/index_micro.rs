//! Secondary-index microbenchmark: DET point lookups and OPE range probes
//! against the same scans without indexes — the access-path change this
//! repo's encrypted indexes buy (O(result) row touches instead of O(table)).
//!
//! A synthetic encrypted-schema table (`k_det` equality keys, `v_ope`
//! ordered values, a payload column) is loaded in the regime where zone
//! maps fail and only a real index helps: values are mostly ordered but
//! every segment carries one far-flung outlier, so each segment's
//! `[min, max]` spans nearly the whole domain (zone maps prune nothing)
//! while a narrow range's rows still live in one or two segments (posting
//! intersections prune the rest unread). DET keys are striped so every
//! key's rows sit in one segment but no segment's key range is prunable.
//! Three copies run the same queries:
//!
//! * **indexed disk** — per-segment `.idx` files built at load time;
//! * **unindexed disk** — the same store with `IndexMode::Off` at load;
//! * **memory** — the in-memory backend, the byte-identity reference.
//!
//! Measurements (per query: a DET point lookup and a 1% OPE range), taken
//! with a cold segment cache each iteration — the disk-resident regime of
//! §8, with index blocks resident in their own byte-budgeted cache:
//! * wall-clock, indexed vs unindexed (median of `MONOMI_BENCH_ITERS`);
//! * `rows_scanned` / `index_rows_fetched` / `postings_bytes_read`;
//! * byte-identity of all three copies at 1 and 4 threads (asserted).
//!
//! The bench *fails* unless the indexed runs scan ≥10× fewer rows and are
//! ≥5× faster than the unindexed scans — the regression guard for the
//! index subsystem.
//!
//! Knobs: `MONOMI_INDEX_ROWS` (default 40000), `MONOMI_BENCH_ITERS`
//! (default 9), `MONOMI_INDEX_CACHE_BYTES`. With `MONOMI_BENCH_JSON=<path>`
//! the numbers are written as a JSON snapshot (see
//! `scripts/bench_snapshot.sh`).

use monomi_bench::{env_usize, print_header};
use monomi_engine::{
    ColumnDef, ColumnType, Database, ExecOptions, ExecStats, ResultSet, TableSchema, Value,
};
use monomi_store::{IndexMode, Store, StoreOptions};
use std::time::Instant;

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn schema() -> TableSchema {
    TableSchema::new(
        "t",
        vec![
            ColumnDef::new("k_det", ColumnType::Str),
            ColumnDef::new("v_ope", ColumnType::Int),
            ColumnDef::new("p", ColumnType::Int),
        ],
    )
}

/// Rows per segment; pinned (not the store default) because the data layout
/// below is built against this block size.
const SEGMENT_ROWS: usize = 4096;

/// Mostly-ordered values with one far-flung outlier per segment-sized block:
/// block `b`'s first value is swapped with its mirror near the end of the
/// table, so every block's `[min, max]` spans nearly the whole domain and
/// zone maps keep every segment for any mid-domain range — while the rows of
/// a narrow range still physically sit in one or two blocks. DET keys are
/// striped across blocks (block `b` holds keys `b, b + nblocks, ...`, ten
/// consecutive rows each): every key's rows sit in exactly one block, but
/// every block's key `[min, max]` spans nearly the whole key domain, so zone
/// maps cannot prune a point lookup either.
fn make_rows(n: usize) -> Vec<Vec<Value>> {
    let nblocks = n.div_ceil(SEGMENT_ROWS);
    let mut vs: Vec<usize> = (0..n).collect();
    let mut o = 0;
    while o < n / 2 {
        vs.swap(o, n - 1 - o);
        o += SEGMENT_ROWS;
    }
    vs.into_iter()
        .enumerate()
        .map(|(i, v)| {
            let key = (i / SEGMENT_ROWS) + nblocks * ((i % SEGMENT_ROWS) / 10);
            vec![
                Value::Str(format!("key_{key:06}")),
                Value::Int(v as i64),
                Value::Int((v % 97) as i64),
            ]
        })
        .collect()
}

fn disk_db(tag: &str, index_mode: IndexMode, rows: Vec<Vec<Value>>) -> Database {
    let dir = std::env::temp_dir().join(format!("monomi-index-micro-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open_with(
        &dir,
        StoreOptions {
            index_mode,
            segment_rows: SEGMENT_ROWS,
            ..StoreOptions::default()
        },
    )
    .expect("store opens");
    let mut db = Database::with_store(store);
    db.create_table(schema());
    db.bulk_load("t", rows).expect("bulk load");
    db
}

fn cleanup(tag: &str) {
    let dir = std::env::temp_dir().join(format!("monomi-index-micro-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
}

fn run(db: &Database, sql: &str, opts: &ExecOptions) -> (ResultSet, ExecStats) {
    db.execute_sql_with(sql, &[], opts).expect("query runs")
}

struct QueryReport {
    indexed_s: f64,
    unindexed_s: f64,
    speedup: f64,
    scan_reduction: f64,
    indexed_stats: ExecStats,
    unindexed_stats: ExecStats,
}

fn bench_query(
    label: &str,
    sql: &str,
    mem: &Database,
    indexed: &Database,
    unindexed: &Database,
    iters: usize,
) -> QueryReport {
    // Byte-identity across all three copies at 1 and 4 threads, with the
    // index modes forced explicitly so the ambient MONOMI_INDEXES setting
    // cannot quietly turn this into an index-vs-index comparison.
    let (reference, _) = run(mem, sql, &ExecOptions::serial());
    let expected = format!("{:?}", reference.rows);
    for threads in [1usize, 4] {
        let on = ExecOptions::with_threads(threads).with_index_mode(IndexMode::All);
        let off = ExecOptions::with_threads(threads).with_index_mode(IndexMode::Off);
        for (db, opts, leg) in [
            (indexed, &on, "indexed"),
            (indexed, &off, "indexed-db/probes-off"),
            (unindexed, &on, "unindexed"),
        ] {
            let (rs, _) = run(db, sql, opts);
            assert_eq!(
                expected,
                format!("{:?}", rs.rows),
                "{label}: {leg} diverged at {threads} threads"
            );
        }
    }

    let on = ExecOptions::serial().with_index_mode(IndexMode::All);
    let (_, indexed_stats) = run(indexed, sql, &on);
    let (_, unindexed_stats) = run(unindexed, sql, &on);
    assert!(
        indexed_stats.index_probes > 0,
        "{label}: the indexed copy must probe"
    );
    assert_eq!(
        unindexed_stats.index_probes, 0,
        "{label}: the unindexed copy must not probe"
    );

    // Timed legs run against a cold segment cache — the disk-resident
    // regime of §8, where the unindexed scan must decode every segment and
    // probes let the indexed copy decode only the segments holding the
    // result. Index blocks stay resident (they are a few percent of the
    // data and live in their own byte-budgeted cache), matching the
    // indexes-hot/data-cold assumption the cost model prices.
    let drop_segments = |db: &Database| {
        if let Some(store) = db.store() {
            store.cache().clear();
        }
    };
    let mut indexed_samples = Vec::with_capacity(iters);
    let mut unindexed_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        drop_segments(indexed);
        let start = Instant::now();
        std::hint::black_box(run(indexed, sql, &on));
        indexed_samples.push(start.elapsed().as_secs_f64());
        drop_segments(unindexed);
        let start = Instant::now();
        std::hint::black_box(run(unindexed, sql, &on));
        unindexed_samples.push(start.elapsed().as_secs_f64());
    }
    let indexed_s = median_seconds(indexed_samples);
    let unindexed_s = median_seconds(unindexed_samples);
    let speedup = unindexed_s / indexed_s.max(1e-12);
    let scan_reduction =
        unindexed_stats.rows_scanned as f64 / (indexed_stats.rows_scanned as f64).max(1.0);

    println!("{label}:");
    println!(
        "  unindexed: {:>10.3}ms  {:>8} rows scanned",
        unindexed_s * 1e3,
        unindexed_stats.rows_scanned,
    );
    println!(
        "  indexed:   {:>10.3}ms  {:>8} rows scanned, {} probes, {} rows fetched, {} posting bytes",
        indexed_s * 1e3,
        indexed_stats.rows_scanned,
        indexed_stats.index_probes,
        indexed_stats.index_rows_fetched,
        indexed_stats.postings_bytes_read,
    );
    println!("  speedup: {speedup:>6.2}x wall-clock, {scan_reduction:>8.1}x fewer rows scanned");

    assert!(
        scan_reduction >= 10.0,
        "{label}: index must cut rows scanned >=10x (got {scan_reduction:.1}x)"
    );
    assert!(
        speedup >= 5.0,
        "{label}: index must be >=5x faster (got {speedup:.2}x)"
    );
    QueryReport {
        indexed_s,
        unindexed_s,
        speedup,
        scan_reduction,
        indexed_stats,
        unindexed_stats,
    }
}

fn main() {
    print_header(
        "Index microbenchmark: DET point lookups and OPE range probes",
        "encrypted access paths — postings seed the scan, O(result) not O(table)",
    );
    let n = env_usize("MONOMI_INDEX_ROWS", 40_000).max(1000);
    let iters = env_usize("MONOMI_BENCH_ITERS", 9).max(1);

    let rows = make_rows(n);
    let mut mem = Database::in_memory();
    mem.create_table(schema());
    mem.bulk_load("t", rows.clone()).expect("memory load");
    let indexed = disk_db("indexed", IndexMode::All, rows.clone());
    let unindexed = disk_db("unindexed", IndexMode::Off, rows);

    let store = indexed.store().expect("disk backed");
    println!(
        "t: {} rows, {} segments, {:.1} MB stored, indexes: {}\n",
        n,
        store.table_meta("t").map(|m| m.segments.len()).unwrap_or(0),
        indexed.total_stored_bytes() as f64 / 1e6,
        store
            .table_meta("t")
            .map(|m| m.segments.iter().filter(|s| s.index.is_some()).count())
            .unwrap_or(0),
    );

    // DET point lookup: one of n/10 equality classes, 10 rows.
    let point_sql = "SELECT v_ope, p FROM t WHERE k_det = 'key_000042'";
    // Q6-shaped OPE range aggregate covering 1% of the value domain — two
    // one-sided conjuncts the probe planner merges into a single range.
    let (lo, hi) = (n / 2, n / 2 + n / 100);
    let range_sql = format!("SELECT SUM(p), COUNT(*) FROM t WHERE v_ope >= {lo} AND v_ope < {hi}");

    let point = bench_query(
        "DET point lookup",
        point_sql,
        &mem,
        &indexed,
        &unindexed,
        iters,
    );
    println!();
    let range = bench_query(
        "OPE 1% range",
        &range_sql,
        &mem,
        &indexed,
        &unindexed,
        iters,
    );

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"index_micro\",\n  \"rows\": {n},\n  \
             \"point_unindexed_ms\": {pu:.3},\n  \"point_indexed_ms\": {pi:.3},\n  \
             \"point_speedup\": {ps:.2},\n  \"point_scan_reduction\": {pr:.1},\n  \
             \"point_rows_scanned_indexed\": {prs},\n  \
             \"point_rows_scanned_unindexed\": {pru},\n  \
             \"range_unindexed_ms\": {ru:.3},\n  \"range_indexed_ms\": {ri:.3},\n  \
             \"range_speedup\": {rs:.2},\n  \"range_scan_reduction\": {rr:.1},\n  \
             \"range_rows_scanned_indexed\": {rrs},\n  \
             \"range_rows_scanned_unindexed\": {rru},\n  \
             \"postings_bytes_read\": {pb}\n}}\n",
            pu = point.unindexed_s * 1e3,
            pi = point.indexed_s * 1e3,
            ps = point.speedup,
            pr = point.scan_reduction,
            prs = point.indexed_stats.rows_scanned,
            pru = point.unindexed_stats.rows_scanned,
            ru = range.unindexed_s * 1e3,
            ri = range.indexed_s * 1e3,
            rs = range.speedup,
            rr = range.scan_reduction,
            rrs = range.indexed_stats.rows_scanned,
            rru = range.unindexed_stats.rows_scanned,
            pb = point.indexed_stats.postings_bytes_read + range.indexed_stats.postings_bytes_read,
        );
        std::fs::write(&path, json).expect("write bench snapshot JSON");
        println!("\nwrote snapshot to {path}");
    }

    cleanup("indexed");
    cleanup("unindexed");
}
