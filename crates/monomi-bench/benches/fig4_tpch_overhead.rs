//! Figure 4: execution time of TPC-H queries under CryptDB+Client,
//! Execution-Greedy, and MONOMI, normalized to plaintext execution.

use monomi_bench::{print_header, Experiment};
use monomi_tpch::{baselines, baselines::SystemKind};

fn main() {
    print_header("Figure 4: per-query overhead vs. plaintext", "Figure 4");
    let exp = Experiment::standard();
    let systems = [
        SystemKind::CryptDbClient,
        SystemKind::ExecutionGreedy,
        SystemKind::Monomi,
    ];
    let mut setups = Vec::new();
    for kind in systems {
        eprintln!("setting up {kind}...");
        setups.push(
            baselines::build_system(kind, &exp.plain, &exp.workload, &exp.config)
                .expect("system setup"),
        );
    }

    println!(
        "{:<5} {:>12} {:>16} {:>18} {:>12}",
        "query", "plaintext(s)", "CryptDB+Client", "Execution-Greedy", "MONOMI"
    );
    let mut overheads: Vec<f64> = Vec::new();
    for q in &exp.workload {
        let plain_run =
            baselines::run_plaintext(&exp.plain, q, &exp.network).expect("plaintext run");
        let base = plain_run.timings.total_seconds().max(1e-9);
        let mut row = format!("Q{:<4} {:>12.3}", q.number, base);
        for setup in &setups {
            match setup.run(&exp.plain, q, &exp.network) {
                Ok(run) => {
                    let ratio = run.timings.total_seconds() / base;
                    row.push_str(&format!(" {:>15.2}x", ratio));
                    if setup.kind == SystemKind::Monomi {
                        overheads.push(ratio);
                    }
                }
                Err(e) => row.push_str(&format!(" {:>15}", format!("err:{}", e.message))),
            }
        }
        println!("{row}");
    }
    overheads.sort_by(f64::total_cmp);
    if !overheads.is_empty() {
        let median = overheads[overheads.len() / 2];
        println!(
            "\nMONOMI median overhead: {:.2}x (paper: 1.24x, range 1.03x–2.33x)",
            median
        );
    }
}
