//! Figure 7: ratio of client CPU time under MONOMI to the time a local
//! plaintext execution of the same query would take.

use monomi_bench::{print_header, Experiment};
use monomi_tpch::{baselines, baselines::SystemKind};

fn main() {
    print_header(
        "Figure 7: client CPU time vs. local plaintext execution",
        "Figure 7",
    );
    let exp = Experiment::standard();
    let monomi =
        baselines::build_system(SystemKind::Monomi, &exp.plain, &exp.workload, &exp.config)
            .expect("monomi setup");

    println!(
        "{:<6} {:>16} {:>16} {:>10}",
        "query", "client CPU (s)", "local plain (s)", "ratio"
    );
    for q in &exp.workload {
        let plain_run = baselines::run_plaintext(&exp.plain, q, &exp.network).expect("plaintext");
        let monomi_run = match monomi.run(&exp.plain, q, &exp.network) {
            Ok(r) => r,
            Err(e) => {
                println!("Q{:<5} error: {}", q.number, e.message);
                continue;
            }
        };
        let local = plain_run.timings.server_seconds.max(1e-9);
        let client_cpu = monomi_run.timings.client_cpu_seconds();
        println!(
            "Q{:<5} {:>16.4} {:>16.4} {:>10.3}",
            q.number,
            client_cpu,
            local,
            client_cpu / local
        );
    }
    println!("\n(Paper shape: ratio < 1 for most queries; decrypt-heavy queries exceed 1.)");
}
