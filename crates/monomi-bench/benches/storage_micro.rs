//! Storage microbenchmark for the persistent segment store: cold vs. cached
//! scans, and zone-map-pruned vs. unpruned Q6-shaped range scans.
//!
//! Two disk-backed copies of TPC-H `lineitem` are bulk-loaded into temporary
//! segment stores: one *clustered* on `l_shipdate` (sorted before loading, so
//! consecutive segments carry disjoint date ranges — the shape zone maps can
//! prune) and one in generator order (every segment spans the whole date
//! range, so nothing can be skipped). Both must return identical results —
//! pruning is result-invisible by construction.
//!
//! Measurements:
//! * **cold scan** — full-table aggregate with an empty segment cache (every
//!   segment decoded from disk, checksums verified);
//! * **cached scan** — the same query again, served from the byte-budgeted
//!   cache (`MONOMI_CACHE_BYTES`);
//! * **Q6 pruned vs. unpruned** — the paper's Q6 predicate on the clustered
//!   vs. unclustered copy, reporting `segments_pruned`, real `bytes_scanned`,
//!   and the wall-clock ratio.
//!
//! Knobs: `MONOMI_SCALE` (default 0.02), `MONOMI_BENCH_ITERS` (default 5),
//! `MONOMI_CACHE_BYTES`. With `MONOMI_BENCH_JSON=<path>` the numbers are
//! written as a JSON snapshot (see `scripts/bench_snapshot.sh`).

use monomi_bench::{env_usize, print_header};
use monomi_engine::{Database, ExecStats, ResultSet, Value};
use monomi_store::{Store, StoreOptions};
use monomi_tpch::datagen;
use std::time::Instant;

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Bulk-loads `rows` into a fresh disk-backed database at a temp directory.
fn disk_db(tag: &str, schema: monomi_engine::TableSchema, rows: Vec<Vec<Value>>) -> Database {
    let dir =
        std::env::temp_dir().join(format!("monomi-storage-micro-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open_with(&dir, StoreOptions::default()).expect("store opens");
    let mut db = Database::with_store(store);
    db.create_table(schema);
    db.bulk_load("lineitem", rows).expect("bulk load");
    db
}

fn cleanup(db: &Database, tag: &str) {
    let _ = db;
    let dir =
        std::env::temp_dir().join(format!("monomi-storage-micro-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
}

fn run(db: &Database, sql: &str) -> (ResultSet, ExecStats) {
    db.execute_sql(sql, &[]).expect("query runs")
}

fn main() {
    print_header(
        "Storage microbenchmark: segment store cold/cached/pruned scans",
        "the disk-resident server of §8 (caches flushed, queries hit disk)",
    );
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.02);
    let iters = env_usize("MONOMI_BENCH_ITERS", 5).max(1);

    let plain = datagen::generate(&datagen::GeneratorConfig {
        scale_factor: scale,
        ..Default::default()
    });
    let lineitem = plain.table("lineitem").expect("lineitem exists");
    let schema = lineitem.schema().clone();
    let shipdate = schema.column_index("l_shipdate").expect("l_shipdate");
    let mut rows: Vec<Vec<Value>> = lineitem.rows();
    let unclustered = disk_db("unclustered", schema.clone(), rows.clone());
    rows.sort_by(|a, b| a[shipdate].compare(&b[shipdate]));
    let clustered = disk_db("clustered", schema, rows);
    drop(plain);

    let store = clustered.store().expect("disk backed");
    println!(
        "lineitem: {} rows, {} segments, {:.1} MB stored ({:.1} MB logical), MONOMI_SCALE={scale}\n",
        clustered.table("lineitem").unwrap().row_count(),
        store.table_meta("lineitem").map(|m| m.segments.len()).unwrap_or(0),
        clustered.total_stored_bytes() as f64 / 1e6,
        clustered.total_size_bytes() as f64 / 1e6,
    );

    // --- Cold vs. cached full-table scan -------------------------------
    let full_sql = "SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem";
    let mut cold_samples = Vec::with_capacity(iters);
    let mut warm_samples = Vec::with_capacity(iters);
    let mut reference: Option<String> = None;
    for _ in 0..iters {
        store.cache().clear();
        let start = Instant::now();
        let (rs_cold, _) = run(&clustered, full_sql);
        cold_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let (rs_warm, _) = run(&clustered, full_sql);
        warm_samples.push(start.elapsed().as_secs_f64());
        let cold_fmt = format!("{:?}", rs_cold.rows);
        assert_eq!(
            cold_fmt,
            format!("{:?}", rs_warm.rows),
            "cache changed results"
        );
        if let Some(prev) = &reference {
            assert_eq!(prev, &cold_fmt, "cold scans disagree");
        }
        reference = Some(cold_fmt);
    }
    let rows_total = clustered.table("lineitem").unwrap().row_count() as f64;
    let (cold_s, warm_s) = (median_seconds(cold_samples), median_seconds(warm_samples));
    let cache_speedup = cold_s / warm_s.max(1e-12);
    println!("full-table aggregate ({} iters, median):", iters);
    println!(
        "  cold (cache cleared):   {:>10.3}ms  {:>12.0} rows/s",
        cold_s * 1e3,
        rows_total / cold_s.max(1e-12)
    );
    println!(
        "  cached:                 {:>10.3}ms  {:>12.0} rows/s",
        warm_s * 1e3,
        rows_total / warm_s.max(1e-12)
    );
    println!("  cache speedup:          {cache_speedup:>9.2}x");
    let (hits, misses) = store.cache().stats();
    println!("  cache hits/misses so far: {hits}/{misses}");

    // --- Pruned vs. unpruned Q6-shaped scan ----------------------------
    let q6_sql = "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
                  WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                  AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24";
    let (expected, unpruned_stats) = run(&unclustered, q6_sql);
    let (got, pruned_stats) = run(&clustered, q6_sql);
    assert_eq!(
        format!("{:?}", expected.rows),
        format!("{:?}", got.rows),
        "pruning changed Q6's answer"
    );
    assert!(
        pruned_stats.segments_pruned > 0,
        "clustered Q6 scan must prune segments (got {})",
        pruned_stats.segments_pruned
    );
    assert!(
        pruned_stats.bytes_scanned < unpruned_stats.bytes_scanned,
        "pruned scan must read fewer real bytes"
    );
    let mut pruned_samples = Vec::with_capacity(iters);
    let mut unpruned_samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(run(&clustered, q6_sql));
        pruned_samples.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(run(&unclustered, q6_sql));
        unpruned_samples.push(start.elapsed().as_secs_f64());
    }
    let (pruned_s, unpruned_s) = (
        median_seconds(pruned_samples),
        median_seconds(unpruned_samples),
    );
    let prune_speedup = unpruned_s / pruned_s.max(1e-12);
    println!("\nQ6-shaped selective scan (clustered vs. unclustered load):");
    println!(
        "  unpruned:  {:>10.3}ms  {:>3}/{:<3} segments read, {:>9} bytes",
        unpruned_s * 1e3,
        unpruned_stats.segments_read,
        unpruned_stats.segments_read + unpruned_stats.segments_pruned,
        unpruned_stats.bytes_scanned,
    );
    println!(
        "  pruned:    {:>10.3}ms  {:>3}/{:<3} segments read, {:>9} bytes ({} pruned)",
        pruned_s * 1e3,
        pruned_stats.segments_read,
        pruned_stats.segments_read + pruned_stats.segments_pruned,
        pruned_stats.bytes_scanned,
        pruned_stats.segments_pruned,
    );
    println!("  prune speedup: {prune_speedup:>6.2}x");

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let json = format!(
            "{{\n  \"bench\": \"storage_micro\",\n  \"rows\": {rows_total:.0},\n  \
             \"stored_bytes\": {stored},\n  \
             \"cold_scan_ms\": {cold:.3},\n  \"cached_scan_ms\": {warm:.3},\n  \
             \"cache_speedup\": {cache_speedup:.2},\n  \
             \"q6_unpruned_ms\": {unpruned:.3},\n  \"q6_pruned_ms\": {pruned:.3},\n  \
             \"q6_prune_speedup\": {prune_speedup:.2},\n  \
             \"q6_segments_pruned\": {segs_pruned},\n  \
             \"q6_bytes_scanned_pruned\": {bytes_pruned},\n  \
             \"q6_bytes_scanned_unpruned\": {bytes_unpruned}\n}}\n",
            stored = clustered.total_stored_bytes(),
            cold = cold_s * 1e3,
            warm = warm_s * 1e3,
            unpruned = unpruned_s * 1e3,
            pruned = pruned_s * 1e3,
            segs_pruned = pruned_stats.segments_pruned,
            bytes_pruned = pruned_stats.bytes_scanned,
            bytes_unpruned = unpruned_stats.bytes_scanned,
        );
        std::fs::write(&path, json).expect("write bench snapshot JSON");
        println!("\nwrote snapshot to {path}");
    }

    cleanup(&clustered, "clustered");
    cleanup(&unclustered, "unclustered");
}
