//! Observability microbenchmark: what does tracing cost?
//!
//! Runs the Q6-shaped selective scan through the in-process transport twice —
//! untraced (trace id zero: the engine takes no timestamps and allocates no
//! spans) and traced (per-operator spans collected and returned) — and
//! reports the relative overhead. The contract is that tracing is pay-as-you-
//! go: untraced execution must not regress, and traced execution should stay
//! within a few percent on a scan-dominated query (the span count per query
//! is a handful, so the cost is a few `Instant` reads).
//!
//! Results must be byte-identical traced vs untraced (asserted). With
//! `MONOMI_BENCH_JSON=<path>` the numbers are written as a JSON snapshot for
//! `scripts/bench_snapshot.sh`. Knobs: `MONOMI_SCALE`, `MONOMI_BENCH_ITERS`.

use monomi_bench::{env_usize, print_header};
use monomi_core::{InProcessTransport, ServerTransport};
use monomi_engine::ExecOptions;
use monomi_obs::{Stopwatch, TraceId, TraceIdGen};
use monomi_sql::parse_query;
use monomi_tpch::datagen;

/// Overhead above which the run is flagged — the observability issue's floor
/// for a Q6-shaped scan. Reported, not asserted: wall-clock on shared CI
/// boxes is advisory.
const OVERHEAD_FLOOR_PCT: f64 = 2.0;

fn main() {
    print_header(
        "Tracing overhead: traced vs untraced Q6-shaped scan, in-process",
        "the pay-as-you-go contract of the observability layer",
    );
    let iters = env_usize("MONOMI_BENCH_ITERS", 20);
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.002);
    let opts = ExecOptions::serial();

    let db = datagen::generate(&datagen::GeneratorConfig {
        scale_factor: scale,
        seed: 42,
    });
    let scan_rows = db.table("lineitem").expect("lineitem").row_count();
    let transport = InProcessTransport::new(db);
    let q6 = parse_query(
        "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' \
         AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR \
         AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
    )
    .unwrap();
    let ids = TraceIdGen::new(0xbe_c0);

    // Interleave the two modes so frequency scaling and cache state hit both
    // equally; keep the best of N for each.
    let mut untraced_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut span_count = 0usize;
    let baseline = transport.execute(&q6, &opts).expect("warmup");
    for _ in 0..iters {
        let watch = Stopwatch::start();
        let plain = transport.execute(&q6, &opts).expect("untraced");
        untraced_best = untraced_best.min(watch.seconds());

        let watch = Stopwatch::start();
        let traced = transport
            .execute_traced(&q6, &opts, ids.next_id())
            .expect("traced");
        traced_best = traced_best.min(watch.seconds());

        assert_eq!(
            format!("{:?}", plain.result),
            format!("{:?}", traced.result),
            "tracing changed the result"
        );
        assert_eq!(
            format!("{:?}", baseline.result),
            format!("{:?}", traced.result),
            "results drifted across iterations"
        );
        assert!(!traced.spans.is_empty(), "traced run returned no spans");
        span_count = traced.spans.iter().map(|s| s.count()).sum();
    }
    let untraced_trace = transport
        .execute_traced(&q6, &opts, TraceId::ZERO)
        .expect("zero trace");
    assert!(
        untraced_trace.spans.is_empty(),
        "a zero trace id must collect no spans"
    );

    let overhead_pct = (traced_best - untraced_best).max(0.0) / untraced_best.max(1e-12) * 100.0;
    println!("q6_scan ({scan_rows} rows, serial, best of {iters}):");
    println!("  untraced:        {:>10.1} us", untraced_best * 1e6);
    println!("  traced:          {:>10.1} us", traced_best * 1e6);
    println!("  spans per query: {span_count:>10}");
    println!("  overhead:        {overhead_pct:>9.2} %");
    if overhead_pct > OVERHEAD_FLOOR_PCT {
        println!("  WARNING: overhead above the {OVERHEAD_FLOOR_PCT}% floor");
    }

    if let Ok(path) = std::env::var("MONOMI_BENCH_JSON") {
        let body = format!(
            "  \"bench\": \"obs_micro\",\n  \"scan_rows\": {scan_rows},\n  \
             \"untraced_us\": {:.1},\n  \"traced_us\": {:.1},\n  \
             \"spans_per_query\": {span_count},\n  \"overhead_pct\": {overhead_pct:.2}",
            untraced_best * 1e6,
            traced_best * 1e6,
        );
        std::fs::write(&path, format!("{{\n{body}\n}}\n")).expect("write bench snapshot JSON");
        println!("wrote snapshot to {path}");
    }
}
