//! Table 3: per-table count of columns at each weakest encryption level
//! (strong RND/HOM/SEARCH, DET, OPE) in the design MONOMI chooses for TPC-H.

use monomi_bench::{print_header, Experiment};
use monomi_tpch::{baselines, baselines::SystemKind};

fn main() {
    print_header(
        "Table 3: encryption schemes chosen per TPC-H column",
        "Table 3",
    );
    let exp = Experiment::standard();
    let monomi =
        baselines::build_system(SystemKind::Monomi, &exp.plain, &exp.workload, &exp.config)
            .expect("monomi setup");
    let design = monomi.client.as_ref().expect("client").design();

    println!(
        "{:<12} {:>8} {:>20} {:>6}",
        "table", "columns", "RND/HOM/SEARCH", "DET"
    );
    println!("{:>56}", "OPE");
    println!("{:-<60}", "");
    for (table, summary) in design.security_summary() {
        let base_total: usize = summary.base.iter().sum();
        let pre_total: usize = summary.precomputed.iter().sum();
        println!(
            "{:<12} {:>5}+{:<2} {:>14}+{:<2} {:>4}+{:<2} {:>4}+{:<2}",
            table,
            base_total,
            pre_total,
            summary.base[0],
            summary.precomputed[0],
            summary.base[1],
            summary.precomputed[1],
            summary.base[2],
            summary.precomputed[2],
        );
    }
    println!(
        "\n(Numbers after '+' are precomputed expression columns, as in the paper's Table 3.)"
    );
    println!(
        "(Paper shape: OPE is rare and concentrated in lineitem; no plaintext is ever stored.)"
    );
}
