//! Scan microbenchmark: the seed's row-materializing base-table scan vs. the
//! vectorized selection-vector scan with late materialization, on TPC-H
//! Q1/Q6-shaped single-table filters over `lineitem`.
//!
//! The old scan clones every `Value` of every row before a single predicate
//! runs; the new scan evaluates compiled predicates directly over the column
//! slices and clones only the survivors' referenced columns. Prints per-scan
//! timings and the speedup (the PR's acceptance bar is ≥2x on the selective
//! Q6-shaped filter).

use monomi_bench::print_header;
use monomi_engine::expr::eval;
use monomi_engine::{
    apply_predicate, compile_predicate, EvalContext, RowSchema, SelectionVector, Table, Value,
};
use monomi_sql::parse_query;
use monomi_tpch::datagen;
use std::time::Instant;

/// A named single-table filter plus the columns the query would materialize.
struct ScanCase {
    name: &'static str,
    where_sql: &'static str,
    /// Column names referenced by the full query (projection + predicates):
    /// what late materialization keeps.
    referenced: &'static [&'static str],
}

const CASES: &[ScanCase] = &[
    ScanCase {
        name: "Q6-shaped (selective)",
        where_sql: "l_shipdate >= DATE '1994-01-01' \
                    AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR \
                    AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24",
        referenced: &["l_extendedprice", "l_discount", "l_shipdate", "l_quantity"],
    },
    ScanCase {
        name: "Q1-shaped (low selectivity)",
        where_sql: "l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY",
        referenced: &[
            "l_returnflag",
            "l_linestatus",
            "l_quantity",
            "l_extendedprice",
            "l_discount",
            "l_tax",
            "l_shipdate",
        ],
    },
];

/// The seed's scan: materialize every row of the table, filter row-at-a-time,
/// then keep only the referenced columns of the survivors.
fn old_scan(
    table: &Table,
    schema: &RowSchema,
    pred: &monomi_sql::ast::Expr,
    referenced: &[usize],
) -> Vec<Vec<Value>> {
    let ctx = EvalContext::with_params(&[]);
    let rows: Vec<Vec<Value>> = (0..table.row_count()).map(|i| table.row(i)).collect();
    rows.into_iter()
        .filter(|row| {
            eval(pred, schema, row, &ctx)
                .expect("predicate evaluates")
                .as_bool()
                .unwrap_or(false)
        })
        .map(|row| referenced.iter().map(|&c| row[c].clone()).collect())
        .collect()
}

/// The vectorized scan: compiled predicate over column slices, then late
/// materialization of the survivors' referenced columns.
fn new_scan(
    table: &Table,
    schema: &RowSchema,
    pred: &monomi_sql::ast::Expr,
    referenced: &[usize],
) -> Vec<Vec<Value>> {
    let ctx = EvalContext::with_params(&[]);
    let batch = table.batch();
    let compiled = compile_predicate(pred, schema, &ctx);
    let selection = apply_predicate(
        &compiled,
        &batch,
        &SelectionVector::all(table.row_count()),
        schema,
        &ctx,
    )
    .expect("columnar filter");
    batch.gather(&selection, referenced)
}

fn median_seconds(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    print_header(
        "Scan microbenchmark: row-materializing vs. vectorized scan",
        "the §8 server-side scan substrate",
    );
    let scale = std::env::var("MONOMI_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.02);
    let iters: usize = std::env::var("MONOMI_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    let db = datagen::generate(&datagen::GeneratorConfig {
        scale_factor: scale,
        ..Default::default()
    });
    let table = db.table("lineitem").expect("lineitem exists");
    // This bench measures the *in-memory* scan substrate (`Table::batch`);
    // under MONOMI_STORAGE=disk the generated table lives in the segment
    // store, so copy it back into a memory table first (the disk path has
    // its own bench: storage_micro).
    let mem_copy;
    let table = if db.is_disk_backed() {
        let mut t = Table::new(table.schema().clone());
        t.bulk_load(table.rows()).expect("memory copy");
        mem_copy = t;
        &mem_copy
    } else {
        table
    };
    let schema = RowSchema::new(
        table
            .schema()
            .columns
            .iter()
            .map(|c| (Some("lineitem".to_string()), c.name.clone()))
            .collect(),
    );
    println!(
        "lineitem: {} rows, {:.1} MB (MONOMI_SCALE={scale})\n",
        table.row_count(),
        table.size_bytes() as f64 / 1e6
    );
    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>9}",
        "filter", "rows out", "old scan", "new scan", "speedup"
    );

    let mut q6_speedup = None;
    for case in CASES {
        let parsed = parse_query(&format!(
            "SELECT l_orderkey FROM lineitem WHERE {}",
            case.where_sql
        ))
        .expect("filter parses");
        let pred = parsed.where_clause.expect("has WHERE");
        let referenced: Vec<usize> = case
            .referenced
            .iter()
            .map(|name| {
                table
                    .schema()
                    .columns
                    .iter()
                    .position(|c| c.name == *name)
                    .expect("referenced column exists")
            })
            .collect();

        // Correctness first: both scans must select the same rows.
        let expected = old_scan(table, &schema, &pred, &referenced);
        let got = new_scan(table, &schema, &pred, &referenced);
        assert_eq!(expected, got, "scans disagree on {}", case.name);

        let mut old_samples = Vec::with_capacity(iters);
        let mut new_samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(old_scan(table, &schema, &pred, &referenced));
            old_samples.push(start.elapsed().as_secs_f64());
            let start = Instant::now();
            std::hint::black_box(new_scan(table, &schema, &pred, &referenced));
            new_samples.push(start.elapsed().as_secs_f64());
        }
        let (old_s, new_s) = (median_seconds(old_samples), median_seconds(new_samples));
        let speedup = old_s / new_s.max(1e-12);
        if case.name.starts_with("Q6") {
            q6_speedup = Some(speedup);
        }
        println!(
            "{:<28} {:>10} {:>10.3}ms {:>10.3}ms {:>8.2}x",
            case.name,
            expected.len(),
            old_s * 1e3,
            new_s * 1e3,
            speedup
        );
    }

    if let Some(s) = q6_speedup {
        println!(
            "\nQ6-shaped selective scan speedup: {s:.2}x (acceptance bar: >= 2x){}",
            if s >= 2.0 { "" } else { "  ** BELOW BAR **" }
        );
    }
}
