//! Criterion microbenchmarks for the cryptographic substrates: the per-value
//! costs that drive MONOMI's cost model (§6.4).

use criterion::{criterion_group, criterion_main, Criterion};
use monomi_crypto::{
    FormatPreservingCipher, MasterKey, OpeCipher, PackedEncryptor, PackingLayout, PaillierKey,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_crypto(c: &mut Criterion) {
    let mk = MasterKey::from_bytes([7u8; 32]);
    let fpe = FormatPreservingCipher::new(b"0123456789abcdef", 64);
    let ope = OpeCipher::from_master(b"bench-master", "col");
    let mut rng = StdRng::seed_from_u64(1);
    let paillier = PaillierKey::generate(&mut rng, 512);

    c.bench_function("det_fpe_encrypt_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(fpe.encrypt(x))
        })
    });
    c.bench_function("det_fpe_decrypt_u64", |b| {
        let ct = fpe.encrypt(123456789);
        b.iter(|| std::hint::black_box(fpe.decrypt(ct)))
    });
    c.bench_function("ope_encrypt_u64", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(997);
            std::hint::black_box(ope.encrypt(x))
        })
    });
    c.bench_function("rnd_aes_cbc_encrypt_64B", |b| {
        let rnd = mk.rnd("t", "c");
        let data = [0x5au8; 64];
        b.iter(|| std::hint::black_box(rnd.encrypt(&mut rng, &data)))
    });
    c.bench_function("paillier_encrypt_u64_512bit", |b| {
        b.iter(|| std::hint::black_box(paillier.encrypt_u64(&mut rng, 424242)))
    });
    c.bench_function("paillier_decrypt_crt_512bit", |b| {
        let ct = paillier.encrypt_u64(&mut rng, 424242);
        b.iter(|| std::hint::black_box(paillier.decrypt_u64(&ct)))
    });
    c.bench_function("paillier_decrypt_classic_512bit", |b| {
        let ct = paillier.encrypt_u64(&mut rng, 424242);
        b.iter(|| std::hint::black_box(paillier.decrypt_classic(&ct)))
    });
    c.bench_function("paillier_homomorphic_add", |b| {
        let c1 = paillier.encrypt_u64(&mut rng, 1);
        let c2 = paillier.encrypt_u64(&mut rng, 2);
        b.iter(|| std::hint::black_box(paillier.add_ciphertexts(&c1, &c2)))
    });
    c.bench_function("hom_add_mont_resident_per_row", |b| {
        // The engine's per-row aggregation cost: one in-place CIOS multiply
        // through a shared scratch (drift fixup amortized to zero here).
        let ctx = paillier.ctx_n_squared();
        let c1 = paillier.encrypt_u64(&mut rng, 1);
        let mut acc = ctx.one_mont();
        let mut scratch = ctx.scratch();
        b.iter(|| {
            ctx.mont_mul_assign(&mut acc, &c1, &mut scratch);
            std::hint::black_box(&acc);
        })
    });
    c.bench_function("hom_add_naive_mul_rem", |b| {
        // The pre-PR per-row cost: schoolbook product + long-division rem.
        let c1 = paillier.encrypt_u64(&mut rng, 1);
        let c2 = paillier.encrypt_u64(&mut rng, 2);
        let n2 = paillier.n_squared();
        b.iter(|| std::hint::black_box(c1.mul(&c2).rem(n2)))
    });
    c.bench_function("paillier_batch_encrypt_64_values", |b| {
        let ms: Vec<_> = (0..64u64).map(monomi_math::BigUint::from_u64).collect();
        b.iter(|| std::hint::black_box(paillier.batch_encrypt(&mut rng, &ms)))
    });
    c.bench_function("grouped_packing_encrypt_row_of_4", |b| {
        let layout = PackingLayout::plan(&paillier, 4, 36, 28);
        let enc = PackedEncryptor::new(&paillier, layout);
        let rows = vec![vec![10u64, 20, 30, 40]];
        b.iter(|| std::hint::black_box(enc.encrypt_rows(&mut rng, &rows)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_crypto
}
criterion_main!(benches);
