//! Property-based tests for the segment store's load-bearing contracts:
//!
//! 1. **Encode→decode is the identity** for every column encoding the store
//!    can pick, on every value shape the engine can hold — NULLs, NaN and
//!    negative-zero floats (by bit pattern), empty strings, max-width
//!    ciphertext blobs, mixed-variant columns, and nested lists. The disk
//!    backend's byte-identity with the in-memory engine rests on this.
//! 2. **Zone maps bound their segments**: min/max computed at encode time
//!    bound every non-null value under `Value::compare`'s total order (the
//!    order predicates evaluate with), and the null counts are exact. Zone
//!    pruning's soundness rests on this.
//! 3. **Segments survive the file format**: encode → write → read → decode
//!    through a real store directory round-trips, and the manifest reloads
//!    the same catalog after reopen.

use monomi_store::encoding::{decode_column, encode_column};
use monomi_store::segment::{decode_segment, encode_segment};
use monomi_store::{ColumnType, Store, StoreOptions, Value};
use proptest::prelude::*;

/// Builds one value from generator primitives. Shapes deliberately include
/// every special case named in the issue: NULL, NaN, ±0.0, empty strings,
/// and max-width (Paillier-sized) ciphertexts.
fn make_value(kind: u8, base: i64, bits: u64) -> Value {
    match kind % 12 {
        0 => Value::Null,
        1 => Value::Int(base),
        2 => Value::Int(base.wrapping_mul(i64::MAX / 64)), // extremes
        3 => Value::Float(base as f64 + 0.25),
        4 => Value::Float(f64::from_bits(bits)), // NaN payloads, ±0.0, infs
        5 => Value::Float(if base % 2 == 0 { 0.0 } else { -0.0 }),
        6 => Value::Str(String::new()),
        7 => Value::Str(format!("s{base}")),
        8 => Value::Date(base as i32),
        9 => Value::Bytes(vec![]),
        // Max-width ciphertext: 256 bytes, the width of a 1024-bit Paillier
        // ciphertext.
        10 => Value::Bytes(bits.to_be_bytes().repeat(32)),
        _ => Value::List(vec![
            Value::Int(base),
            Value::Null,
            Value::Str(format!("n{bits}")),
        ]),
    }
}

/// Exact structural equality: variant and float bit pattern included.
/// (`Value::eq` coerces `Int(5) == Float(5.0)` and `-0.0 == 0.0`, which is
/// right for SQL but too weak for a storage round-trip check.)
fn exactly_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Date(x), Value::Date(y)) => x == y,
        (Value::Bytes(x), Value::Bytes(y)) => x == y,
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| exactly_equal(a, b))
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Homogeneous columns (one kind, NULLs mixed in) exercise the
    /// specialized encodings; the kind spread makes dictionaries and raw
    /// layouts both appear.
    #[test]
    fn homogeneous_column_roundtrips(
        kind in 0u8..12,
        cells in proptest::collection::vec((0u8..5, -100i64..100, any::<u64>()), 0..80),
    ) {
        let values: Vec<Value> = cells
            .iter()
            .map(|&(null_die, base, bits)| {
                if null_die == 0 {
                    Value::Null
                } else {
                    make_value(kind, base, bits)
                }
            })
            .collect();
        let encoded = encode_column(&values);
        let (decoded, consumed) = decode_column(&encoded).expect("decodes");
        prop_assert_eq!(consumed, encoded.len());
        prop_assert_eq!(decoded.len(), values.len());
        for (a, b) in decoded.iter().zip(&values) {
            prop_assert!(exactly_equal(a, b), "{:?} != {:?}", a, b);
        }
    }

    /// Fully mixed columns land in the generic encoding and still round-trip.
    #[test]
    fn mixed_column_roundtrips(
        cells in proptest::collection::vec((0u8..12, -100i64..100, any::<u64>()), 0..60),
    ) {
        let values: Vec<Value> = cells
            .iter()
            .map(|&(kind, base, bits)| make_value(kind, base, bits))
            .collect();
        let encoded = encode_column(&values);
        let (decoded, _) = decode_column(&encoded).expect("decodes");
        for (a, b) in decoded.iter().zip(&values) {
            prop_assert!(exactly_equal(a, b), "{:?} != {:?}", a, b);
        }
    }

    /// Zone maps computed at encode time are exact: null counts match, and
    /// min/max bound every non-null value under the comparison total order.
    #[test]
    fn zone_maps_bound_their_segment(
        kind in 0u8..12,
        cells in proptest::collection::vec((0u8..4, -100i64..100, any::<u64>()), 1..60),
    ) {
        let column: Vec<Value> = cells
            .iter()
            .map(|&(null_die, base, bits)| {
                if null_die == 0 {
                    Value::Null
                } else {
                    make_value(kind, base, bits)
                }
            })
            .collect();
        let encoded = encode_segment(std::slice::from_ref(&column));
        let zone = &encoded.zones.columns[0];
        let nulls = column.iter().filter(|v| v.is_null()).count() as u64;
        prop_assert_eq!(zone.null_count, nulls);
        prop_assert_eq!(encoded.zones.rows as usize, column.len());
        match (&zone.min, &zone.max) {
            (None, None) => prop_assert_eq!(nulls as usize, column.len()),
            (Some(min), Some(max)) => {
                for v in column.iter().filter(|v| !v.is_null()) {
                    prop_assert!(min.compare(v).is_le(), "min {:?} !<= {:?}", min, v);
                    prop_assert!(max.compare(v).is_ge(), "max {:?} !>= {:?}", max, v);
                }
            }
            other => prop_assert!(false, "half-empty bounds {:?}", other),
        }
        // The segment itself round-trips through its byte format.
        let decoded = decode_segment(&encoded.bytes, Some(encoded.checksum)).expect("decodes");
        for (a, b) in decoded[0].iter().zip(&column) {
            prop_assert!(exactly_equal(a, b), "{:?} != {:?}", a, b);
        }
    }
}

proptest! {
    // Real file I/O per case: keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-store round-trip: create, load, commit, reopen — the reloaded
    /// catalog serves back exactly the rows that were committed.
    #[test]
    fn store_reopen_serves_committed_rows(
        rows in proptest::collection::vec((-50i64..50, 0u8..12, any::<u64>()), 1..40),
        segment_rows in 1usize..8,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "monomi-prop-store-{}-{segment_rows}-{}",
            std::process::id(),
            rows.len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let columns: Vec<Vec<Value>> = vec![
            rows.iter().map(|&(a, _, _)| Value::Int(a)).collect(),
            rows.iter().map(|&(a, k, bits)| make_value(k, a, bits)).collect(),
        ];
        {
            let store = Store::open_with(
                &dir,
                StoreOptions {
                    segment_rows,
                    cache_bytes: 1 << 20,
                    ..StoreOptions::default()
                },
            )
            .expect("store opens");
            store
                .create_table(
                    "t",
                    vec![("a".into(), ColumnType::Int), ("v".into(), ColumnType::Bytes)],
                )
                .expect("create");
            let mut load = store.begin_load("t");
            // Chunk exactly like the engine's tail flush.
            let mut start = 0;
            while start < rows.len() {
                let end = (start + segment_rows).min(rows.len());
                let chunk: Vec<Vec<Value>> =
                    columns.iter().map(|c| c[start..end].to_vec()).collect();
                load.add_segment(&chunk).expect("segment written");
                start = end;
            }
            load.commit().expect("commit");
        }
        let store = Store::open(&dir).expect("reopens");
        let meta = store.table_meta("t").expect("table survives");
        prop_assert_eq!(meta.rows() as usize, rows.len());
        let mut got: Vec<Vec<Value>> = vec![Vec::new(), Vec::new()];
        for seg in &meta.segments {
            let data = store.read_segment(seg).expect("segment reads");
            for (c, col) in data.columns.iter().enumerate() {
                got[c].extend(col.iter().cloned());
            }
        }
        for (gc, ec) in got.iter().zip(&columns) {
            prop_assert_eq!(gc.len(), ec.len());
            for (a, b) in gc.iter().zip(ec) {
                prop_assert!(exactly_equal(a, b), "{:?} != {:?}", a, b);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
