//! The store facade: a directory of write-once segments plus the crash-safe
//! manifest and the shared segment cache.
//!
//! One [`Store`] owns one directory. Tables are created by registering their
//! schema in the manifest; rows arrive through [`BulkLoad`] transactions that
//! write fsynced segment files first and publish them with a single manifest
//! commit — dropping the loader before [`BulkLoad::commit`] (a simulated
//! kill) leaves the catalog exactly as it was, and the orphaned files are
//! swept the next time the directory is opened.

use crate::cache::{ByteLru, SegmentCache};
use crate::index::{encode_segment_indexes, IndexMode, SegmentIndexes};
use crate::manifest::{IndexMeta, Manifest, SegmentMeta, TableMeta, MANIFEST_FILE};
use crate::segment::{encode_segment, read_segment_file, write_segment_file};
use crate::value::Value;
use crate::{ColumnType, StoreError};
use parking_lot::RwLock;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment knob for the number of rows per segment.
pub const SEGMENT_ROWS_ENV: &str = "MONOMI_SEGMENT_ROWS";
/// Default rows per segment — matches the executor's default morsel size, so
/// one segment is one scan partition.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Tuning knobs of one store instance.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rows per newly written segment.
    pub segment_rows: usize,
    /// Byte budget of the decoded-segment cache.
    pub cache_bytes: usize,
    /// Byte budget of the decoded-index cache.
    pub index_cache_bytes: usize,
    /// Which secondary-index kinds newly written segments get.
    pub index_mode: IndexMode,
}

impl Default for StoreOptions {
    /// Environment-derived options: `MONOMI_SEGMENT_ROWS` (default 4096),
    /// `MONOMI_CACHE_BYTES` (default 256 MiB), `MONOMI_INDEX_CACHE_BYTES`
    /// (default 64 MiB), and `MONOMI_INDEXES` (default `all`).
    fn default() -> Self {
        StoreOptions {
            segment_rows: crate::env_knob(SEGMENT_ROWS_ENV, DEFAULT_SEGMENT_ROWS, |&n| n >= 1),
            cache_bytes: crate::env_knob(
                crate::cache::CACHE_BYTES_ENV,
                crate::cache::DEFAULT_CACHE_BYTES,
                |_| true,
            ),
            index_cache_bytes: crate::env_knob(
                crate::cache::INDEX_CACHE_BYTES_ENV,
                crate::cache::DEFAULT_INDEX_CACHE_BYTES,
                |_| true,
            ),
            index_mode: IndexMode::from_env(),
        }
    }
}

/// A decoded segment resident in memory: column-major values plus the
/// footprint the cache charges for it.
#[derive(Debug)]
pub struct SegmentData {
    /// One `Vec<Value>` per column, all of equal length.
    pub columns: Vec<Vec<Value>>,
    /// Rows in the segment.
    pub rows: usize,
    /// Approximate heap footprint, charged against the cache budget.
    pub heap_bytes: usize,
}

impl SegmentData {
    /// Wraps decoded columns, computing the cache-accounting footprint.
    pub fn new(columns: Vec<Vec<Value>>) -> SegmentData {
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        let heap_bytes = columns
            .iter()
            .map(|c| {
                c.len() * std::mem::size_of::<Value>()
                    + c.iter().map(Value::size_bytes).sum::<usize>()
            })
            .sum();
        SegmentData {
            rows,
            heap_bytes,
            columns,
        }
    }
}

/// A directory-backed segment store.
pub struct Store {
    dir: PathBuf,
    manifest: RwLock<Manifest>,
    cache: SegmentCache,
    index_cache: ByteLru<SegmentIndexes>,
    segment_rows: usize,
    index_mode: IndexMode,
    /// Per-process uniquifier folded into segment file names.
    seq: AtomicU64,
}

impl Store {
    /// Opens (creating if necessary) a store directory with the
    /// environment-derived [`StoreOptions`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Arc<Store>, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (creating if necessary) a store directory: loads and verifies
    /// the manifest, then sweeps segment files no committed catalog entry
    /// references — the leftovers of loads that were killed before commit.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Arc<Store>, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest = Manifest::load(&dir)?;
        let store = Store {
            cache: SegmentCache::with_budget(options.cache_bytes),
            index_cache: ByteLru::with_budget(options.index_cache_bytes),
            segment_rows: options.segment_rows.max(1),
            index_mode: options.index_mode,
            manifest: RwLock::new(manifest),
            seq: AtomicU64::new(0),
            dir,
        };
        store.sweep_orphans()?;
        Ok(Arc::new(store))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows per segment for newly written segments.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The shared decoded-segment cache.
    pub fn cache(&self) -> &SegmentCache {
        &self.cache
    }

    /// The shared decoded-index cache.
    pub fn index_cache(&self) -> &ByteLru<SegmentIndexes> {
        &self.index_cache
    }

    /// Which secondary-index kinds newly written segments get.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Snapshot of one table's catalog entry. Deep-clones the segment list
    /// (zone maps included) — use [`with_table_meta`](Self::with_table_meta)
    /// for point lookups and aggregations that only need a borrow.
    pub fn table_meta(&self, table: &str) -> Option<TableMeta> {
        self.manifest.read().tables.get(table).cloned()
    }

    /// Runs `f` over a borrowed view of one table's catalog entry, without
    /// cloning anything. The manifest read lock is held for the duration of
    /// `f`, so keep the closure short (no segment decoding inside).
    pub fn with_table_meta<R>(&self, table: &str, f: impl FnOnce(Option<&TableMeta>) -> R) -> R {
        f(self.manifest.read().tables.get(table))
    }

    /// Committed rows of a table (0 if unknown).
    pub fn table_rows(&self, table: &str) -> u64 {
        self.manifest
            .read()
            .tables
            .get(table)
            .map(TableMeta::rows)
            .unwrap_or(0)
    }

    /// Every table in the catalog, with its schema.
    pub fn catalog(&self) -> Vec<(String, Vec<(String, ColumnType)>)> {
        self.manifest
            .read()
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.columns.clone()))
            .collect()
    }

    /// Registers (or replaces) a table schema. Replacement drops the previous
    /// segment list; the files are deleted after the commit succeeds.
    ///
    /// The durable commit runs against a scratch copy of the catalog: if it
    /// fails, the in-memory state still matches the on-disk `MANIFEST` —
    /// never a half-applied mutation.
    pub fn create_table(
        &self,
        table: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> Result<(), StoreError> {
        self.create_table_with(table, columns, Vec::new())
    }

    /// [`create_table`](Self::create_table) with an explicit list of columns
    /// opted out of secondary indexes (the designer's leakage tradeoff). The
    /// list is sorted and deduplicated so the persisted manifest bytes do not
    /// depend on caller iteration order.
    pub fn create_table_with(
        &self,
        table: &str,
        columns: Vec<(String, ColumnType)>,
        mut unindexed: Vec<String>,
    ) -> Result<(), StoreError> {
        unindexed.sort();
        unindexed.dedup();
        let mut manifest = self.manifest.write();
        let mut next = manifest.clone();
        let old = next.tables.insert(
            table.to_string(),
            TableMeta {
                columns,
                segments: Vec::new(),
                unindexed,
            },
        );
        next.version += 1;
        next.commit(&self.dir)?;
        *manifest = next;
        drop(manifest);
        if let Some(old) = old {
            for seg in old.segments {
                if let Some(index) = &seg.index {
                    let _ = std::fs::remove_file(self.dir.join(&index.file));
                }
                let _ = std::fs::remove_file(self.dir.join(seg.file));
            }
        }
        Ok(())
    }

    /// Starts a bulk load into `table`. Segments written through the returned
    /// handle become visible only at [`BulkLoad::commit`].
    pub fn begin_load(self: &Arc<Self>, table: &str) -> BulkLoad {
        // Snapshot the schema and opt-out list now: index eligibility must
        // not shift mid-load if the table is concurrently replaced (the
        // commit would fail against a replaced table anyway).
        let (schema, unindexed) = self.with_table_meta(table, |meta| match meta {
            Some(t) => (t.columns.clone(), t.unindexed.clone()),
            None => (Vec::new(), Vec::new()),
        });
        BulkLoad {
            store: Arc::clone(self),
            table: table.to_string(),
            schema,
            unindexed,
            pending: Vec::new(),
            committed: false,
        }
    }

    /// Reads one committed segment through the cache, verifying its checksum
    /// on the (cold) decode path.
    pub fn read_segment(&self, seg: &SegmentMeta) -> Result<Arc<SegmentData>, StoreError> {
        let path = self.dir.join(&seg.file);
        self.cache.get_or_load(&seg.file, || {
            read_segment_file(&path, Some(seg.checksum)).map(SegmentData::new)
        })
    }

    /// Reads one segment's index file through the index cache, verifying its
    /// checksum on the (cold) decode path. Any failure is a typed error the
    /// caller answers with a plain scan — never wrong rows.
    pub fn read_indexes(&self, index: &IndexMeta) -> Result<Arc<SegmentIndexes>, StoreError> {
        let path = self.dir.join(&index.file);
        self.index_cache.get_or_load(&index.file, || {
            let bytes = std::fs::read(&path)
                .map_err(|e| StoreError::new(format!("{}: {e}", path.display())))?;
            crate::index::decode_segment_indexes(&bytes, Some(index.checksum))
                .map_err(|e| StoreError::new(format!("{}: {}", path.display(), e.message)))
        })
    }

    /// A fresh file name no previous or concurrent segment uses.
    fn fresh_segment_name(&self, table: &str) -> String {
        let version = self.manifest.read().version;
        loop {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let name = format!("{table}-{version}-{}-{seq}.seg", std::process::id());
            if !self.dir.join(&name).exists() {
                return name;
            }
        }
    }

    /// Removes `*.seg` and `*.idx` files the manifest does not reference.
    fn sweep_orphans(&self) -> Result<(), StoreError> {
        let referenced: std::collections::HashSet<String> = self
            .manifest
            .read()
            .tables
            .values()
            .flat_map(|t| {
                t.segments.iter().flat_map(|s| {
                    std::iter::once(s.file.clone()).chain(s.index.as_ref().map(|i| i.file.clone()))
                })
            })
            .collect();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if (name.ends_with(".seg") || name.ends_with(".idx")) && !referenced.contains(&name) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Total stored (encoded) bytes across every committed segment.
    pub fn stored_bytes(&self) -> u64 {
        self.manifest
            .read()
            .tables
            .values()
            .flat_map(|t| t.segments.iter())
            .map(|s| s.stored_bytes)
            .sum()
    }

    /// Path of the manifest file (exposed for crash-safety tests).
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }
}

/// An uncommitted bulk load: segment files are written (and fsynced)
/// immediately, but the catalog only learns about them at [`commit`]
/// (`BulkLoad::commit`). Dropping the handle without committing abandons the
/// files — exactly what a mid-load kill leaves behind — and the catalog stays
/// at the pre-load state.
pub struct BulkLoad {
    store: Arc<Store>,
    table: String,
    /// Schema snapshot taken at `begin_load`, driving index eligibility.
    schema: Vec<(String, ColumnType)>,
    /// Index opt-out list snapshot taken at `begin_load`.
    unindexed: Vec<String>,
    pending: Vec<SegmentMeta>,
    committed: bool,
}

impl BulkLoad {
    /// Encodes and writes one segment (column-major rows), fsyncing the file.
    /// Eligible columns get index blocks, written to a sibling `.idx` file
    /// in the same staged transaction. The segment stays invisible until
    /// [`commit`](Self::commit).
    pub fn add_segment(&mut self, columns: &[Vec<Value>]) -> Result<(), StoreError> {
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        if rows == 0 {
            return Ok(());
        }
        let encoded = encode_segment(columns);
        let file = self.store.fresh_segment_name(&self.table);
        write_segment_file(&self.store.dir.join(&file), &encoded)?;
        let index = match encode_segment_indexes(
            &self.schema,
            &self.unindexed,
            self.store.index_mode,
            columns,
        ) {
            Some(enc) => {
                let ifile = format!("{}.idx", file.strip_suffix(".seg").unwrap_or(&file));
                let path = self.store.dir.join(&ifile);
                {
                    let mut f = std::fs::File::create(&path)?;
                    f.write_all(&enc.bytes)?;
                    f.sync_all()?;
                }
                Some(IndexMeta {
                    file: ifile,
                    stored_bytes: enc.bytes.len() as u64,
                    checksum: enc.checksum,
                    columns: enc.columns,
                })
            }
            None => None,
        };
        self.pending.push(SegmentMeta {
            file,
            rows: rows as u64,
            stored_bytes: encoded.bytes.len() as u64,
            checksum: encoded.checksum,
            zones: encoded.zones.columns,
            index,
        });
        Ok(())
    }

    /// Rows staged so far.
    pub fn staged_rows(&self) -> u64 {
        self.pending.iter().map(|s| s.rows).sum()
    }

    /// Publishes every staged segment with one atomic manifest commit.
    pub fn commit(mut self) -> Result<(), StoreError> {
        // Persist the segment files' *directory entries* before the manifest
        // rename: the files' contents are already fsynced, but without this
        // a power loss could journal the renamed MANIFEST while the new
        // files' dirents are lost — a catalog referencing missing segments,
        // which is neither the old nor the new state. (Directory fsync is
        // not supported everywhere; a failure degrades durability, not
        // atomicity, so it is tolerated — same policy as Manifest::commit.)
        if !self.pending.is_empty() {
            if let Ok(d) = std::fs::File::open(&self.store.dir) {
                let _ = d.sync_all();
            }
        }
        // The durable commit runs against a scratch copy of the catalog; the
        // shared manifest is only replaced after the on-disk commit succeeds.
        // On failure the in-memory state therefore still matches MANIFEST,
        // `pending` is untouched, and Drop removes the staged files — a
        // retried flush cannot double-publish rows.
        let mut manifest = self.store.manifest.write();
        let mut next = manifest.clone();
        let table = next
            .tables
            .get_mut(&self.table)
            .ok_or_else(|| StoreError::new(format!("unknown table {}", self.table)))?;
        table.segments.extend(self.pending.iter().cloned());
        next.version += 1;
        next.commit(&self.store.dir)?;
        *manifest = next;
        self.pending.clear();
        self.committed = true;
        Ok(())
    }
}

impl Drop for BulkLoad {
    fn drop(&mut self) {
        // An explicit abort cleans up eagerly; a real kill cannot run this,
        // which is what the open-time orphan sweep is for.
        if !self.committed {
            for seg in &self.pending {
                if let Some(index) = &seg.index {
                    let _ = std::fs::remove_file(self.store.dir.join(&index.file));
                }
                let _ = std::fs::remove_file(self.store.dir.join(&seg.file));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, Arc<Store>) {
        let dir = std::env::temp_dir().join(format!("monomi-store-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn int_column(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
        vec![range.map(Value::Int).collect()]
    }

    #[test]
    fn load_commit_read_roundtrip() {
        let (dir, store) = temp_store("roundtrip");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..10)).unwrap();
        load.add_segment(&int_column(10..25)).unwrap();
        assert_eq!(load.staged_rows(), 25);
        load.commit().unwrap();

        assert_eq!(store.table_rows("t"), 25);
        let meta = store.table_meta("t").unwrap();
        assert_eq!(meta.segments.len(), 2);
        assert_eq!(meta.segments[1].zones[0].min, Some(Value::Int(10)));
        assert_eq!(meta.segments[1].zones[0].max, Some(Value::Int(24)));
        let data = store.read_segment(&meta.segments[0]).unwrap();
        assert_eq!(data.columns, int_column(0..10));

        // Reopen: everything survives.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.table_rows("t"), 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_load_leaves_catalog_untouched_and_orphans_are_swept() {
        let (dir, store) = temp_store("crash");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut pre = store.begin_load("t");
        pre.add_segment(&int_column(0..5)).unwrap();
        pre.commit().unwrap();

        // Simulated kill mid-load: segment files exist, commit never runs.
        // `forget` skips the Drop cleanup, exactly like a killed process.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(100..200)).unwrap();
        let orphan = store.dir.join(&load.pending[0].file);
        assert!(orphan.exists());
        std::mem::forget(load);

        drop(store);
        let store = Store::open(&dir).unwrap();
        // Catalog shows exactly the pre-load state; the orphan is gone.
        assert_eq!(store.table_rows("t"), 5);
        assert!(!orphan.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_table_replacement_drops_old_segments() {
        let (dir, store) = temp_store("replace");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        load.commit().unwrap();
        let old_file = store
            .dir
            .join(&store.table_meta("t").unwrap().segments[0].file);
        assert!(old_file.exists());
        store
            .create_table("t", vec![("y".into(), ColumnType::Str)])
            .unwrap();
        assert_eq!(store.table_rows("t"), 0);
        assert!(!old_file.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bulk_load_publishes_index_files_with_the_segment() {
        let (dir, store) = temp_store("indexed");
        store
            .create_table(
                "t",
                vec![
                    ("k_det".into(), ColumnType::Int),
                    ("v_rnd".into(), ColumnType::Bytes),
                ],
            )
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&[
            (0..16).map(|i| Value::Int(i % 4)).collect(),
            vec![Value::Bytes(vec![9]); 16],
        ])
        .unwrap();
        load.commit().unwrap();
        let meta = store.table_meta("t").unwrap();
        let index = meta.segments[0].index.as_ref().expect("index built");
        assert_eq!(index.columns, vec![("k_det".into(), crate::IndexKind::Det)]);
        assert!(store.dir.join(&index.file).exists());
        let ix = store.read_indexes(index).unwrap();
        assert_eq!(
            ix.block("k_det").unwrap().postings_eq(&Value::Int(1)),
            &[1, 5, 9, 13]
        );
        assert!(ix.block("v_rnd").is_none());
        // Cached on the second read.
        let again = store.read_indexes(index).unwrap();
        assert!(Arc::ptr_eq(&ix, &again));
        assert_eq!(store.index_cache().stats().0, 1);

        // Reopen: the index survives; corruption then yields a typed error.
        drop(store);
        let store = Store::open(&dir).unwrap();
        let meta = store.table_meta("t").unwrap();
        let index = meta.segments[0].index.clone().unwrap();
        store.read_indexes(&index).unwrap();
        let path = store.dir.join(&index.file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        store.index_cache().clear();
        let err = store.read_indexes(&index).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_mode_off_and_opt_outs_suppress_index_build() {
        let dir = std::env::temp_dir().join(format!("monomi-store-{}-noindex", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open_with(
            &dir,
            StoreOptions {
                index_mode: IndexMode::Off,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        load.commit().unwrap();
        assert_eq!(store.table_meta("t").unwrap().segments[0].index, None);
        drop(store);

        // Same directory, indexes back on, but the column is opted out.
        let store = Store::open(&dir).unwrap();
        store
            .create_table_with("t2", vec![("x".into(), ColumnType::Int)], vec!["x".into()])
            .unwrap();
        let mut load = store.begin_load("t2");
        load.add_segment(&int_column(0..8)).unwrap();
        load.commit().unwrap();
        assert_eq!(store.table_meta("t2").unwrap().segments[0].index, None);
        // While "t" reloaded with default options does build one.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(8..16)).unwrap();
        load.commit().unwrap();
        let meta = store.table_meta("t").unwrap();
        assert_eq!(meta.segments[0].index, None); // historical segment
        assert!(meta.segments[1].index.is_some()); // new segment
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphaned_and_replaced_index_files_are_removed() {
        let (dir, store) = temp_store("idx-sweep");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        // Simulated kill mid-load: both files stay behind, sweep removes both.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        let seg_file = store.dir.join(&load.pending[0].file);
        let idx_file = store
            .dir
            .join(&load.pending[0].index.as_ref().unwrap().file);
        assert!(seg_file.exists() && idx_file.exists());
        std::mem::forget(load);
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert!(!seg_file.exists() && !idx_file.exists());

        // Table replacement deletes committed index files.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        load.commit().unwrap();
        let meta = store.table_meta("t").unwrap();
        let idx_file = store
            .dir
            .join(&meta.segments[0].index.as_ref().unwrap().file);
        assert!(idx_file.exists());
        store
            .create_table("t", vec![("y".into(), ColumnType::Int)])
            .unwrap();
        assert!(!idx_file.exists());

        // An explicit abort (Drop) also removes staged index files.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        let idx_file = store
            .dir
            .join(&load.pending[0].index.as_ref().unwrap().file);
        assert!(idx_file.exists());
        drop(load);
        assert!(!idx_file.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_segment_file_is_reported() {
        let (dir, store) = temp_store("corrupt");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..64)).unwrap();
        load.commit().unwrap();
        let meta = store.table_meta("t").unwrap();
        let path = store.dir.join(&meta.segments[0].file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let err = store.read_segment(&meta.segments[0]).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
