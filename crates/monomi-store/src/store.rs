//! The store facade: a directory of write-once segments plus the crash-safe
//! manifest and the shared segment cache.
//!
//! One [`Store`] owns one directory. Tables are created by registering their
//! schema in the manifest; rows arrive through [`BulkLoad`] transactions that
//! write fsynced segment files first and publish them with a single manifest
//! commit — dropping the loader before [`BulkLoad::commit`] (a simulated
//! kill) leaves the catalog exactly as it was, and the orphaned files are
//! swept the next time the directory is opened.

use crate::cache::SegmentCache;
use crate::manifest::{Manifest, SegmentMeta, TableMeta, MANIFEST_FILE};
use crate::segment::{encode_segment, read_segment_file, write_segment_file};
use crate::value::Value;
use crate::{ColumnType, StoreError};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment knob for the number of rows per segment.
pub const SEGMENT_ROWS_ENV: &str = "MONOMI_SEGMENT_ROWS";
/// Default rows per segment — matches the executor's default morsel size, so
/// one segment is one scan partition.
pub const DEFAULT_SEGMENT_ROWS: usize = 4096;

/// Tuning knobs of one store instance.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Rows per newly written segment.
    pub segment_rows: usize,
    /// Byte budget of the decoded-segment cache.
    pub cache_bytes: usize,
}

impl Default for StoreOptions {
    /// Environment-derived options: `MONOMI_SEGMENT_ROWS` (default 4096) and
    /// `MONOMI_CACHE_BYTES` (default 256 MiB).
    fn default() -> Self {
        StoreOptions {
            segment_rows: crate::env_knob(SEGMENT_ROWS_ENV, DEFAULT_SEGMENT_ROWS, |&n| n >= 1),
            cache_bytes: crate::env_knob(
                crate::cache::CACHE_BYTES_ENV,
                crate::cache::DEFAULT_CACHE_BYTES,
                |_| true,
            ),
        }
    }
}

/// A decoded segment resident in memory: column-major values plus the
/// footprint the cache charges for it.
#[derive(Debug)]
pub struct SegmentData {
    /// One `Vec<Value>` per column, all of equal length.
    pub columns: Vec<Vec<Value>>,
    /// Rows in the segment.
    pub rows: usize,
    /// Approximate heap footprint, charged against the cache budget.
    pub heap_bytes: usize,
}

impl SegmentData {
    /// Wraps decoded columns, computing the cache-accounting footprint.
    pub fn new(columns: Vec<Vec<Value>>) -> SegmentData {
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        let heap_bytes = columns
            .iter()
            .map(|c| {
                c.len() * std::mem::size_of::<Value>()
                    + c.iter().map(Value::size_bytes).sum::<usize>()
            })
            .sum();
        SegmentData {
            rows,
            heap_bytes,
            columns,
        }
    }
}

/// A directory-backed segment store.
pub struct Store {
    dir: PathBuf,
    manifest: RwLock<Manifest>,
    cache: SegmentCache,
    segment_rows: usize,
    /// Per-process uniquifier folded into segment file names.
    seq: AtomicU64,
}

impl Store {
    /// Opens (creating if necessary) a store directory with the
    /// environment-derived [`StoreOptions`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Arc<Store>, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (creating if necessary) a store directory: loads and verifies
    /// the manifest, then sweeps segment files no committed catalog entry
    /// references — the leftovers of loads that were killed before commit.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<Arc<Store>, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest = Manifest::load(&dir)?;
        let store = Store {
            cache: SegmentCache::with_budget(options.cache_bytes),
            segment_rows: options.segment_rows.max(1),
            manifest: RwLock::new(manifest),
            seq: AtomicU64::new(0),
            dir,
        };
        store.sweep_orphans()?;
        Ok(Arc::new(store))
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Rows per segment for newly written segments.
    pub fn segment_rows(&self) -> usize {
        self.segment_rows
    }

    /// The shared decoded-segment cache.
    pub fn cache(&self) -> &SegmentCache {
        &self.cache
    }

    /// Snapshot of one table's catalog entry. Deep-clones the segment list
    /// (zone maps included) — use [`with_table_meta`](Self::with_table_meta)
    /// for point lookups and aggregations that only need a borrow.
    pub fn table_meta(&self, table: &str) -> Option<TableMeta> {
        self.manifest.read().tables.get(table).cloned()
    }

    /// Runs `f` over a borrowed view of one table's catalog entry, without
    /// cloning anything. The manifest read lock is held for the duration of
    /// `f`, so keep the closure short (no segment decoding inside).
    pub fn with_table_meta<R>(&self, table: &str, f: impl FnOnce(Option<&TableMeta>) -> R) -> R {
        f(self.manifest.read().tables.get(table))
    }

    /// Committed rows of a table (0 if unknown).
    pub fn table_rows(&self, table: &str) -> u64 {
        self.manifest
            .read()
            .tables
            .get(table)
            .map(TableMeta::rows)
            .unwrap_or(0)
    }

    /// Every table in the catalog, with its schema.
    pub fn catalog(&self) -> Vec<(String, Vec<(String, ColumnType)>)> {
        self.manifest
            .read()
            .tables
            .iter()
            .map(|(name, t)| (name.clone(), t.columns.clone()))
            .collect()
    }

    /// Registers (or replaces) a table schema. Replacement drops the previous
    /// segment list; the files are deleted after the commit succeeds.
    ///
    /// The durable commit runs against a scratch copy of the catalog: if it
    /// fails, the in-memory state still matches the on-disk `MANIFEST` —
    /// never a half-applied mutation.
    pub fn create_table(
        &self,
        table: &str,
        columns: Vec<(String, ColumnType)>,
    ) -> Result<(), StoreError> {
        let mut manifest = self.manifest.write();
        let mut next = manifest.clone();
        let old = next.tables.insert(
            table.to_string(),
            TableMeta {
                columns,
                segments: Vec::new(),
            },
        );
        next.version += 1;
        next.commit(&self.dir)?;
        *manifest = next;
        drop(manifest);
        if let Some(old) = old {
            for seg in old.segments {
                let _ = std::fs::remove_file(self.dir.join(seg.file));
            }
        }
        Ok(())
    }

    /// Starts a bulk load into `table`. Segments written through the returned
    /// handle become visible only at [`BulkLoad::commit`].
    pub fn begin_load(self: &Arc<Self>, table: &str) -> BulkLoad {
        BulkLoad {
            store: Arc::clone(self),
            table: table.to_string(),
            pending: Vec::new(),
            committed: false,
        }
    }

    /// Reads one committed segment through the cache, verifying its checksum
    /// on the (cold) decode path.
    pub fn read_segment(&self, seg: &SegmentMeta) -> Result<Arc<SegmentData>, StoreError> {
        let path = self.dir.join(&seg.file);
        self.cache.get_or_load(&seg.file, || {
            read_segment_file(&path, Some(seg.checksum)).map(SegmentData::new)
        })
    }

    /// A fresh file name no previous or concurrent segment uses.
    fn fresh_segment_name(&self, table: &str) -> String {
        let version = self.manifest.read().version;
        loop {
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let name = format!("{table}-{version}-{}-{seq}.seg", std::process::id());
            if !self.dir.join(&name).exists() {
                return name;
            }
        }
    }

    /// Removes `*.seg` files the manifest does not reference.
    fn sweep_orphans(&self) -> Result<(), StoreError> {
        let referenced: std::collections::HashSet<String> = self
            .manifest
            .read()
            .tables
            .values()
            .flat_map(|t| t.segments.iter().map(|s| s.file.clone()))
            .collect();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".seg") && !referenced.contains(&name) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }

    /// Total stored (encoded) bytes across every committed segment.
    pub fn stored_bytes(&self) -> u64 {
        self.manifest
            .read()
            .tables
            .values()
            .flat_map(|t| t.segments.iter())
            .map(|s| s.stored_bytes)
            .sum()
    }

    /// Path of the manifest file (exposed for crash-safety tests).
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_FILE)
    }
}

/// An uncommitted bulk load: segment files are written (and fsynced)
/// immediately, but the catalog only learns about them at [`commit`]
/// (`BulkLoad::commit`). Dropping the handle without committing abandons the
/// files — exactly what a mid-load kill leaves behind — and the catalog stays
/// at the pre-load state.
pub struct BulkLoad {
    store: Arc<Store>,
    table: String,
    pending: Vec<SegmentMeta>,
    committed: bool,
}

impl BulkLoad {
    /// Encodes and writes one segment (column-major rows), fsyncing the file.
    /// The segment stays invisible until [`commit`](Self::commit).
    pub fn add_segment(&mut self, columns: &[Vec<Value>]) -> Result<(), StoreError> {
        let rows = columns.first().map(Vec::len).unwrap_or(0);
        if rows == 0 {
            return Ok(());
        }
        let encoded = encode_segment(columns);
        let file = self.store.fresh_segment_name(&self.table);
        write_segment_file(&self.store.dir.join(&file), &encoded)?;
        self.pending.push(SegmentMeta {
            file,
            rows: rows as u64,
            stored_bytes: encoded.bytes.len() as u64,
            checksum: encoded.checksum,
            zones: encoded.zones.columns,
        });
        Ok(())
    }

    /// Rows staged so far.
    pub fn staged_rows(&self) -> u64 {
        self.pending.iter().map(|s| s.rows).sum()
    }

    /// Publishes every staged segment with one atomic manifest commit.
    pub fn commit(mut self) -> Result<(), StoreError> {
        // Persist the segment files' *directory entries* before the manifest
        // rename: the files' contents are already fsynced, but without this
        // a power loss could journal the renamed MANIFEST while the new
        // files' dirents are lost — a catalog referencing missing segments,
        // which is neither the old nor the new state. (Directory fsync is
        // not supported everywhere; a failure degrades durability, not
        // atomicity, so it is tolerated — same policy as Manifest::commit.)
        if !self.pending.is_empty() {
            if let Ok(d) = std::fs::File::open(&self.store.dir) {
                let _ = d.sync_all();
            }
        }
        // The durable commit runs against a scratch copy of the catalog; the
        // shared manifest is only replaced after the on-disk commit succeeds.
        // On failure the in-memory state therefore still matches MANIFEST,
        // `pending` is untouched, and Drop removes the staged files — a
        // retried flush cannot double-publish rows.
        let mut manifest = self.store.manifest.write();
        let mut next = manifest.clone();
        let table = next
            .tables
            .get_mut(&self.table)
            .ok_or_else(|| StoreError::new(format!("unknown table {}", self.table)))?;
        table.segments.extend(self.pending.iter().cloned());
        next.version += 1;
        next.commit(&self.store.dir)?;
        *manifest = next;
        self.pending.clear();
        self.committed = true;
        Ok(())
    }
}

impl Drop for BulkLoad {
    fn drop(&mut self) {
        // An explicit abort cleans up eagerly; a real kill cannot run this,
        // which is what the open-time orphan sweep is for.
        if !self.committed {
            for seg in &self.pending {
                let _ = std::fs::remove_file(self.store.dir.join(&seg.file));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, Arc<Store>) {
        let dir = std::env::temp_dir().join(format!("monomi-store-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn int_column(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
        vec![range.map(Value::Int).collect()]
    }

    #[test]
    fn load_commit_read_roundtrip() {
        let (dir, store) = temp_store("roundtrip");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..10)).unwrap();
        load.add_segment(&int_column(10..25)).unwrap();
        assert_eq!(load.staged_rows(), 25);
        load.commit().unwrap();

        assert_eq!(store.table_rows("t"), 25);
        let meta = store.table_meta("t").unwrap();
        assert_eq!(meta.segments.len(), 2);
        assert_eq!(meta.segments[1].zones[0].min, Some(Value::Int(10)));
        assert_eq!(meta.segments[1].zones[0].max, Some(Value::Int(24)));
        let data = store.read_segment(&meta.segments[0]).unwrap();
        assert_eq!(data.columns, int_column(0..10));

        // Reopen: everything survives.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.table_rows("t"), 25);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dropped_load_leaves_catalog_untouched_and_orphans_are_swept() {
        let (dir, store) = temp_store("crash");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut pre = store.begin_load("t");
        pre.add_segment(&int_column(0..5)).unwrap();
        pre.commit().unwrap();

        // Simulated kill mid-load: segment files exist, commit never runs.
        // `forget` skips the Drop cleanup, exactly like a killed process.
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(100..200)).unwrap();
        let orphan = store.dir.join(&load.pending[0].file);
        assert!(orphan.exists());
        std::mem::forget(load);

        drop(store);
        let store = Store::open(&dir).unwrap();
        // Catalog shows exactly the pre-load state; the orphan is gone.
        assert_eq!(store.table_rows("t"), 5);
        assert!(!orphan.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_table_replacement_drops_old_segments() {
        let (dir, store) = temp_store("replace");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..8)).unwrap();
        load.commit().unwrap();
        let old_file = store
            .dir
            .join(&store.table_meta("t").unwrap().segments[0].file);
        assert!(old_file.exists());
        store
            .create_table("t", vec![("y".into(), ColumnType::Str)])
            .unwrap();
        assert_eq!(store.table_rows("t"), 0);
        assert!(!old_file.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_segment_file_is_reported() {
        let (dir, store) = temp_store("corrupt");
        store
            .create_table("t", vec![("x".into(), ColumnType::Int)])
            .unwrap();
        let mut load = store.begin_load("t");
        load.add_segment(&int_column(0..64)).unwrap();
        load.commit().unwrap();
        let meta = store.table_meta("t").unwrap();
        let path = store.dir.join(&meta.segments[0].file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let err = store.read_segment(&meta.segments[0]).unwrap_err();
        assert!(err.message.contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
