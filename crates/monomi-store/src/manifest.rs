//! The crash-safe catalog: one `MANIFEST` file describing every table and
//! segment the store considers live.
//!
//! The commit protocol is write-temp + fsync + atomic rename (+ directory
//! fsync), the classic single-file crash-safety recipe: readers only ever see
//! the `MANIFEST` path, and the rename installs the new catalog in one
//! indivisible step. A bulk load therefore works like this:
//!
//! 1. new segment files are written and fsynced under fresh, never-reused
//!    names — the old manifest does not reference them, so a crash here
//!    leaves only harmless orphans;
//! 2. the store directory is fsynced, persisting the new files' directory
//!    entries, so the manifest can never outlive the files it references;
//! 3. one manifest commit appends the segments to the table's entry.
//!
//! Killed before 3, the store reopens to exactly the pre-load catalog;
//! the orphaned files are swept on open. The manifest carries its own CRC-64
//! trailer, so a torn write of the temp file (before the rename) can never be
//! mistaken for a valid catalog either.

use crate::encoding::{put_blob, Reader};
use crate::index::IndexKind;
use crate::segment::{ColumnZone, ZoneMap};
use crate::{crc64, ColumnType, StoreError};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MMAN";
/// Format version written by this build. Version 2 added per-segment index
/// files ([`IndexMeta`]) and the per-table `unindexed` opt-out list; version 1
/// manifests still load (their segments simply carry no indexes).
const VERSION: u32 = 2;
const MIN_VERSION: u32 = 1;

/// The name of the catalog file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Catalog entry for one segment's index file, published in the same
/// manifest commit as the segment it accelerates: a crash never leaves a
/// segment whose catalog entry references a half-written index.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexMeta {
    /// Index file name within the store directory.
    pub file: String,
    /// Size of the index file in bytes.
    pub stored_bytes: u64,
    /// CRC-64 the index file must carry.
    pub checksum: u64,
    /// `(column, kind)` of every block in the file, sorted by column name —
    /// the planner consults this without opening the file.
    pub columns: Vec<(String, IndexKind)>,
}

impl IndexMeta {
    /// The index kind persisted for `column`, if any.
    pub fn kind_of(&self, column: &str) -> Option<IndexKind> {
        self.columns
            .iter()
            .find(|(name, _)| name == column)
            .map(|&(_, kind)| kind)
    }
}

/// Catalog entry for one committed segment.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentMeta {
    /// File name within the store directory.
    pub file: String,
    /// Rows in the segment.
    pub rows: u64,
    /// Stored (encoded) size of the segment file in bytes — what a scan
    /// actually reads from disk.
    pub stored_bytes: u64,
    /// CRC-64 the segment file must carry.
    pub checksum: u64,
    /// Per-column zone map, written at load time.
    pub zones: Vec<ColumnZone>,
    /// The segment's index file, when one was built (`None` for segments
    /// loaded with indexes off or from a version-1 manifest).
    pub index: Option<IndexMeta>,
}

impl SegmentMeta {
    /// Logical (`Value::size_bytes`) footprint of the segment.
    pub fn logical_bytes(&self) -> u64 {
        self.zones.iter().map(|z| z.logical_bytes).sum()
    }

    /// View of the zone map with the row count attached.
    pub fn zone_map(&self) -> ZoneMap {
        ZoneMap {
            rows: self.rows,
            columns: self.zones.clone(),
        }
    }
}

/// Catalog entry for one table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableMeta {
    /// Columns as `(name, type)` in schema order.
    pub columns: Vec<(String, ColumnType)>,
    /// Committed segments in row order.
    pub segments: Vec<SegmentMeta>,
    /// Columns opted out of secondary indexes at `CREATE TABLE` time (the
    /// designer's storage/leakage tradeoff), sorted and deduplicated.
    pub unindexed: Vec<String>,
}

impl TableMeta {
    /// Total committed rows.
    pub fn rows(&self) -> u64 {
        self.segments.iter().map(|s| s.rows).sum()
    }
}

/// The whole catalog: a monotonically increasing version plus every table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Manifest {
    /// Incremented by every commit (diagnostics; orders segment file names).
    pub version: u64,
    /// Tables by lower-cased name.
    pub tables: BTreeMap<String, TableMeta>,
}

impl Manifest {
    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for (name, table) in &self.tables {
            put_blob(&mut out, name.as_bytes());
            out.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
            for (cname, ty) in &table.columns {
                put_blob(&mut out, cname.as_bytes());
                out.push(ty.tag());
            }
            out.extend_from_slice(&(table.unindexed.len() as u32).to_le_bytes());
            for cname in &table.unindexed {
                put_blob(&mut out, cname.as_bytes());
            }
            out.extend_from_slice(&(table.segments.len() as u32).to_le_bytes());
            for seg in &table.segments {
                put_blob(&mut out, seg.file.as_bytes());
                out.extend_from_slice(&seg.rows.to_le_bytes());
                out.extend_from_slice(&seg.stored_bytes.to_le_bytes());
                out.extend_from_slice(&seg.checksum.to_le_bytes());
                out.extend_from_slice(&(seg.zones.len() as u32).to_le_bytes());
                for zone in &seg.zones {
                    zone.serialize(&mut out);
                }
                match &seg.index {
                    None => out.push(0),
                    Some(index) => {
                        out.push(1);
                        put_blob(&mut out, index.file.as_bytes());
                        out.extend_from_slice(&index.stored_bytes.to_le_bytes());
                        out.extend_from_slice(&index.checksum.to_le_bytes());
                        out.extend_from_slice(&(index.columns.len() as u32).to_le_bytes());
                        for (cname, kind) in &index.columns {
                            put_blob(&mut out, cname.as_bytes());
                            out.push(kind.tag());
                        }
                    }
                }
            }
        }
        let checksum = crc64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    fn deserialize(bytes: &[u8]) -> Result<Manifest, StoreError> {
        if bytes.len() < MAGIC.len() + 4 + 8 + 4 + 8 {
            return Err(StoreError::new("manifest truncated"));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let trailer: [u8; 8] = trailer
            .try_into()
            .map_err(|_| StoreError::new("manifest trailer truncated"))?;
        let stored = u64::from_le_bytes(trailer);
        if stored != crc64(body) {
            return Err(StoreError::new("manifest checksum mismatch"));
        }
        let mut r = Reader::new(body);
        if r.take(4)? != MAGIC {
            return Err(StoreError::new("bad manifest magic"));
        }
        let version_fmt = r.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version_fmt) {
            return Err(StoreError::new(format!(
                "unknown manifest version {version_fmt}"
            )));
        }
        let version = r.u64()?;
        let table_count = r.u32()? as usize;
        let mut tables = BTreeMap::new();
        for _ in 0..table_count {
            let name = r.string()?;
            let column_count = r.u32()? as usize;
            let mut columns = Vec::with_capacity(column_count);
            for _ in 0..column_count {
                let cname = r.string()?;
                let ty = ColumnType::from_tag(r.u8()?)
                    .ok_or_else(|| StoreError::new("bad column type tag"))?;
                columns.push((cname, ty));
            }
            let mut unindexed = Vec::new();
            if version_fmt >= 2 {
                let unindexed_count = r.u32()? as usize;
                for _ in 0..unindexed_count {
                    unindexed.push(r.string()?);
                }
            }
            let segment_count = r.u32()? as usize;
            let mut segments = Vec::with_capacity(segment_count);
            for _ in 0..segment_count {
                let file = r.string()?;
                let rows = r.u64()?;
                let stored_bytes = r.u64()?;
                let checksum = r.u64()?;
                let zone_count = r.u32()? as usize;
                let mut zones = Vec::with_capacity(zone_count);
                for _ in 0..zone_count {
                    zones.push(ColumnZone::deserialize(&mut r)?);
                }
                let index = if version_fmt >= 2 && r.u8()? != 0 {
                    let ifile = r.string()?;
                    let istored_bytes = r.u64()?;
                    let ichecksum = r.u64()?;
                    let icolumn_count = r.u32()? as usize;
                    let mut icolumns = Vec::with_capacity(icolumn_count);
                    for _ in 0..icolumn_count {
                        let cname = r.string()?;
                        let kind = IndexKind::from_tag(r.u8()?)
                            .ok_or_else(|| StoreError::new("bad index kind tag"))?;
                        icolumns.push((cname, kind));
                    }
                    Some(IndexMeta {
                        file: ifile,
                        stored_bytes: istored_bytes,
                        checksum: ichecksum,
                        columns: icolumns,
                    })
                } else {
                    None
                };
                segments.push(SegmentMeta {
                    file,
                    rows,
                    stored_bytes,
                    checksum,
                    zones,
                    index,
                });
            }
            tables.insert(
                name,
                TableMeta {
                    columns,
                    segments,
                    unindexed,
                },
            );
        }
        if !r.is_empty() {
            return Err(StoreError::new("trailing bytes in manifest"));
        }
        Ok(Manifest { version, tables })
    }

    /// Loads the catalog from a store directory; a missing `MANIFEST` is an
    /// empty (freshly initialized) store.
    pub fn load(dir: &Path) -> Result<Manifest, StoreError> {
        let path = dir.join(MANIFEST_FILE);
        match std::fs::read(&path) {
            Ok(bytes) => Manifest::deserialize(&bytes)
                .map_err(|e| StoreError::new(format!("{}: {}", path.display(), e.message))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically installs this catalog as the store's `MANIFEST`:
    /// write-temp, fsync, rename, fsync the directory. After this returns,
    /// either the previous or this catalog survives any crash — never a torn
    /// mix.
    pub fn commit(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(MANIFEST_TMP);
        let dst = dir.join(MANIFEST_FILE);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.serialize())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &dst)?;
        // Persist the rename itself. Directory fsync is not supported
        // everywhere (e.g. Windows); failures degrade durability of the very
        // last commit, not atomicity, so they are tolerated.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::ZoneMap;
    use crate::Value;

    fn sample_manifest() -> Manifest {
        let zones = ZoneMap::of(&[
            vec![Value::Int(1), Value::Null],
            vec![Value::Str("x".into()), Value::Str("y".into())],
        ]);
        let mut tables = BTreeMap::new();
        tables.insert(
            "orders".to_string(),
            TableMeta {
                columns: vec![
                    ("o_orderkey".into(), ColumnType::Int),
                    ("o_comment".into(), ColumnType::Str),
                ],
                segments: vec![SegmentMeta {
                    file: "orders-1-0.seg".into(),
                    rows: 2,
                    stored_bytes: 123,
                    checksum: 0xDEAD_BEEF,
                    zones: zones.columns,
                    index: Some(IndexMeta {
                        file: "orders-1-0.idx".into(),
                        stored_bytes: 77,
                        checksum: 0xFEED_FACE,
                        columns: vec![
                            ("o_comment".into(), IndexKind::Det),
                            ("o_orderkey".into(), IndexKind::Ope),
                        ],
                    }),
                }],
                unindexed: vec!["o_secret".into()],
            },
        );
        Manifest { version: 7, tables }
    }

    /// Serializes `m` in the version-1 layout (no index files, no opt-out
    /// list) so the upgrade path stays covered.
    fn serialize_v1(m: &Manifest) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&m.version.to_le_bytes());
        out.extend_from_slice(&(m.tables.len() as u32).to_le_bytes());
        for (name, table) in &m.tables {
            put_blob(&mut out, name.as_bytes());
            out.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
            for (cname, ty) in &table.columns {
                put_blob(&mut out, cname.as_bytes());
                out.push(ty.tag());
            }
            out.extend_from_slice(&(table.segments.len() as u32).to_le_bytes());
            for seg in &table.segments {
                put_blob(&mut out, seg.file.as_bytes());
                out.extend_from_slice(&seg.rows.to_le_bytes());
                out.extend_from_slice(&seg.stored_bytes.to_le_bytes());
                out.extend_from_slice(&seg.checksum.to_le_bytes());
                out.extend_from_slice(&(seg.zones.len() as u32).to_le_bytes());
                for zone in &seg.zones {
                    zone.serialize(&mut out);
                }
            }
        }
        let checksum = crc64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn version_1_manifests_still_load_without_index_metadata() {
        let m = sample_manifest();
        let back = Manifest::deserialize(&serialize_v1(&m)).unwrap();
        assert_eq!(back.version, m.version);
        let table = &back.tables["orders"];
        assert_eq!(table.columns, m.tables["orders"].columns);
        assert!(table.unindexed.is_empty());
        assert_eq!(table.segments.len(), 1);
        assert_eq!(table.segments[0].index, None);
        assert_eq!(table.segments[0].file, "orders-1-0.seg");
        // Re-committing writes version 2; the index stays absent but the
        // catalog round-trips.
        assert_eq!(Manifest::deserialize(&back.serialize()).unwrap(), back);
    }

    #[test]
    fn future_manifest_versions_are_rejected() {
        let mut bytes = sample_manifest().serialize();
        // Overwrite the format version field (right after the magic) and
        // re-seal the checksum.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let crc = crc64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = Manifest::deserialize(&bytes).unwrap_err();
        assert!(err.message.contains("unknown manifest version"));
    }

    #[test]
    fn manifest_serialization_roundtrips() {
        let m = sample_manifest();
        let bytes = m.serialize();
        let back = Manifest::deserialize(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.tables["orders"].rows(), 2);
        assert!(back.tables["orders"].segments[0].logical_bytes() > 0);
    }

    #[test]
    fn corrupted_manifest_is_rejected() {
        let bytes = sample_manifest().serialize();
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x10;
            assert!(Manifest::deserialize(&corrupted).is_err(), "byte {i}");
        }
    }

    #[test]
    fn commit_then_load_roundtrips_and_missing_manifest_is_empty() {
        let dir = std::env::temp_dir().join(format!("monomi-man-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        let m = sample_manifest();
        m.commit(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
