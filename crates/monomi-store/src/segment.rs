//! Write-once segment files and their zone maps.
//!
//! A segment holds one fixed run of a table's rows, column-major:
//!
//! ```text
//! [magic "MSEG" | version u32 | column_count u32 | row_count u32]
//! [encoded column 0]                      (see crate::encoding)
//! [encoded column 1]
//! ...
//! [crc64 of everything above, u64 LE]
//! ```
//!
//! The trailing CRC-64 is verified on every read, so a flipped byte anywhere
//! in the file is caught before values reach the engine. Zone maps are
//! computed *while* the segment is encoded (row count plus per-column null
//! count, logical byte size, and min/max under [`Value::compare`]'s total
//! order — the same order scan predicates evaluate with) and returned to the
//! caller, which persists them in the manifest; pruning therefore never opens
//! a segment file.

use crate::encoding::{decode_column, encode_column, read_value, write_value, Reader};
use crate::value::Value;
use crate::{crc64, StoreError};
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"MSEG";
const VERSION: u32 = 1;

/// Zone-map entry for one column of one segment.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnZone {
    /// NULLs in this column of the segment.
    pub null_count: u64,
    /// Logical bytes (`Value::size_bytes`) of this column's values — the
    /// backend-independent accounting the space experiments use.
    pub logical_bytes: u64,
    /// Minimum non-null value under `Value::compare` (`None` ⇔ all NULL).
    pub min: Option<Value>,
    /// Maximum non-null value under `Value::compare` (`None` ⇔ all NULL).
    pub max: Option<Value>,
}

impl ColumnZone {
    fn of(values: &[Value]) -> ColumnZone {
        let mut null_count = 0u64;
        let mut logical_bytes = 0u64;
        let mut min: Option<&Value> = None;
        let mut max: Option<&Value> = None;
        for v in values {
            logical_bytes += v.size_bytes() as u64;
            if v.is_null() {
                null_count += 1;
                continue;
            }
            if min.is_none_or(|m| v.compare(m).is_lt()) {
                min = Some(v);
            }
            if max.is_none_or(|m| v.compare(m).is_gt()) {
                max = Some(v);
            }
        }
        ColumnZone {
            null_count,
            logical_bytes,
            min: min.cloned(),
            max: max.cloned(),
        }
    }

    pub(crate) fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.null_count.to_le_bytes());
        out.extend_from_slice(&self.logical_bytes.to_le_bytes());
        match &self.min {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                write_value(out, v);
            }
        }
        match &self.max {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                write_value(out, v);
            }
        }
    }

    pub(crate) fn deserialize(r: &mut Reader<'_>) -> Result<ColumnZone, StoreError> {
        let null_count = r.u64()?;
        let logical_bytes = r.u64()?;
        let min = match r.u8()? {
            0 => None,
            _ => Some(read_value(r)?),
        };
        let max = match r.u8()? {
            0 => None,
            _ => Some(read_value(r)?),
        };
        Ok(ColumnZone {
            null_count,
            logical_bytes,
            min,
            max,
        })
    }
}

/// Zone map of one segment: row count plus one [`ColumnZone`] per column.
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneMap {
    /// Rows in the segment.
    pub rows: u64,
    /// Per-column statistics, in schema order.
    pub columns: Vec<ColumnZone>,
}

impl ZoneMap {
    /// Computes the zone map of a column-major row run.
    pub fn of(columns: &[Vec<Value>]) -> ZoneMap {
        ZoneMap {
            rows: columns.first().map(|c| c.len() as u64).unwrap_or(0),
            columns: columns.iter().map(|c| ColumnZone::of(c)).collect(),
        }
    }

    /// Logical bytes (`Value::size_bytes`) across all columns.
    pub fn logical_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.logical_bytes).sum()
    }
}

/// The encoded form of one segment, ready to be written to a file.
pub struct EncodedSegment {
    /// The full file contents (header + columns + checksum trailer).
    pub bytes: Vec<u8>,
    /// Zone map computed during encoding.
    pub zones: ZoneMap,
    /// CRC-64 of the file body (everything before the trailer).
    pub checksum: u64,
}

/// Encodes a column-major row run into segment-file bytes plus its zone map.
pub fn encode_segment(columns: &[Vec<Value>]) -> EncodedSegment {
    let rows = columns.first().map(|c| c.len()).unwrap_or(0);
    debug_assert!(columns.iter().all(|c| c.len() == rows));
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(columns.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&(rows as u32).to_le_bytes());
    for column in columns {
        bytes.extend_from_slice(&encode_column(column));
    }
    let checksum = crc64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    EncodedSegment {
        zones: ZoneMap::of(columns),
        checksum,
        bytes,
    }
}

/// Writes an encoded segment to `path` and fsyncs it, so the file is durable
/// before the manifest ever references it.
pub fn write_segment_file(path: &Path, encoded: &EncodedSegment) -> Result<(), StoreError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encoded.bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Reads and decodes a segment file, verifying the checksum trailer (and,
/// when the caller knows it, the manifest-recorded checksum) before any value
/// is decoded.
pub fn read_segment_file(
    path: &Path,
    expected_checksum: Option<u64>,
) -> Result<Vec<Vec<Value>>, StoreError> {
    let bytes = std::fs::read(path)?;
    decode_segment(&bytes, expected_checksum)
        .map_err(|e| StoreError::new(format!("{}: {}", path.display(), e.message)))
}

/// Decodes segment-file bytes (exposed separately for tests).
pub fn decode_segment(
    bytes: &[u8],
    expected_checksum: Option<u64>,
) -> Result<Vec<Vec<Value>>, StoreError> {
    if bytes.len() < MAGIC.len() + 4 + 4 + 4 + 8 {
        return Err(StoreError::new("segment file truncated"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let trailer: [u8; 8] = trailer
        .try_into()
        .map_err(|_| StoreError::new("segment trailer truncated"))?;
    let stored = u64::from_le_bytes(trailer);
    let actual = crc64(body);
    if stored != actual {
        return Err(StoreError::new(format!(
            "segment checksum mismatch (stored {stored:#018x}, computed {actual:#018x})"
        )));
    }
    if let Some(expected) = expected_checksum {
        if expected != actual {
            return Err(StoreError::new(format!(
                "segment checksum {actual:#018x} does not match catalog entry {expected:#018x}"
            )));
        }
    }
    let mut r = Reader::new(body);
    if r.take(4)? != MAGIC {
        return Err(StoreError::new("bad segment magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::new(format!(
            "unknown segment version {version}"
        )));
    }
    let column_count = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let mut columns = Vec::with_capacity(column_count);
    let mut offset = MAGIC.len() + 4 + 4 + 4;
    for _ in 0..column_count {
        let column_bytes = body
            .get(offset..)
            .ok_or_else(|| StoreError::new("segment column data truncated"))?;
        let (values, consumed) = decode_column(column_bytes)?;
        if values.len() != rows {
            return Err(StoreError::new("column row count mismatch"));
        }
        offset += consumed;
        columns.push(values);
    }
    Ok(columns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_columns() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(3), Value::Int(1), Value::Null, Value::Int(9)],
            vec![
                Value::Str("b".into()),
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Null,
            ],
        ]
    }

    #[test]
    fn segment_roundtrips_and_zone_map_bounds_hold() {
        let columns = sample_columns();
        let encoded = encode_segment(&columns);
        assert_eq!(encoded.zones.rows, 4);
        assert_eq!(encoded.zones.columns[0].null_count, 1);
        assert_eq!(encoded.zones.columns[0].min, Some(Value::Int(1)));
        assert_eq!(encoded.zones.columns[0].max, Some(Value::Int(9)));
        assert_eq!(encoded.zones.columns[1].min, Some(Value::Str("a".into())));
        let decoded = decode_segment(&encoded.bytes, Some(encoded.checksum)).unwrap();
        assert_eq!(decoded, columns);
    }

    #[test]
    fn flipped_byte_is_caught_by_the_checksum() {
        let encoded = encode_segment(&sample_columns());
        // Flip one byte anywhere in the body: every position must be caught.
        for i in 0..encoded.bytes.len() - 8 {
            let mut corrupted = encoded.bytes.clone();
            corrupted[i] ^= 0x40;
            let err = decode_segment(&corrupted, Some(encoded.checksum)).unwrap_err();
            assert!(err.message.contains("checksum"), "byte {i}: {err}");
        }
    }

    #[test]
    fn checksum_must_match_catalog_entry() {
        let encoded = encode_segment(&sample_columns());
        // File is internally consistent but does not match what the catalog
        // recorded (e.g. the file was swapped wholesale).
        let err = decode_segment(&encoded.bytes, Some(encoded.checksum ^ 1)).unwrap_err();
        assert!(err.message.contains("catalog"));
    }

    #[test]
    fn all_null_column_has_no_bounds() {
        let columns = vec![vec![Value::Null, Value::Null]];
        let z = ZoneMap::of(&columns);
        assert_eq!(z.columns[0].null_count, 2);
        assert_eq!(z.columns[0].min, None);
        assert_eq!(z.columns[0].max, None);
        assert_eq!(z.columns[0].logical_bytes, 2);
    }

    #[test]
    fn zone_serialization_roundtrips() {
        let zones = ZoneMap::of(&sample_columns());
        for zone in &zones.columns {
            let mut buf = Vec::new();
            zone.serialize(&mut buf);
            let back = ColumnZone::deserialize(&mut Reader::new(&buf)).unwrap();
            assert_eq!(&back, zone);
        }
    }
}
