#![forbid(unsafe_code)]
//! # monomi-store
//!
//! The persistent storage layer under `monomi-engine`: write-once on-disk
//! columnar segments with per-segment zone maps, a crash-safe catalog
//! (manifest), and a byte-budgeted segment cache.
//!
//! The paper's server is disk-resident Postgres (the evaluation flushes
//! caches so queries hit disk); this crate gives the reproduction's engine a
//! real on-disk backend instead of modelling disk time from in-memory byte
//! counts. Design, in one paragraph:
//!
//! * **Segments** ([`segment`]) are write-once files holding a fixed run of
//!   rows, column-major. Each column is stored under the cheapest encoding
//!   its values admit ([`encoding`]): fixed-width for ints/dates/floats,
//!   dictionary for strings and DET ciphertexts (which repeat), raw
//!   length-prefixed bytes for Paillier/RND ciphertexts (which do not), and a
//!   tagged generic fallback for anything mixed. NULLs live in a per-column
//!   bitmap. A CRC-64 trailer detects corruption at read time.
//! * **Zone maps** ([`segment::ZoneMap`]) are computed while a segment is
//!   written: row count plus per-column null count, min, and max (under
//!   [`Value::compare`]'s total order, the same order predicates evaluate
//!   with — which is what makes pruning sound). They are stored in the
//!   manifest so pruning never opens a segment file.
//! * The **manifest** ([`manifest`]) is the catalog: table schemas and their
//!   segment lists. Every mutation rewrites it via write-temp + fsync +
//!   rename, so a killed bulk load leaves either the old or the new table
//!   visible — never a torn one. Orphaned segment files from aborted loads
//!   are swept on open.
//! * **Indexes** ([`index`]) are per-segment DET-equality dictionaries and
//!   OPE-ordered postings built while a segment is written and published
//!   through the same manifest commit, giving point and range predicates a
//!   sub-scan access path (`MONOMI_INDEXES` gates which kinds exist).
//! * The **cache** ([`cache`]) holds decoded segments under a byte budget
//!   (`MONOMI_CACHE_BYTES`), evicting least-recently-used; decoded index
//!   files get their own budgeted slot (`MONOMI_INDEX_CACHE_BYTES`).
//!
//! [`store::Store`] ties the pieces together; `monomi-engine`'s `Database`
//! selects it as a backend via `MONOMI_STORAGE=disk` or `Database::open`.
//!
//! This crate also homes the engine's runtime [`Value`] model (and
//! [`ColumnType`]): the store must encode values exactly — variant and bit
//! pattern included, so disk-backed execution stays byte-identical to the
//! in-memory backend — which puts the value model at the bottom of the
//! crate DAG. `monomi-engine` re-exports both, so callers are unaffected.

pub mod cache;
pub mod encoding;
pub mod env;
pub mod index;
pub mod manifest;
pub mod segment;
pub mod store;
pub mod value;

pub use cache::{ByteLru, CacheWeight, SegmentCache};
pub use encoding::{put_blob, read_value, write_value, Reader};
pub use env::env_knob;
pub use index::{
    decode_segment_indexes, encode_segment_indexes, planned_index_kind, IndexBlock, IndexKind,
    IndexMode, SegmentIndexes, INDEX_MODE_ENV,
};
pub use manifest::{IndexMeta, Manifest, SegmentMeta, TableMeta};
pub use segment::{ColumnZone, ZoneMap};
pub use store::{BulkLoad, SegmentData, Store, StoreOptions};
pub use value::{date, Value};

use serde::{Deserialize, Serialize};

/// Logical column types (moved here from `monomi-engine` so the manifest can
/// persist table schemas; the engine re-exports this type unchanged).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    Int,
    Float,
    Str,
    Date,
    Bytes,
}

impl ColumnType {
    /// Approximate fixed width for the cost model, in bytes (strings and byte
    /// columns use per-value sizes from the data instead).
    pub fn nominal_width(&self) -> usize {
        match self {
            ColumnType::Int => 8,
            ColumnType::Float => 8,
            ColumnType::Date => 4,
            ColumnType::Str => 16,
            ColumnType::Bytes => 16,
        }
    }

    /// Stable one-byte tag used by the on-disk manifest and the wire
    /// protocol.
    pub fn tag(self) -> u8 {
        match self {
            ColumnType::Int => 0,
            ColumnType::Float => 1,
            ColumnType::Str => 2,
            ColumnType::Date => 3,
            ColumnType::Bytes => 4,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<ColumnType> {
        Some(match tag {
            0 => ColumnType::Int,
            1 => ColumnType::Float,
            2 => ColumnType::Str,
            3 => ColumnType::Date,
            4 => ColumnType::Bytes,
            _ => return None,
        })
    }
}

/// Error type for all store operations.
#[derive(Debug)]
pub struct StoreError {
    /// Human-readable description.
    pub message: String,
}

impl StoreError {
    /// Creates an error from anything stringifiable.
    pub fn new(message: impl Into<String>) -> Self {
        StoreError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::new(format!("io: {e}"))
    }
}

/// CRC-64 (ECMA-182 polynomial, bit-reflected — the `crc64xz` variant) over a
/// byte slice. Used as the corruption check for segment files and the
/// manifest: any single flipped byte is guaranteed to change the checksum.
pub fn crc64(bytes: &[u8]) -> u64 {
    const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182
    static TABLE: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u64; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = !0u64;
    for &b in bytes {
        // monomi-lint: allow(panic-freedom): the index is masked with 0xFF, always in range for the 256-entry table
        crc = table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_detects_any_single_byte_flip() {
        let data = b"monomi segment payload with some length".to_vec();
        let base = crc64(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(base, crc64(&corrupted), "flip at byte {i} bit {bit}");
            }
        }
        // Known-answer check for the crc64xz variant.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn column_type_tags_roundtrip() {
        for ty in [
            ColumnType::Int,
            ColumnType::Float,
            ColumnType::Str,
            ColumnType::Date,
            ColumnType::Bytes,
        ] {
            assert_eq!(ColumnType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(ColumnType::from_tag(9), None);
    }
}
