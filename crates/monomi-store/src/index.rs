//! Per-segment encrypted secondary indexes.
//!
//! MONOMI stores DET and OPE columns precisely so the untrusted server can
//! evaluate equality and range predicates over ciphertexts; this module gives
//! those predicates a sub-scan access path. At segment-encode time the store
//! builds, per eligible column, a sorted postings index:
//!
//! * **DET-equality dictionary** — sorted distinct DET ciphertexts, each with
//!   the ascending row ids where it occurs. Serves `=` / `IN` probes by
//!   binary search, exactly the lookup the paper's design allows a keyless
//!   server to run (ciphertext equality is all it needs).
//! * **OPE-ordered index** — the same layout over an order-preserving
//!   column: because OPE ciphertexts sort like their plaintexts, a range
//!   probe is two binary searches plus a postings union.
//!
//! Both kinds share one physical format; [`IndexKind`] records which probes
//! a block may serve. All blocks of one segment live in a single `.idx` file:
//!
//! ```text
//! [magic "MIDX" | version u32 | block_count u32]
//! per block:
//!   [column name blob | kind u8 | rows u32 | key_count u32]
//!   [key_count values, sorted ascending under Value::compare, no NULLs]
//!   [key_count postings lists: count u32, then `count` ascending row-id u32s]
//! [crc64 of everything above, u64 LE]
//! ```
//!
//! NULL rows are never indexed: SQL comparison predicates are never true of
//! NULL, so their absence cannot drop a matching row. The engine seeds a
//! segment's selection vector from probe results and still evaluates every
//! compiled predicate over the survivors, which makes the index an
//! *accelerator, not an oracle*: a missing or corrupted index (typed error,
//! never a panic) simply falls back to the full zone-mapped scan with
//! byte-identical results.
//!
//! Leakage note: a persisted index materializes the equality histogram (DET)
//! or total order (OPE) of a column at finer grain than the ciphertexts
//! alone reveal at rest. Columns can opt out at `CREATE TABLE` time (the
//! manifest's `unindexed` list) and whole kinds via `MONOMI_INDEXES`.

use crate::encoding::{put_blob, read_value, write_value, Reader};
use crate::value::Value;
use crate::{crc64, ColumnType, StoreError};

const MAGIC: &[u8; 4] = b"MIDX";
const VERSION: u32 = 1;

/// Environment knob selecting which index kinds are built and probed.
pub const INDEX_MODE_ENV: &str = "MONOMI_INDEXES";

/// What a persisted index block can serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Equality dictionary over a DET ciphertext column: `=` / `IN`.
    Det,
    /// Ordered index over an OPE (or plaintext) column: `=` / `IN` / ranges.
    Ope,
}

impl IndexKind {
    /// Stable one-byte tag used by the on-disk manifest and index files.
    pub fn tag(self) -> u8 {
        match self {
            IndexKind::Det => 0,
            IndexKind::Ope => 1,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: u8) -> Option<IndexKind> {
        Some(match tag {
            0 => IndexKind::Det,
            1 => IndexKind::Ope,
            _ => return None,
        })
    }
}

/// Which index kinds are enabled (`MONOMI_INDEXES=off|det|ope|all`).
///
/// Gates both *building* (store-side, at segment encode) and *probing*
/// (engine-side, at plan time), so `off` also measures the pure scan path
/// over data that happens to carry indexes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexMode {
    /// Build and probe nothing.
    Off,
    /// DET equality dictionaries only.
    Det,
    /// OPE ordered indexes only.
    Ope,
    /// Both kinds (the default).
    #[default]
    All,
}

impl IndexMode {
    /// Reads `MONOMI_INDEXES`, defaulting to [`IndexMode::All`].
    pub fn from_env() -> IndexMode {
        crate::env_knob(INDEX_MODE_ENV, IndexMode::All, |_| true)
    }

    /// Whether this mode enables indexes of `kind`.
    pub fn allows(self, kind: IndexKind) -> bool {
        match self {
            IndexMode::Off => false,
            IndexMode::Det => kind == IndexKind::Det,
            IndexMode::Ope => kind == IndexKind::Ope,
            IndexMode::All => true,
        }
    }
}

impl std::str::FromStr for IndexMode {
    type Err = String;

    fn from_str(s: &str) -> Result<IndexMode, String> {
        Ok(match s.to_ascii_lowercase().as_str() {
            "off" => IndexMode::Off,
            "det" => IndexMode::Det,
            "ope" => IndexMode::Ope,
            "all" => IndexMode::All,
            other => return Err(format!("unknown index mode {other:?}")),
        })
    }
}

impl std::fmt::Display for IndexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IndexMode::Off => "off",
            IndexMode::Det => "det",
            IndexMode::Ope => "ope",
            IndexMode::All => "all",
        })
    }
}

/// The index kind a column would get by naming convention, before the
/// per-table opt-out list and [`IndexMode`] gating are applied.
///
/// The encrypted-schema convention names columns `<base>_<scheme>`:
/// `_det` columns admit equality dictionaries, `_ope` columns admit ordered
/// indexes, while `_hom` / `_rnd` / `_search` ciphertexts reveal nothing a
/// keyless server could probe. Unsuffixed (plaintext) columns get an ordered
/// index — except `Bytes` columns, which are ciphertext blobs in practice.
pub fn planned_index_kind(column: &str, ty: ColumnType) -> Option<IndexKind> {
    let lower = column.to_ascii_lowercase();
    if lower.ends_with("_hom") || lower.ends_with("_rnd") || lower.ends_with("_search") {
        return None;
    }
    if lower.ends_with("_det") {
        return Some(IndexKind::Det);
    }
    if lower.ends_with("_ope") {
        return Some(IndexKind::Ope);
    }
    match ty {
        ColumnType::Bytes => None,
        _ => Some(IndexKind::Ope),
    }
}

/// One column's index within a segment: sorted distinct keys with ascending
/// row-id postings in CSR layout.
#[derive(Debug)]
pub struct IndexBlock {
    /// Schema column name this block indexes.
    pub column: String,
    /// Which probes this block may serve.
    pub kind: IndexKind,
    /// Rows in the indexed segment (NULL rows are absent from postings).
    pub rows: u32,
    /// Distinct non-null keys, strictly ascending under `Value::compare`.
    keys: Vec<Value>,
    /// CSR offsets into `row_ids`, length `keys.len() + 1`.
    starts: Vec<u32>,
    /// Concatenated postings; ascending within each key's run.
    row_ids: Vec<u32>,
}

impl IndexBlock {
    /// Distinct keys in this block.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Indexed (non-null) rows in this block.
    pub fn posting_count(&self) -> usize {
        self.row_ids.len()
    }

    fn postings_at(&self, key_idx: usize) -> &[u32] {
        let (Some(&start), Some(&end)) = (self.starts.get(key_idx), self.starts.get(key_idx + 1))
        else {
            return &[];
        };
        self.row_ids
            .get(start as usize..end as usize)
            .unwrap_or(&[])
    }

    /// Ascending row ids whose value equals `v` under `Value::compare`
    /// (empty for NULL: equality is never true of NULL).
    pub fn postings_eq(&self, v: &Value) -> &[u32] {
        if v.is_null() {
            return &[];
        }
        match self.keys.binary_search_by(|k| k.compare(v)) {
            Ok(i) => self.postings_at(i),
            Err(_) => &[],
        }
    }

    /// Ascending row ids whose value equals any member of `values` (NULL
    /// members are ignored, matching SQL `IN` semantics).
    pub fn postings_in(&self, values: &[Value]) -> Vec<u32> {
        let mut out = Vec::new();
        for v in values {
            out.extend_from_slice(self.postings_eq(v));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ascending row ids whose value lies in the given range; each bound is
    /// `(value, inclusive)`, `None` meaning unbounded on that side.
    pub fn postings_range(
        &self,
        low: Option<(&Value, bool)>,
        high: Option<(&Value, bool)>,
    ) -> Vec<u32> {
        let lo = match low {
            None => 0,
            Some((v, inclusive)) => self.keys.partition_point(|k| match k.compare(v) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => !inclusive,
                std::cmp::Ordering::Greater => false,
            }),
        };
        let hi = match high {
            None => self.keys.len(),
            Some((v, inclusive)) => self.keys.partition_point(|k| match k.compare(v) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => inclusive,
                std::cmp::Ordering::Greater => false,
            }),
        };
        let mut out = Vec::new();
        for i in lo..hi {
            out.extend_from_slice(self.postings_at(i));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn heap_bytes(&self) -> usize {
        self.column.len()
            + self.keys.iter().map(|v| v.size_bytes()).sum::<usize>()
            + self.starts.len() * 4
            + self.row_ids.len() * 4
            + std::mem::size_of::<IndexBlock>()
    }
}

/// All index blocks of one segment, decoded; blocks are sorted by column
/// name so lookup is a binary search (and iteration order is deterministic).
#[derive(Debug)]
pub struct SegmentIndexes {
    blocks: Vec<IndexBlock>,
    /// Approximate decoded size, for the cache budget.
    pub heap_bytes: usize,
}

impl SegmentIndexes {
    /// The block indexing `column`, if one was built.
    pub fn block(&self, column: &str) -> Option<&IndexBlock> {
        self.blocks
            .binary_search_by(|b| b.column.as_str().cmp(column))
            .ok()
            .and_then(|i| self.blocks.get(i))
    }

    /// All blocks, sorted by column name.
    pub fn blocks(&self) -> &[IndexBlock] {
        &self.blocks
    }
}

/// An encoded per-segment index file, ready to write.
pub struct EncodedIndexes {
    /// The full file image, CRC-64 trailer included.
    pub bytes: Vec<u8>,
    /// The trailer checksum, recorded in the manifest.
    pub checksum: u64,
    /// `(column, kind)` of every block, in file order (sorted by column).
    pub columns: Vec<(String, IndexKind)>,
}

/// Builds the index file image for one segment, or `None` when no column is
/// eligible (empty segment, every column opted out, or `mode` is `off`).
///
/// `schema` and `columns` are parallel; `unindexed` is the table's opt-out
/// list of column names.
pub fn encode_segment_indexes(
    schema: &[(String, ColumnType)],
    unindexed: &[String],
    mode: IndexMode,
    columns: &[Vec<Value>],
) -> Option<EncodedIndexes> {
    let rows = columns.first().map(|c| c.len()).unwrap_or(0);
    if rows == 0 || rows > u32::MAX as usize {
        return None;
    }
    let mut eligible: Vec<(usize, &str, IndexKind)> = Vec::new();
    for (i, (name, ty)) in schema.iter().enumerate() {
        if unindexed.iter().any(|u| u == name) {
            continue;
        }
        let Some(kind) = planned_index_kind(name, *ty) else {
            continue;
        };
        if !mode.allows(kind) {
            continue;
        }
        if columns.get(i).is_some() {
            eligible.push((i, name.as_str(), kind));
        }
    }
    if eligible.is_empty() {
        return None;
    }
    // File order == lookup order: sorted by column name.
    eligible.sort_by(|a, b| a.1.cmp(b.1));

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(eligible.len() as u32).to_le_bytes());
    let mut built = Vec::with_capacity(eligible.len());
    for &(col_idx, name, kind) in &eligible {
        let values = columns.get(col_idx)?;
        put_blob(&mut out, name.as_bytes());
        out.push(kind.tag());
        out.extend_from_slice(&(rows as u32).to_le_bytes());
        // Sort non-null row ids by (value, row id); equal-by-compare values
        // (e.g. Int 5 and Float 5.0) share one key group, matching the
        // equality the scan predicates evaluate with.
        let mut order: Vec<u32> = (0..rows as u32)
            .filter(|&i| values.get(i as usize).is_some_and(|v| !v.is_null()))
            .collect();
        order.sort_by(|&a, &b| {
            let va = values.get(a as usize).unwrap_or(&Value::Null);
            let vb = values.get(b as usize).unwrap_or(&Value::Null);
            va.compare(vb).then(a.cmp(&b))
        });
        let mut keys: Vec<&Value> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        for &id in &order {
            let v = values.get(id as usize).unwrap_or(&Value::Null);
            match keys.last() {
                Some(last) if last.compare(v).is_eq() => {
                    if let Some(c) = counts.last_mut() {
                        *c += 1;
                    }
                }
                _ => {
                    keys.push(v);
                    counts.push(1);
                }
            }
        }
        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for k in &keys {
            write_value(&mut out, k);
        }
        let mut cursor = 0usize;
        for &count in &counts {
            out.extend_from_slice(&count.to_le_bytes());
            for &id in order.get(cursor..cursor + count as usize).unwrap_or(&[]) {
                out.extend_from_slice(&id.to_le_bytes());
            }
            cursor += count as usize;
        }
        built.push((name.to_string(), kind));
    }
    let checksum = crc64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Some(EncodedIndexes {
        bytes: out,
        checksum,
        columns: built,
    })
}

/// Decodes a segment index file, verifying the CRC-64 trailer (and, when
/// given, the checksum the manifest recorded at publish time). Every failure
/// is a typed [`StoreError`]; callers fall back to the scan path.
pub fn decode_segment_indexes(
    bytes: &[u8],
    expected_checksum: Option<u64>,
) -> Result<SegmentIndexes, StoreError> {
    if bytes.len() < 8 {
        return Err(StoreError::new("index file too short"));
    }
    let split = bytes.len() - 8;
    let body = bytes.get(..split).unwrap_or(&[]);
    let trailer = bytes
        .get(split..)
        .and_then(|t| <[u8; 8]>::try_from(t).ok())
        .map(u64::from_le_bytes)
        .ok_or_else(|| StoreError::new("index file too short"))?;
    let actual = crc64(body);
    if actual != trailer {
        return Err(StoreError::new(format!(
            "index checksum mismatch: stored {trailer:#x}, computed {actual:#x}"
        )));
    }
    if let Some(expected) = expected_checksum {
        if actual != expected {
            return Err(StoreError::new(format!(
                "index checksum {actual:#x} does not match catalog {expected:#x}"
            )));
        }
    }
    let mut r = Reader::new(body);
    if r.take(4)? != MAGIC {
        return Err(StoreError::new("bad index magic"));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(StoreError::new(format!("unknown index version {version}")));
    }
    let block_count = r.u32()? as usize;
    let mut blocks = Vec::new();
    for _ in 0..block_count {
        let column = r.string()?;
        let kind = IndexKind::from_tag(r.u8()?)
            .ok_or_else(|| StoreError::new("unknown index kind tag"))?;
        let rows = r.u32()?;
        let key_count = r.u32()? as usize;
        if key_count > rows as usize {
            return Err(StoreError::new("index key count exceeds row count"));
        }
        let mut keys = Vec::with_capacity(key_count);
        for _ in 0..key_count {
            let v = read_value(&mut r)?;
            if v.is_null() {
                return Err(StoreError::new("NULL key in index block"));
            }
            if let Some(prev) = keys.last() {
                let prev: &Value = prev;
                if !prev.compare(&v).is_lt() {
                    return Err(StoreError::new("index keys out of order"));
                }
            }
            keys.push(v);
        }
        let mut starts = Vec::with_capacity(key_count + 1);
        starts.push(0u32);
        let mut row_ids: Vec<u32> = Vec::new();
        for _ in 0..key_count {
            let count = r.u32()? as usize;
            if count == 0 {
                return Err(StoreError::new("empty postings list in index block"));
            }
            let mut prev: Option<u32> = None;
            for _ in 0..count {
                let id = r.u32()?;
                if id >= rows || prev.is_some_and(|p| p >= id) {
                    return Err(StoreError::new("index postings out of order"));
                }
                prev = Some(id);
                row_ids.push(id);
            }
            if row_ids.len() > rows as usize {
                return Err(StoreError::new("index postings exceed row count"));
            }
            starts.push(row_ids.len() as u32);
        }
        blocks.push(IndexBlock {
            column,
            kind,
            rows,
            keys,
            starts,
            row_ids,
        });
    }
    if !r.is_empty() {
        return Err(StoreError::new("trailing bytes in index file"));
    }
    if !blocks.windows(2).all(|w| match (w.first(), w.last()) {
        (Some(a), Some(b)) => a.column < b.column,
        _ => true,
    }) {
        return Err(StoreError::new("index blocks out of order"));
    }
    let heap_bytes = blocks.iter().map(|b| b.heap_bytes()).sum::<usize>()
        + std::mem::size_of::<SegmentIndexes>();
    Ok(SegmentIndexes { blocks, heap_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Vec<(String, ColumnType)> {
        vec![
            ("k_det".to_string(), ColumnType::Str),
            ("v_ope".to_string(), ColumnType::Int),
            ("pay_rnd".to_string(), ColumnType::Bytes),
        ]
    }

    fn columns() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Str("b".into()),
                Value::Str("a".into()),
                Value::Null,
                Value::Str("b".into()),
                Value::Str("c".into()),
            ],
            vec![
                Value::Int(20),
                Value::Int(5),
                Value::Int(10),
                Value::Null,
                Value::Int(10),
            ],
            vec![Value::Bytes(vec![1]); 5],
        ]
    }

    fn build() -> SegmentIndexes {
        let enc =
            encode_segment_indexes(&schema(), &[], IndexMode::All, &columns()).expect("eligible");
        decode_segment_indexes(&enc.bytes, Some(enc.checksum)).expect("roundtrip")
    }

    #[test]
    fn roundtrip_builds_sorted_blocks_for_eligible_columns_only() {
        let ix = build();
        let names: Vec<&str> = ix.blocks().iter().map(|b| b.column.as_str()).collect();
        assert_eq!(names, vec!["k_det", "v_ope"]); // pay_rnd is ineligible
        let det = ix.block("k_det").expect("det block");
        assert_eq!(det.kind, IndexKind::Det);
        assert_eq!(det.key_count(), 3); // a b c
        assert_eq!(det.posting_count(), 4); // one NULL row skipped
        let ope = ix.block("v_ope").expect("ope block");
        assert_eq!(ope.kind, IndexKind::Ope);
        assert!(ix.block("pay_rnd").is_none());
        assert!(ix.block("missing").is_none());
    }

    #[test]
    fn eq_and_in_probes_return_ascending_postings() {
        let ix = build();
        let det = ix.block("k_det").expect("det block");
        assert_eq!(det.postings_eq(&Value::Str("b".into())), &[0, 3]);
        assert_eq!(det.postings_eq(&Value::Str("z".into())), &[] as &[u32]);
        assert_eq!(det.postings_eq(&Value::Null), &[] as &[u32]);
        assert_eq!(
            det.postings_in(&[
                Value::Str("c".into()),
                Value::Null,
                Value::Str("a".into()),
                Value::Str("a".into()),
            ]),
            vec![1, 4]
        );
    }

    #[test]
    fn range_probes_respect_bound_inclusivity() {
        let ix = build();
        let ope = ix.block("v_ope").expect("ope block");
        let ten = Value::Int(10);
        let twenty = Value::Int(20);
        assert_eq!(ope.postings_range(None, None), vec![0, 1, 2, 4]);
        assert_eq!(ope.postings_range(Some((&ten, true)), None), vec![0, 2, 4]);
        assert_eq!(ope.postings_range(Some((&ten, false)), None), vec![0]);
        assert_eq!(
            ope.postings_range(None, Some((&twenty, false))),
            vec![1, 2, 4]
        );
        assert_eq!(
            ope.postings_range(Some((&ten, true)), Some((&twenty, true))),
            vec![0, 2, 4]
        );
        // Cross-type equality: Float(10.0) hits the Int(10) key group.
        assert_eq!(ope.postings_eq(&Value::Float(10.0)), &[2, 4]);
    }

    #[test]
    fn mode_and_opt_out_gate_block_construction() {
        let none = encode_segment_indexes(&schema(), &[], IndexMode::Off, &columns());
        assert!(none.is_none());
        let det_only = encode_segment_indexes(&schema(), &[], IndexMode::Det, &columns())
            .expect("det eligible");
        assert_eq!(
            det_only.columns,
            vec![("k_det".to_string(), IndexKind::Det)]
        );
        let opted = encode_segment_indexes(
            &schema(),
            &["k_det".to_string()],
            IndexMode::All,
            &columns(),
        )
        .expect("v_ope still eligible");
        assert_eq!(opted.columns, vec![("v_ope".to_string(), IndexKind::Ope)]);
        let all_out = encode_segment_indexes(
            &schema(),
            &["k_det".to_string(), "v_ope".to_string()],
            IndexMode::All,
            &columns(),
        );
        assert!(all_out.is_none());
    }

    #[test]
    fn planned_kind_follows_suffix_convention() {
        assert_eq!(
            planned_index_kind("l_orderkey_det", ColumnType::Str),
            Some(IndexKind::Det)
        );
        assert_eq!(
            planned_index_kind("l_shipdate_ope", ColumnType::Int),
            Some(IndexKind::Ope)
        );
        assert_eq!(planned_index_kind("l_comment_rnd", ColumnType::Bytes), None);
        assert_eq!(planned_index_kind("l_price_hom", ColumnType::Bytes), None);
        assert_eq!(
            planned_index_kind("l_comment_search", ColumnType::Bytes),
            None
        );
        assert_eq!(
            planned_index_kind("l_quantity", ColumnType::Int),
            Some(IndexKind::Ope)
        );
        assert_eq!(planned_index_kind("blob_col", ColumnType::Bytes), None);
    }

    #[test]
    fn index_mode_parses_and_gates() {
        assert_eq!("off".parse::<IndexMode>(), Ok(IndexMode::Off));
        assert_eq!("DET".parse::<IndexMode>(), Ok(IndexMode::Det));
        assert_eq!("ope".parse::<IndexMode>(), Ok(IndexMode::Ope));
        assert_eq!("all".parse::<IndexMode>(), Ok(IndexMode::All));
        assert!("banana".parse::<IndexMode>().is_err());
        assert!(IndexMode::All.allows(IndexKind::Det));
        assert!(IndexMode::All.allows(IndexKind::Ope));
        assert!(IndexMode::Det.allows(IndexKind::Det));
        assert!(!IndexMode::Det.allows(IndexKind::Ope));
        assert!(!IndexMode::Off.allows(IndexKind::Det));
        assert!(!IndexMode::Off.allows(IndexKind::Ope));
    }

    #[test]
    fn every_byte_flip_is_a_typed_error_never_a_panic() {
        let enc =
            encode_segment_indexes(&schema(), &[], IndexMode::All, &columns()).expect("eligible");
        for i in 0..enc.bytes.len() {
            let mut corrupted = enc.bytes.clone();
            corrupted[i] ^= 0xFF;
            let err = decode_segment_indexes(&corrupted, Some(enc.checksum))
                .expect_err("corruption must be detected");
            assert!(err.message.contains("checksum") || !err.message.is_empty());
        }
        // Truncation too.
        for len in 0..enc.bytes.len() {
            assert!(decode_segment_indexes(&enc.bytes[..len], None).is_err());
        }
        // A stale catalog checksum is rejected even when the file is intact.
        assert!(decode_segment_indexes(&enc.bytes, Some(enc.checksum ^ 1)).is_err());
    }
}
