//! Column encodings for on-disk segments.
//!
//! Every encoding round-trips values **exactly** — variant and bit pattern
//! included (`Float` NaN payloads, `-0.0`, empty strings, max-width
//! ciphertexts) — because the disk backend must return byte-identical results
//! to the in-memory backend. The encoder inspects a column's values and picks
//! the cheapest encoding they admit:
//!
//! * [`Int64`](Encoding::Int64) / [`Date32`](Encoding::Date32) /
//!   [`Float64`](Encoding::Float64) — fixed-width little-endian payloads for
//!   homogeneous numeric columns (floats are stored by bit pattern);
//! * [`DictStr`](Encoding::DictStr) / [`DictBytes`](Encoding::DictBytes) —
//!   dictionary encoding for strings and DET ciphertexts, which repeat
//!   (TPC-H categoricals, deterministic encryptions of them);
//! * [`StrRaw`](Encoding::StrRaw) / [`BytesRaw`](Encoding::BytesRaw) — raw
//!   length-prefixed payloads for high-cardinality strings and Paillier/RND
//!   ciphertexts, which never repeat;
//! * [`Generic`](Encoding::Generic) — a tagged per-value fallback for mixed
//!   columns (`Int` rows in a `Float` column, `List` values in a `Bytes`
//!   column, all-NULL columns).
//!
//! NULLs live in a presence bitmap (bit set ⇒ non-null); only non-null values
//! carry payload bytes. The `Generic` encoding tags NULL inline instead.

use crate::value::Value;
use crate::StoreError;

/// Encoding tag of one stored column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoding {
    /// Tagged per-value fallback (handles every [`Value`], NULL included).
    Generic = 0,
    /// All non-null values are `Value::Int`: 8-byte little-endian.
    Int64 = 1,
    /// All non-null values are `Value::Date`: 4-byte little-endian.
    Date32 = 2,
    /// All non-null values are `Value::Float`: 8-byte IEEE-754 bit patterns.
    Float64 = 3,
    /// All non-null values are `Value::Str`: length-prefixed UTF-8.
    StrRaw = 4,
    /// All non-null values are `Value::Bytes`: length-prefixed raw bytes.
    BytesRaw = 5,
    /// `Value::Str` through a dictionary of distinct strings + u32 codes.
    DictStr = 6,
    /// `Value::Bytes` through a dictionary of distinct blobs + u32 codes.
    DictBytes = 7,
}

impl Encoding {
    fn from_tag(tag: u8) -> Result<Encoding, StoreError> {
        Ok(match tag {
            0 => Encoding::Generic,
            1 => Encoding::Int64,
            2 => Encoding::Date32,
            3 => Encoding::Float64,
            4 => Encoding::StrRaw,
            5 => Encoding::BytesRaw,
            6 => Encoding::DictStr,
            7 => Encoding::DictBytes,
            other => return Err(StoreError::new(format!("unknown encoding tag {other}"))),
        })
    }
}

/// Value tags for the `Generic` encoding (and zone-map min/max values in the
/// manifest). Stable on-disk format — do not renumber.
const VT_NULL: u8 = 0;
const VT_INT: u8 = 1;
const VT_FLOAT: u8 = 2;
const VT_STR: u8 = 3;
const VT_DATE: u8 = 4;
const VT_BYTES: u8 = 5;
const VT_LIST: u8 = 6;

/// A byte reader with bounds-checked primitives; every decode error surfaces
/// as a [`StoreError`] instead of a panic so corrupted files fail gracefully
/// (the checksum normally catches corruption first).
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| StoreError::new("truncated payload"))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| StoreError::new("truncated payload"))?;
        self.pos = end;
        Ok(out)
    }

    /// A fixed-size array off the front of the buffer. `take(N)` returns
    /// exactly `N` bytes, but the type system can't see that — convert
    /// fallibly rather than unwrap.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        self.take(N)?
            .try_into()
            .map_err(|_| StoreError::new("truncated payload"))
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.array::<1>()?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    pub fn i32(&mut self) -> Result<i32, StoreError> {
        Ok(i32::from_le_bytes(self.array()?))
    }

    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// A `u32`-length-prefixed byte run.
    pub fn blob(&mut self) -> Result<&'a [u8], StoreError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, StoreError> {
        let bytes = self.blob()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::new("invalid UTF-8 in payload"))
    }
}

pub fn put_blob(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Serializes one value in the tagged generic format (recursive for lists).
pub fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VT_NULL),
        Value::Int(i) => {
            out.push(VT_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(VT_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(VT_STR);
            put_blob(out, s.as_bytes());
        }
        Value::Date(d) => {
            out.push(VT_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Bytes(b) => {
            out.push(VT_BYTES);
            put_blob(out, b);
        }
        Value::List(vs) => {
            out.push(VT_LIST);
            out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            for item in vs {
                write_value(out, item);
            }
        }
    }
}

/// Inverse of [`write_value`].
pub fn read_value(r: &mut Reader<'_>) -> Result<Value, StoreError> {
    Ok(match r.u8()? {
        VT_NULL => Value::Null,
        VT_INT => Value::Int(r.i64()?),
        VT_FLOAT => Value::Float(f64::from_bits(r.u64()?)),
        VT_STR => Value::Str(r.string()?),
        VT_DATE => Value::Date(r.i32()?),
        VT_BYTES => Value::Bytes(r.blob()?.to_vec()),
        VT_LIST => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Value::List(items)
        }
        other => return Err(StoreError::new(format!("unknown value tag {other}"))),
    })
}

/// The presence bitmap of a column: bit set ⇒ non-null.
fn presence_bitmap(values: &[Value]) -> Vec<u8> {
    let mut bits = vec![0u8; values.len().div_ceil(8)];
    for (i, v) in values.iter().enumerate() {
        if !v.is_null() {
            // monomi-lint: allow(panic-freedom): encode path over in-memory values — i < values.len() makes i/8 < bits.len() by construction
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    bits
}

/// Reads bit `i` of a presence bitmap; out-of-range bits (a short bitmap in
/// a corrupt payload) read as unset, i.e. null.
fn bit_set(bits: &[u8], i: usize) -> bool {
    bits.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
}

/// What one column's values look like, for encoding selection.
enum Shape {
    AllInt,
    AllFloat,
    AllDate,
    AllStr,
    AllBytes,
    Mixed,
}

fn shape_of(values: &[Value]) -> Shape {
    let mut shape: Option<Shape> = None;
    for v in values {
        let s = match v {
            Value::Null => continue,
            Value::Int(_) => Shape::AllInt,
            Value::Float(_) => Shape::AllFloat,
            Value::Date(_) => Shape::AllDate,
            Value::Str(_) => Shape::AllStr,
            Value::Bytes(_) => Shape::AllBytes,
            Value::List(_) => return Shape::Mixed,
        };
        match &shape {
            None => shape = Some(s),
            Some(prev) if std::mem::discriminant(prev) == std::mem::discriminant(&s) => {}
            Some(_) => return Shape::Mixed,
        }
    }
    // An all-NULL column has no evidence either way; Generic handles it.
    shape.unwrap_or(Shape::Mixed)
}

/// Dictionary codes are u32, so a dictionary is only considered below this
/// many distinct entries (DET ciphertexts of TPC-H categoricals sit far
/// below it).
const DICT_MAX_ENTRIES: usize = 1 << 16;

/// Builds the dictionary layout for a var-length column if it is smaller than
/// the raw layout: `(dict entries in first-appearance order, code per
/// non-null value)`.
fn try_dictionary<'a>(blobs: &[&'a [u8]]) -> Option<(Vec<&'a [u8]>, Vec<u32>)> {
    use std::collections::HashMap;
    let mut index: HashMap<&[u8], u32> = HashMap::new();
    let mut entries: Vec<&[u8]> = Vec::new();
    let mut codes = Vec::with_capacity(blobs.len());
    for &b in blobs {
        let code = *index.entry(b).or_insert_with(|| {
            entries.push(b);
            entries.len() as u32 - 1
        });
        if entries.len() > DICT_MAX_ENTRIES {
            return None;
        }
        codes.push(code);
    }
    let raw_bytes: usize = blobs.iter().map(|b| 4 + b.len()).sum();
    let dict_bytes: usize =
        4 + entries.iter().map(|b| 4 + b.len()).sum::<usize>() + 4 * codes.len();
    if dict_bytes < raw_bytes {
        Some((entries, codes))
    } else {
        None
    }
}

/// Encodes one column. The output is self-describing: `[tag][row_count u32]`
/// followed by the encoding-specific payload.
pub fn encode_column(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::new();
    out.push(0u8); // encoding tag, patched below
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());

    let shape = shape_of(values);
    let encoding = match shape {
        Shape::AllInt => {
            out.extend_from_slice(&presence_bitmap(values));
            for v in values {
                if let Value::Int(i) = v {
                    out.extend_from_slice(&i.to_le_bytes());
                }
            }
            Encoding::Int64
        }
        Shape::AllDate => {
            out.extend_from_slice(&presence_bitmap(values));
            for v in values {
                if let Value::Date(d) = v {
                    out.extend_from_slice(&d.to_le_bytes());
                }
            }
            Encoding::Date32
        }
        Shape::AllFloat => {
            out.extend_from_slice(&presence_bitmap(values));
            for v in values {
                if let Value::Float(f) = v {
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
            }
            Encoding::Float64
        }
        Shape::AllStr | Shape::AllBytes => {
            let is_str = matches!(shape, Shape::AllStr);
            let blobs: Vec<&[u8]> = values
                .iter()
                .filter_map(|v| match v {
                    Value::Str(s) => Some(s.as_bytes()),
                    Value::Bytes(b) => Some(b.as_slice()),
                    _ => None,
                })
                .collect();
            out.extend_from_slice(&presence_bitmap(values));
            match try_dictionary(&blobs) {
                Some((entries, codes)) => {
                    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                    for e in entries {
                        put_blob(&mut out, e);
                    }
                    for code in codes {
                        out.extend_from_slice(&code.to_le_bytes());
                    }
                    if is_str {
                        Encoding::DictStr
                    } else {
                        Encoding::DictBytes
                    }
                }
                None => {
                    for b in blobs {
                        put_blob(&mut out, b);
                    }
                    if is_str {
                        Encoding::StrRaw
                    } else {
                        Encoding::BytesRaw
                    }
                }
            }
        }
        Shape::Mixed => {
            for v in values {
                write_value(&mut out, v);
            }
            Encoding::Generic
        }
    };
    out[0] = encoding as u8;
    out
}

/// Decodes a column previously produced by [`encode_column`], returning the
/// values and the number of payload bytes consumed.
pub fn decode_column(buf: &[u8]) -> Result<(Vec<Value>, usize), StoreError> {
    let mut r = Reader::new(buf);
    let encoding = Encoding::from_tag(r.u8()?)?;
    let rows = r.u32()? as usize;

    if encoding == Encoding::Generic {
        let mut values = Vec::with_capacity(rows);
        for _ in 0..rows {
            values.push(read_value(&mut r)?);
        }
        return Ok((values, r.pos));
    }

    let bitmap = r.take(rows.div_ceil(8))?.to_vec();
    let mut values = Vec::with_capacity(rows);
    match encoding {
        Encoding::Int64 => {
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    Value::Int(r.i64()?)
                } else {
                    Value::Null
                });
            }
        }
        Encoding::Date32 => {
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    Value::Date(r.i32()?)
                } else {
                    Value::Null
                });
            }
        }
        Encoding::Float64 => {
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    Value::Float(f64::from_bits(r.u64()?))
                } else {
                    Value::Null
                });
            }
        }
        Encoding::StrRaw => {
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    Value::Str(r.string()?)
                } else {
                    Value::Null
                });
            }
        }
        Encoding::BytesRaw => {
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    Value::Bytes(r.blob()?.to_vec())
                } else {
                    Value::Null
                });
            }
        }
        Encoding::DictStr | Encoding::DictBytes => {
            let dict_len = r.u32()? as usize;
            let mut dict: Vec<Value> = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(if encoding == Encoding::DictStr {
                    Value::Str(r.string()?)
                } else {
                    Value::Bytes(r.blob()?.to_vec())
                });
            }
            for i in 0..rows {
                values.push(if bit_set(&bitmap, i) {
                    let code = r.u32()? as usize;
                    dict.get(code)
                        .cloned()
                        .ok_or_else(|| StoreError::new("dictionary code out of range"))?
                } else {
                    Value::Null
                });
            }
        }
        Encoding::Generic => {
            // Handled by the early return above; if control somehow gets here
            // the decoder state is inconsistent — fail the query, not the
            // process.
            return Err(StoreError::new("generic encoding reached typed decoder"));
        }
    }
    Ok((values, r.pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: Vec<Value>) -> (Vec<Value>, Encoding) {
        let encoded = encode_column(&values);
        let encoding = Encoding::from_tag(encoded[0]).unwrap();
        let (decoded, consumed) = decode_column(&encoded).unwrap();
        assert_eq!(consumed, encoded.len(), "decoder must consume the column");
        (decoded, encoding)
    }

    /// Exact equality including variant and float bit pattern (Value's
    /// `PartialEq` coerces across numeric variants, which is too weak here).
    fn exactly_equal(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Null, Value::Null) => true,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Date(x), Value::Date(y)) => x == y,
            (Value::Bytes(x), Value::Bytes(y)) => x == y,
            (Value::List(x), Value::List(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| exactly_equal(a, b))
            }
            _ => false,
        }
    }

    #[test]
    fn fixed_width_columns_roundtrip_with_nulls() {
        let ints = vec![Value::Int(i64::MIN), Value::Null, Value::Int(i64::MAX)];
        let (decoded, enc) = roundtrip(ints.clone());
        assert_eq!(enc, Encoding::Int64);
        assert!(decoded.iter().zip(&ints).all(|(a, b)| exactly_equal(a, b)));

        let dates = vec![Value::Date(-1), Value::Date(0), Value::Null];
        let (decoded, enc) = roundtrip(dates.clone());
        assert_eq!(enc, Encoding::Date32);
        assert!(decoded.iter().zip(&dates).all(|(a, b)| exactly_equal(a, b)));
    }

    #[test]
    fn float_bit_patterns_survive() {
        let floats = vec![
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(f64::INFINITY),
            Value::Float(f64::from_bits(0x7FF8_0000_0000_0001)), // NaN payload
            Value::Null,
        ];
        let (decoded, enc) = roundtrip(floats.clone());
        assert_eq!(enc, Encoding::Float64);
        assert!(decoded
            .iter()
            .zip(&floats)
            .all(|(a, b)| exactly_equal(a, b)));
    }

    #[test]
    fn repeating_strings_pick_the_dictionary() {
        let values: Vec<Value> = (0..64)
            .map(|i| Value::Str(["AIR", "RAIL", "SHIP"][i % 3].to_string()))
            .collect();
        let (decoded, enc) = roundtrip(values.clone());
        assert_eq!(enc, Encoding::DictStr);
        assert!(decoded
            .iter()
            .zip(&values)
            .all(|(a, b)| exactly_equal(a, b)));
    }

    #[test]
    fn unique_ciphertexts_stay_raw() {
        // RND/Paillier ciphertexts never repeat: the dictionary would be
        // bigger than the raw layout, so the encoder must not pick it.
        let values: Vec<Value> = (0..32u64)
            .map(|i| Value::Bytes(i.to_be_bytes().repeat(8)))
            .collect();
        let (decoded, enc) = roundtrip(values.clone());
        assert_eq!(enc, Encoding::BytesRaw);
        assert!(decoded
            .iter()
            .zip(&values)
            .all(|(a, b)| exactly_equal(a, b)));
    }

    #[test]
    fn mixed_and_all_null_columns_fall_back_to_generic() {
        let mixed = vec![
            Value::Int(1),
            Value::Float(2.5),
            Value::Null,
            Value::List(vec![Value::Str(String::new()), Value::Null]),
        ];
        let (decoded, enc) = roundtrip(mixed.clone());
        assert_eq!(enc, Encoding::Generic);
        assert!(decoded.iter().zip(&mixed).all(|(a, b)| exactly_equal(a, b)));

        let all_null = vec![Value::Null; 9];
        let (decoded, enc) = roundtrip(all_null.clone());
        assert_eq!(enc, Encoding::Generic);
        assert_eq!(decoded, all_null);
    }

    #[test]
    fn empty_column_and_empty_strings() {
        let (decoded, _) = roundtrip(Vec::new());
        assert!(decoded.is_empty());
        let values = vec![Value::Str(String::new()), Value::Str("x".into())];
        let (decoded, _) = roundtrip(values.clone());
        assert!(decoded
            .iter()
            .zip(&values)
            .all(|(a, b)| exactly_equal(a, b)));
    }

    #[test]
    fn truncated_column_is_an_error_not_a_panic() {
        let encoded = encode_column(&[Value::Int(7), Value::Int(8)]);
        for cut in 0..encoded.len() {
            assert!(decode_column(&encoded[..cut]).is_err(), "cut at {cut}");
        }
    }
}
