//! Byte-budgeted LRU caches for decoded store artifacts.
//!
//! Decoding a segment (checksum + per-column decode) is the expensive part of
//! a disk scan, so the store keeps decoded segments in memory under a byte
//! budget (`MONOMI_CACHE_BYTES`, default 256 MiB) with least-recently-used
//! eviction. Decoded per-segment index files get the same treatment under
//! their own budget (`MONOMI_INDEX_CACHE_BYTES`, default 64 MiB) so a burst
//! of index probes cannot evict the segments a concurrent scan needs.
//!
//! Both are the one generic [`ByteLru`]: entries are `Arc`-shared, so
//! eviction drops the cache's reference while in-flight readers holding the
//! `Arc` keep their data alive — nothing is ever invalidated under a reader.

use crate::index::SegmentIndexes;
use crate::store::SegmentData;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Environment knob for the segment-cache budget in bytes.
pub const CACHE_BYTES_ENV: &str = "MONOMI_CACHE_BYTES";
/// Default segment-cache budget: 256 MiB.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;
/// Environment knob for the index-cache budget in bytes.
pub const INDEX_CACHE_BYTES_ENV: &str = "MONOMI_INDEX_CACHE_BYTES";
/// Default index-cache budget: 64 MiB.
pub const DEFAULT_INDEX_CACHE_BYTES: usize = 64 << 20;

/// How many bytes an entry occupies against a [`ByteLru`] budget.
pub trait CacheWeight {
    /// Approximate resident heap size of this entry.
    fn weight(&self) -> usize;
}

impl CacheWeight for SegmentData {
    fn weight(&self) -> usize {
        self.heap_bytes
    }
}

impl CacheWeight for SegmentIndexes {
    fn weight(&self) -> usize {
        self.heap_bytes
    }
}

struct Entry<T> {
    data: Arc<T>,
    /// Monotonic tick of the last access (higher = more recent).
    last_used: u64,
}

struct Inner<T> {
    entries: HashMap<String, Entry<T>>,
    resident_bytes: usize,
    tick: u64,
}

/// A byte-budgeted LRU cache mapping file names to decoded artifacts.
pub struct ByteLru<T> {
    budget_bytes: usize,
    inner: Mutex<Inner<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The decoded-segment cache (`MONOMI_CACHE_BYTES`).
pub type SegmentCache = ByteLru<SegmentData>;

impl<T: CacheWeight> ByteLru<T> {
    /// A cache with an explicit byte budget.
    pub fn with_budget(budget_bytes: usize) -> ByteLru<T> {
        ByteLru {
            budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().resident_bytes
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drops every cached entry (used by benchmarks to measure cold scans).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.resident_bytes = 0;
    }

    /// Returns the cached entry for `file`, or decodes it with `load` and
    /// caches the result. Concurrent misses on the same file may both run
    /// `load`; last insert wins — acceptable duplicated work, never wrong
    /// data (segment and index files are write-once).
    pub fn get_or_load<E>(
        &self,
        file: &str,
        load: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.entries.get_mut(file) {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.data));
            }
        }
        // Decode outside the lock: a big entry must not stall cache hits.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let data = Arc::new(load()?);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let bytes = data.weight();
        if inner
            .entries
            .insert(
                file.to_string(),
                Entry {
                    data: Arc::clone(&data),
                    last_used: tick,
                },
            )
            .is_none()
        {
            inner.resident_bytes += bytes;
        }
        // Evict least-recently-used entries until within budget (the newest
        // entry may itself be evicted if it alone exceeds the budget — the
        // caller still holds its Arc, so oversized loads degrade to
        // cache-bypass instead of pinning the budget).
        while inner.resident_bytes > self.budget_bytes {
            let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(entry) = inner.entries.remove(&victim) {
                inner.resident_bytes -= entry.data.weight();
            }
        }
        Ok(data)
    }
}

impl SegmentCache {
    /// A segment cache budgeted from `MONOMI_CACHE_BYTES` (default 256 MiB).
    pub fn from_env() -> SegmentCache {
        Self::with_budget(crate::env_knob(
            CACHE_BYTES_ENV,
            DEFAULT_CACHE_BYTES,
            |_| true,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{decode_segment_indexes, encode_segment_indexes, IndexMode};
    use crate::{ColumnType, Value};

    fn segment(rows: usize) -> SegmentData {
        SegmentData::new(vec![vec![Value::Int(7); rows]])
    }

    #[test]
    fn hits_return_the_cached_arc_and_count() {
        let cache = SegmentCache::with_budget(1 << 20);
        let a = cache.get_or_load::<()>("s1", || Ok(segment(10))).unwrap();
        let b = cache
            .get_or_load::<()>("s1", || panic!("must not reload"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let one = segment(100).heap_bytes;
        let cache = SegmentCache::with_budget(one * 2);
        cache.get_or_load::<()>("a", || Ok(segment(100))).unwrap();
        cache.get_or_load::<()>("b", || Ok(segment(100))).unwrap();
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        cache.get_or_load::<()>("a", || panic!("cached")).unwrap();
        cache.get_or_load::<()>("c", || Ok(segment(100))).unwrap();
        assert!(cache.resident_bytes() <= one * 2);
        // "a" survived (it was touched after "b" went in)...
        cache.get_or_load::<()>("a", || panic!("cached")).unwrap();
        // ...while "b" was evicted: loading it again is a miss.
        let misses_before = cache.stats().1;
        cache.get_or_load::<()>("b", || Ok(segment(100))).unwrap();
        assert_eq!(cache.stats().1, misses_before + 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = SegmentCache::with_budget(1 << 20);
        cache.get_or_load::<()>("a", || Ok(segment(4))).unwrap();
        assert!(cache.resident_bytes() > 0);
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn index_cache_shares_the_lru_machinery() {
        let schema = vec![("k".to_string(), ColumnType::Int)];
        let make = || {
            let enc = encode_segment_indexes(
                &schema,
                &[],
                IndexMode::All,
                &[vec![Value::Int(1), Value::Int(2)]],
            )
            .unwrap();
            decode_segment_indexes(&enc.bytes, None).unwrap()
        };
        let cache: ByteLru<SegmentIndexes> = ByteLru::with_budget(1 << 20);
        let a = cache.get_or_load::<()>("s1.idx", || Ok(make())).unwrap();
        let b = cache
            .get_or_load::<()>("s1.idx", || panic!("must not reload"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cache.resident_bytes() > 0);
        assert_eq!(cache.stats(), (1, 1));
    }
}
