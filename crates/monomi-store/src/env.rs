//! Shared parsing for `MONOMI_*` environment knobs.
//!
//! Every crate that reads a tuning knob from the environment goes through
//! [`env_knob`], which rejects malformed values *loudly*: a typo like
//! `MONOMI_MAX_CONNS=sixty-four` logs a warning naming the variable, the bad
//! value, and the default that will be used instead — rather than silently
//! falling back the way a bare `.ok().and_then(parse).unwrap_or(default)`
//! chain does. An unset variable stays silent; only a *present but unusable*
//! value warns.
//!
//! The helper lives here because `monomi-store` is the lowest crate in the
//! dependency order that engine, proto, server, and core all share.

/// Reads `name` from the environment, parsing it as `T` and validating with
/// `valid`. Returns `default` when the variable is unset; when it is set but
/// fails to parse or validate, logs one warning to stderr and returns
/// `default`.
pub fn env_knob<T, F>(name: &str, default: T, valid: F) -> T
where
    T: std::str::FromStr + std::fmt::Display + Copy,
    F: Fn(&T) -> bool,
{
    let raw = match std::env::var(name) {
        Ok(v) => v,
        Err(_) => return default,
    };
    match raw.parse::<T>() {
        Ok(v) if valid(&v) => v,
        Ok(v) => {
            eprintln!("monomi: {name}={v} is out of range; using default {default}");
            default
        }
        Err(_) => {
            eprintln!("monomi: {name}={raw:?} does not parse; using default {default}");
            default
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses a unique variable name: tests in one binary share the
    // process environment, so reusing a name would race.

    #[test]
    fn unset_returns_default_silently() {
        assert_eq!(env_knob("MONOMI_TEST_KNOB_UNSET", 7usize, |&n| n >= 1), 7);
    }

    #[test]
    fn valid_value_wins() {
        std::env::set_var("MONOMI_TEST_KNOB_VALID", "12");
        assert_eq!(env_knob("MONOMI_TEST_KNOB_VALID", 7usize, |&n| n >= 1), 12);
    }

    #[test]
    fn malformed_value_falls_back_to_default() {
        std::env::set_var("MONOMI_TEST_KNOB_BAD", "sixty-four");
        assert_eq!(env_knob("MONOMI_TEST_KNOB_BAD", 7usize, |&n| n >= 1), 7);
    }

    #[test]
    fn out_of_range_value_falls_back_to_default() {
        std::env::set_var("MONOMI_TEST_KNOB_RANGE", "0");
        assert_eq!(env_knob("MONOMI_TEST_KNOB_RANGE", 7usize, |&n| n >= 1), 7);
    }
}
